//! Offline stand-in for `proptest`.
//!
//! Deterministic generative testing with the subset of the proptest
//! API this workspace uses: [`Strategy`] with `prop_map` /
//! `prop_recursive`, `prop_oneof!`, `any`, numeric range strategies,
//! `[a-z]{m,n}`-style string patterns, tuple and
//! [`collection::vec`] strategies, and the `proptest!` /
//! `prop_assert*` macros. There is no shrinking: a failing case
//! reports its seed so it can be replayed.
//!
//! Cases per property default to 64; override with `PROPTEST_CASES`.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

pub mod collection;
pub mod test_runner;

/// Deterministic SplitMix64 generator driving all strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` in `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        self.next_u64() % span
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy: 'static {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let s = self;
        BoxedStrategy(Arc::new(move |rng| f(s.generate(rng))))
    }

    /// Builds a recursive strategy: at each of `depth` levels the value
    /// is either a leaf (`self`) or one expansion step `f(inner)`.
    /// `_desired_size` / `_expected_branch` are accepted for proptest
    /// signature compatibility but unused (no size-driven budgeting).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut cur = self.boxed();
        let leaf = cur.clone();
        for _ in 0..depth {
            let expanded = f(cur).boxed();
            let l = leaf.clone();
            cur = BoxedStrategy(Arc::new(move |rng| {
                // Lean 3:1 toward leaves so nesting stays shallow.
                if rng.below(4) == 0 {
                    expanded.generate(rng)
                } else {
                    l.generate(rng)
                }
            }));
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy(Arc::new(move |rng| s.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniformly picks one of the given strategies per generated value
/// (backs the `prop_oneof!` macro).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy(Arc::new(move |rng| {
        let i = rng.below(options.len() as u64) as usize;
        options[i].generate(rng)
    }))
}

/// Types with a canonical full-domain strategy (stand-in for
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy over the whole domain of `Self`.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// The canonical strategy for `A` — `any::<u64>()` etc.
pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
    A::arbitrary()
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                BoxedStrategy(Arc::new(|rng| rng.next_u64() as $t))
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                BoxedStrategy(Arc::new(|rng| rng.next_u64() as $t))
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        BoxedStrategy(Arc::new(|rng| rng.next_u64() & 1 == 1))
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

/// String strategies from `"[c1-c2]{m,n}"` character-class patterns.
/// Anything fancier than a single class with a repetition count is
/// rejected loudly rather than silently mis-generated.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                let span = (hi as u64) - (lo as u64) + 1;
                char::from_u32(lo as u32 + rng.below(span) as u32).unwrap()
            })
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
    if dash != '-' || chars.next().is_some() || lo > hi {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.parse().ok()?, max.parse().ok()?);
    if min > max {
        return None;
    }
    Some((lo, hi, min, max))
}

macro_rules! tuple_strategy {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy + 'static),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0 / s0, S1 / s1);
tuple_strategy!(S0 / s0, S1 / s1, S2 / s2);
tuple_strategy!(S0 / s0, S1 / s1, S2 / s2, S3 / s3);
tuple_strategy!(S0 / s0, S1 / s1, S2 / s2, S3 / s3, S4 / s4);
tuple_strategy!(S0 / s0, S1 / s1, S2 / s2, S3 / s3, S4 / s4, S5 / s5);

/// The commonly imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Strategy,
    };
}

/// Picks uniformly among the listed strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__ms_rng| {
                    $(let $arg = $crate::Strategy::generate(
                        &$crate::Strategy::boxed($strat), __ms_rng);)+
                    #[allow(unreachable_code, clippy::diverging_sub_expression)]
                    let __ms_out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __ms_out
                });
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}
