//! Shared harness for the correlated-failure chaos matrix
//! (`chaos_matrix.rs`): process-cluster plumbing, fault-injection env
//! wiring, store/ledger auditing, and a minimal gateway producer.
//!
//! Every scenario runs real OS processes (the `ms-controller` and
//! `ms-worker` binaries) against a throwaway store directory, injects
//! faults via SIGKILL and the `MS_FAULT_PLAN` / `MS_FAULT_STORE` env
//! vars, and holds the run to the same gold bar as `kill_recover`:
//! the sink's final state must be byte-identical to an unfailed run,
//! and the run ledger must stay epoch-contiguous inside every
//! generation.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ms_core::codec::{frame, FrameDecoder, SnapshotReader};
use ms_core::gate::GateMsg;
use ms_wire::{read_ledger, LedgerRecord, LEDGER_FILE};

/// Tuples each demo source emits. Shared by every chain-shaped
/// scenario so all of them can diff against one reference run.
pub const LIMIT: u64 = 4000;
pub const DELAY_US: u64 = 300;
/// Operators in the `chain3` demo graph.
pub const CHAIN_OPS: usize = 3;

/// Kills every still-running child on drop so a failing assert never
/// leaks processes.
pub struct Cluster(pub Vec<Child>);

impl Cluster {
    pub fn push(&mut self, c: Child) -> usize {
        self.0.push(c);
        self.0.len() - 1
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Per-scenario controller knobs; everything not listed here is pinned
/// so the chain scenarios stay byte-comparable to one reference run.
#[derive(Clone)]
pub struct CtrlOpts {
    pub ckpt_ms: u64,
    /// 0 = stall detection off.
    pub barrier_stall_ms: u64,
    /// 0 = demo sources; >0 = gateway mode expecting this many
    /// producers.
    pub gate_producers: u64,
}

impl Default for CtrlOpts {
    fn default() -> CtrlOpts {
        CtrlOpts {
            ckpt_ms: 120,
            barrier_stall_ms: 0,
            gate_producers: 0,
        }
    }
}

pub fn controller(dir: &Path, opts: &CtrlOpts) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ms-controller"));
    cmd.args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--addr-file".as_ref(), dir.join("addr").as_os_str()])
        .args(["--result-file".as_ref(), dir.join("result").as_os_str()])
        .args(["--workers", "2", "--shape", "chain3"])
        .args(["--limit", &LIMIT.to_string()])
        .args(["--delay-us", &DELAY_US.to_string()])
        .args(["--ckpt-ms", &opts.ckpt_ms.to_string()])
        .args(["--hb-timeout-ms", "500"])
        .args(["--respawn-wait-ms", "3000", "--deadline-secs", "90"]);
    if opts.barrier_stall_ms > 0 {
        cmd.args(["--barrier-stall-ms", &opts.barrier_stall_ms.to_string()]);
    }
    if opts.gate_producers > 0 {
        cmd.args(["--gate-producers", &opts.gate_producers.to_string()])
            .args(["--gate-retry-ms", "25"]);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::inherit());
    cmd
}

/// A worker process; `envs` carries the fault-injection variables
/// (`MS_FAULT_PLAN`, `MS_FAULT_STORE`) for chaos scenarios.
pub fn worker(dir: &Path, name: &str, envs: &[(&str, &str)]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ms-worker"));
    cmd.args(["--name", name])
        .args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--controller-file".as_ref(), dir.join("addr").as_os_str()])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd
}

pub fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms_chaos_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

pub fn wait_exit(child: &mut Child, budget: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + budget;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "process did not exit within {budget:?}"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

/// Polls `cond` until it holds, asserting it does within `budget`.
pub fn wait_until(what: &str, budget: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + budget;
    while !cond() {
        assert!(Instant::now() < deadline, "{what}: not within {budget:?}");
        thread::sleep(Duration::from_millis(5));
    }
}

/// Checkpoint files per epoch in the store (`e{E}_op{N}.*` under
/// `ckpt/`). One file per operator per epoch, full or delta.
fn ckpt_files_per_epoch(store: &Path) -> HashMap<u64, usize> {
    let mut per_epoch = HashMap::new();
    let Ok(entries) = fs::read_dir(store.join("ckpt")) else {
        return per_epoch;
    };
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if let Some(epoch) = name
            .strip_prefix('e')
            .and_then(|r| r.split_once("_op"))
            .and_then(|(e, _)| e.parse::<u64>().ok())
        {
            *per_epoch.entry(epoch).or_insert(0usize) += 1;
        }
    }
    per_epoch
}

/// Highest *complete* application checkpoint epoch (all `n_ops`
/// operators renamed their file into place). The store GCs obsolete
/// epochs, so this takes the max rather than counting retained ones.
pub fn max_complete_epoch(store: &Path, n_ops: usize) -> u64 {
    ckpt_files_per_epoch(store)
        .iter()
        .filter(|(_, &n)| n >= n_ops)
        .map(|(&e, _)| e)
        .max()
        .unwrap_or(0)
}

/// An epoch newer than the newest complete one with *some* but not all
/// checkpoint files in place: an application checkpoint actively in
/// flight. (Only epochs above the complete watermark count — GC of an
/// obsolete epoch also passes through partial states.)
pub fn partial_epoch(store: &Path, n_ops: usize) -> Option<u64> {
    let complete = max_complete_epoch(store, n_ops);
    ckpt_files_per_epoch(store)
        .iter()
        .filter(|&(&e, &n)| e > complete && n >= 1 && n < n_ops)
        .map(|(&e, _)| e)
        .max()
}

/// Full audit of the run ledger: every row parses, every ledger epoch
/// covers all `n_ops` operators, each generation's epochs are
/// contiguous (the epoch in flight at a failure may vanish *between*
/// generations, but none may go missing inside one), the trail spans
/// at least `min_generations`, and it reaches the newest complete
/// checkpoint in the store minus one epoch of slack for a barrier
/// still closing at the cut. Rows of `gate_op` skip the byte gauges —
/// a gateway's telemetry races its first admission.
pub fn check_ledger(
    store: &Path,
    n_ops: usize,
    min_generations: usize,
    gate_op: Option<u32>,
) -> Vec<LedgerRecord> {
    use std::collections::{BTreeMap, BTreeSet};

    let records = read_ledger(&store.join(LEDGER_FILE)).expect("run ledger must parse");
    assert!(!records.is_empty(), "run ledger is empty");
    let mut by_epoch: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
    let mut by_gen: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for r in &records {
        if Some(r.op) != gate_op {
            assert!(
                r.state_bytes > 0,
                "op{} epoch {}: state-size gauge never sampled",
                r.op,
                r.epoch
            );
            assert!(
                r.ckpt_bytes > 0,
                "op{} epoch {}: checkpoint bytes missing",
                r.op,
                r.epoch
            );
        }
        assert!(r.barrier_us > 0, "epoch {}: zero barrier latency", r.epoch);
        by_epoch.entry(r.epoch).or_default().insert(r.op);
        by_gen.entry(r.generation).or_default().insert(r.epoch);
    }
    for (epoch, ops) in &by_epoch {
        assert_eq!(
            ops.len(),
            n_ops,
            "epoch {epoch} covers ops {ops:?}, want all {n_ops} operators"
        );
    }
    for (gen, epochs) in &by_gen {
        let lo = *epochs.iter().next().unwrap();
        let hi = *epochs.iter().last().unwrap();
        assert_eq!(
            epochs.len() as u64,
            hi - lo + 1,
            "generation {gen} ledger has an epoch hole: {epochs:?}"
        );
    }
    assert!(
        by_gen.len() >= min_generations,
        "ledger spans {} generation(s), want >= {min_generations}",
        by_gen.len()
    );
    let max_ledger = *by_epoch.keys().last().unwrap();
    let max_store = max_complete_epoch(store, n_ops);
    assert!(
        max_ledger + 1 >= max_store,
        "ledger stops at epoch {max_ledger} but the store holds complete epoch {max_store}"
    );
    records
}

/// `(recoveries line, sink lines)` from a result file.
pub fn parse_result(path: &Path) -> (String, Vec<String>) {
    let text = fs::read_to_string(path).unwrap();
    let mut lines = text.lines();
    let recoveries = lines.next().unwrap().to_string();
    (recoveries, lines.map(str::to_string).collect())
}

/// Parses the count out of a `recoveries=N` result line.
pub fn recoveries(line: &str) -> u64 {
    line.strip_prefix("recoveries=")
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("malformed recoveries line {line:?}"))
}

/// Decodes a `sink op{N} {hex}` line into the Summer's `(sum, count)`.
pub fn decode_sink(line: &str) -> (i64, u64) {
    let hex = line.rsplit(' ').next().unwrap();
    let bytes: Vec<u8> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect();
    let mut r = SnapshotReader::new(&bytes);
    (r.get_i64().unwrap(), r.get_u64().unwrap())
}

/// The chain3 demo answer: the Doubler doubles every source value on
/// its way to the Summer sink.
pub fn chain_expected() -> (i64, u64) {
    (2 * (0..LIMIT as i64).sum::<i64>(), LIMIT)
}

// --- Gateway producer machinery (scenario: gate-host kill under live
// --- producers). A trimmed-down version of the `gate_recover`
// --- producer: stop-and-wait batches, reconnect through outages,
// --- retry everything un-acked.

pub const EVENTS_PER_BATCH: u64 = 16;
pub const KEYS: u64 = 8;
const PRODUCER_DEADLINE: Duration = Duration::from_secs(120);

/// The deterministic event value of producer `p`, batch `b`, slot `j`.
pub fn value(p: u64, b: u64, j: u64) -> i64 {
    (p * 100_000 + b * 100 + j) as i64
}

struct GateConn {
    sock: TcpStream,
    dec: FrameDecoder,
}

impl GateConn {
    fn send(&mut self, msg: &GateMsg) -> std::io::Result<()> {
        self.sock.write_all(&frame(&msg.encode()))
    }

    /// One reply, or `None` when the connection is dead (reset, EOF,
    /// or silent past the read timeout) — the caller reconnects.
    fn recv(&mut self) -> Option<GateMsg> {
        loop {
            match self.dec.next_frame() {
                Ok(Some(p)) => return GateMsg::decode(&p).ok(),
                Ok(None) => {}
                Err(_) => return None,
            }
            let mut buf = [0u8; 4096];
            match self.sock.read(&mut buf) {
                Ok(0) | Err(_) => return None,
                Ok(n) => self.dec.feed(&buf[..n]),
            }
        }
    }
}

/// Connects (or reconnects) to the gateway, re-reading the published
/// address on every attempt — after a recovery the replacement gate
/// binds a fresh port and rewrites the file.
fn connect_gate(addr_file: &Path, producer: u64, deadline: Instant) -> GateConn {
    loop {
        assert!(
            Instant::now() < deadline,
            "producer {producer} could not reach the gateway in time"
        );
        if let Ok(addr) = fs::read_to_string(addr_file) {
            let addr = addr.trim();
            if !addr.is_empty() {
                if let Ok(sock) = TcpStream::connect(addr) {
                    sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                    let _ = sock.set_nodelay(true);
                    let mut conn = GateConn {
                        sock,
                        dec: FrameDecoder::new(),
                    };
                    if conn.send(&GateMsg::Hello { producer }).is_ok() {
                        return conn;
                    }
                }
            }
        }
        thread::sleep(Duration::from_millis(50));
    }
}

/// One stop-and-wait exchange, resending across reconnects until the
/// gateway answers. Resends are safe: the gateway dedups on batch id
/// and re-acks `Fin`s without re-appending their WAL marker.
fn exchange(
    conn: &mut GateConn,
    addr_file: &Path,
    producer: u64,
    deadline: Instant,
    msg: &GateMsg,
) -> GateMsg {
    loop {
        assert!(
            Instant::now() < deadline,
            "producer {producer} got no answer in time"
        );
        if conn.send(msg).is_err() {
            *conn = connect_gate(addr_file, producer, deadline);
            continue;
        }
        match conn.recv() {
            Some(reply) => return reply,
            None => *conn = connect_gate(addr_file, producer, deadline),
        }
    }
}

/// A well-behaved producer: `batches` strictly increasing batches, each
/// retried until `Accepted`, then `Fin` retried until `FinOk`. With a
/// `fin_gate`, the `Fin` is held until the flag flips — the scenario
/// uses this to land a `FinOk` just before a SIGKILL, so the fin's
/// only durable trace is its preservation-log marker. The producer
/// exits on `FinOk` and never returns: if the recovered gate forgot
/// the fin, the run hangs to the controller deadline.
pub fn run_producer(
    addr_file: PathBuf,
    producer: u64,
    batches: u64,
    pace: Duration,
    fin_gate: Option<Arc<AtomicBool>>,
    finished: Arc<AtomicUsize>,
) {
    let deadline = Instant::now() + PRODUCER_DEADLINE;
    let mut conn = connect_gate(&addr_file, producer, deadline);
    for b in 1..=batches {
        let msg = GateMsg::Batch {
            batch: b,
            events: (0..EVENTS_PER_BATCH)
                .map(|j| (j % KEYS, value(producer, b, j)))
                .collect(),
        };
        loop {
            match exchange(&mut conn, &addr_file, producer, deadline, &msg) {
                GateMsg::Accepted { batch } if batch == b => break,
                GateMsg::Busy { retry_after_ms, .. } => {
                    thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 100)));
                }
                other => panic!("producer {producer} batch {b}: unexpected reply {other:?}"),
            }
        }
        thread::sleep(pace);
    }
    if let Some(gate) = fin_gate {
        while !gate.load(Ordering::SeqCst) {
            assert!(
                Instant::now() < deadline,
                "producer {producer} never released to fin"
            );
            thread::sleep(Duration::from_millis(5));
        }
    }
    match exchange(
        &mut conn,
        &addr_file,
        producer,
        deadline,
        &GateMsg::Fin { producer },
    ) {
        GateMsg::FinOk => {}
        other => panic!("producer {producer} fin: unexpected reply {other:?}"),
    }
    finished.fetch_add(1, Ordering::SeqCst);
}
