//! Figs. 10 & 11 — application-aware profiling and checkpoint-timing
//! walkthrough.
//!
//! Replays the paper's two-dynamic-HAU zigzag example through the
//! profiling pass (dynamic-HAU classification, smax/smin, relaxation
//! factor) and the execution-phase controller (alert mode, aggregated
//! ICR, checkpoint at the first local minimum of each period).

use ms_bench::BenchArgs;
use ms_core::ids::HauId;
use ms_core::metrics::TimeSeries;
use ms_core::time::{SimDuration, SimTime};
use ms_runtime::aware::{profile, AwareAction, AwareConfig, AwareController};

fn series(points: &[(u64, f64)]) -> TimeSeries {
    let mut ts = TimeSeries::new();
    for &(t, v) in points {
        ts.push(SimTime::from_secs(t), v);
    }
    ts
}

fn main() {
    // Shared-flag parsing only (the walkthrough replays fixed series;
    // no simulation sweep to seed or parallelize).
    let _ = BenchArgs::parse();
    // Fig. 10's two dynamic HAUs (sizes in MB, time in 10 s steps).
    let hau1: Vec<(u64, f64)> = [
        100.0, 150.0, 200.0, 250.0, 200.0, 150.0, 100.0, 40.0, 100.0, 160.0, 220.0, 160.0, 100.0,
        50.0, 95.0, 140.0,
    ]
    .iter()
    .enumerate()
    .map(|(i, &v)| (i as u64 * 10, v))
    .collect();
    let hau2: Vec<(u64, f64)> = [
        220.0, 250.0, 190.0, 130.0, 100.0, 130.0, 160.0, 190.0, 220.0, 160.0, 100.0, 50.0, 87.5,
        120.0, 87.5, 60.0,
    ]
    .iter()
    .enumerate()
    .map(|(i, &v)| (i as u64 * 10, v))
    .collect();
    // A static HAU for contrast: never classified dynamic.
    let hau3: Vec<(u64, f64)> = (0..16).map(|i| (i * 10, 80.0)).collect();

    let period = SimDuration::from_secs(100);
    let cfg = AwareConfig::default();
    let prof = profile(
        &[
            (HauId(1), series(&hau1)),
            (HauId(2), series(&hau2)),
            (HauId(3), series(&hau3)),
        ],
        period,
        &cfg,
    );
    println!("Fig. 10: profiling phase");
    println!(
        "  dynamic HAUs: {:?} (paper: <20% of all HAUs)",
        prof.dynamic
    );
    println!(
        "  smin = {:.1} MB, smax = {:.1} MB, relaxation factor = {:.0}% (bounded >= 20%)",
        prof.smin,
        prof.smax,
        prof.relaxation * 100.0
    );

    println!("\nFig. 11: execution phase (checkpoint period = 100 s)");
    let mut ctrl = AwareController::new(prof, period, SimTime::ZERO);
    for i in 0..16u64 {
        let now = SimTime::from_secs(i * 10);
        let sizes = [
            (HauId(1), hau1[i as usize].1 as u64),
            (HauId(2), hau2[i as usize].1 as u64),
        ];
        let total: u64 = sizes.iter().map(|&(_, s)| s).sum();
        let action = ctrl.on_sample(now, &sizes);
        let marker = match action {
            AwareAction::Checkpoint(reason) => format!("  <== CHECKPOINT ({reason:?})"),
            AwareAction::None if ctrl.in_alert() => "  [alert mode]".to_string(),
            AwareAction::None => String::new(),
        };
        println!(
            "  t={:>3}s  HAU1={:>5.1}  HAU2={:>5.1}  total={total:>4}{marker}",
            i * 10,
            hau1[i as usize].1,
            hau2[i as usize].1
        );
    }
    println!(
        "\n(paper: the controller checkpoints at the first local minimum of each\n\
         period — t4, t6 and t12 in Fig. 11's timeline — and forces one at the\n\
         period end if the state never falls below smax)"
    );
}
