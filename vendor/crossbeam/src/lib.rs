//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The workspace uses `crossbeam::channel::{bounded, unbounded, Sender,
//! Receiver, Select}`; this crate implements those over `std::sync`
//! primitives (Mutex + Condvar). Not a performance clone — a correct,
//! small MPMC channel good enough for the live-runtime demo threads.

#![warn(missing_docs)]

pub mod channel;
