//! Vectored ("writev"-style) socket writes for frame queues.
//!
//! The event-loop egress path queues one encoded frame per message.
//! Flushing that queue with one `write(2)` per frame costs a syscall
//! per message — exactly the per-tuple tax the batched hot path is
//! built to remove. [`write_frames`] hands the head of the queue to
//! the kernel in a single vectored call ([`Write::write_vectored`],
//! which is `writev(2)` on unix sockets), so a writable socket drains
//! many frames per syscall.
//!
//! The helper is deliberately transport-agnostic (`W: Write`): tests
//! drive it with in-memory writers, the event loop with nonblocking
//! `TcpStream`s. Partial writes are the caller's problem by design —
//! the return value says how many bytes the kernel took, and the
//! caller advances its queue (see [`consume_frames`]) exactly as it
//! would for a scalar `write`.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};

/// Upper bound on the number of frames offered to one vectored write.
/// POSIX guarantees `IOV_MAX >= 16` and Linux uses 1024; staying well
/// under the floor keeps the call portable and bounds the stack-side
/// slice table. Frames beyond the cap simply wait for the next call —
/// the flush loop calls again while the socket stays writable.
pub const MAX_WRITE_FRAMES: usize = 16;

/// Writes the front of a frame queue in one vectored call.
///
/// `frames` yields the queued frames front-to-back; `head` is how many
/// bytes of the *first* frame were already written by a previous
/// partial flush (`head` must be less than the first frame's length).
/// At most [`MAX_WRITE_FRAMES`] frames are offered. Returns the byte
/// count the kernel accepted — `Ok(0)` only when the queue itself is
/// empty, so callers can keep their usual `Ok(0) == WriteZero`
/// treatment for a non-empty queue. `WouldBlock`/`Interrupted` are
/// returned to the caller untouched.
pub fn write_frames<'a, W, I>(w: &mut W, frames: I, head: usize) -> io::Result<usize>
where
    W: Write + ?Sized,
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_WRITE_FRAMES);
    let mut it = frames.into_iter();
    if let Some(first) = it.next() {
        debug_assert!(head < first.len(), "head must sit inside the first frame");
        slices.push(IoSlice::new(&first[head..]));
        for f in it {
            if slices.len() == MAX_WRITE_FRAMES {
                break;
            }
            slices.push(IoSlice::new(f));
        }
    }
    if slices.is_empty() {
        return Ok(0);
    }
    w.write_vectored(&slices)
}

/// Advances a frame queue past `n` written bytes: fully-written frames
/// are popped off the front, and the returned value is the new `head`
/// offset into the (new) first frame.
pub fn consume_frames(mut n: usize, mut head: usize, frames: &mut VecDeque<Vec<u8>>) -> usize {
    while n > 0 {
        let len = frames
            .front()
            .expect("wrote more bytes than were queued")
            .len();
        let remaining = len - head;
        if n >= remaining {
            n -= remaining;
            head = 0;
            frames.pop_front();
        } else {
            head += n;
            n = 0;
        }
    }
    head
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call — exercises
    /// partial vectored writes the way a full socket buffer would.
    struct Throttled {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        // std's default write_vectored only writes the first buffer;
        // sockets gather for real, so the test writer must too.
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let mut budget = self.cap;
            let mut total = 0;
            for b in bufs {
                if budget == 0 {
                    break;
                }
                let n = b.len().min(budget);
                self.out.extend_from_slice(&b[..n]);
                total += n;
                budget -= n;
                if n < b.len() {
                    break;
                }
            }
            Ok(total)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drain(q: &mut VecDeque<Vec<u8>>, head: &mut usize, w: &mut Throttled) {
        while !q.is_empty() {
            let n = write_frames(w, q.iter().map(|f| f.as_slice()), *head).unwrap();
            assert!(n > 0, "throttled writer never blocks");
            *head = consume_frames(n, *head, q);
        }
    }

    #[test]
    fn drains_whole_queue_across_partial_writes() {
        let frames: Vec<Vec<u8>> = (0u8..40).map(|i| vec![i; (i as usize % 7) + 1]).collect();
        let expect: Vec<u8> = frames.iter().flatten().copied().collect();
        // Every throttle cap must reassemble the same byte stream.
        for cap in [1usize, 3, 16, 64, 4096] {
            let mut q: VecDeque<Vec<u8>> = frames.iter().cloned().collect();
            let mut head = 0usize;
            let mut w = Throttled {
                out: Vec::new(),
                cap,
            };
            drain(&mut q, &mut head, &mut w);
            assert_eq!(w.out, expect, "cap {cap}");
            assert_eq!(head, 0);
        }
    }

    #[test]
    fn empty_queue_writes_nothing() {
        let mut w = Throttled {
            out: Vec::new(),
            cap: 64,
        };
        let n = write_frames(&mut w, std::iter::empty::<&[u8]>(), 0).unwrap();
        assert_eq!(n, 0);
        assert!(w.out.is_empty());
    }

    #[test]
    fn caps_frames_per_call_without_losing_any() {
        // More frames than MAX_WRITE_FRAMES: one call takes at most
        // the cap, repeated calls drain everything.
        let frames: Vec<Vec<u8>> = (0..3 * MAX_WRITE_FRAMES)
            .map(|i| vec![i as u8; 4])
            .collect();
        let expect: Vec<u8> = frames.iter().flatten().copied().collect();
        let mut q: VecDeque<Vec<u8>> = frames.into_iter().collect();
        let mut head = 0usize;
        let mut w = Throttled {
            out: Vec::new(),
            cap: usize::MAX,
        };
        let first = write_frames(&mut w, q.iter().map(|f| f.as_slice()), head).unwrap();
        assert_eq!(
            first,
            MAX_WRITE_FRAMES * 4,
            "one call caps at the slice table"
        );
        head = consume_frames(first, head, &mut q);
        drain(&mut q, &mut head, &mut w);
        assert_eq!(w.out, expect);
    }
}
