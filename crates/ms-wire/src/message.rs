//! The live-protocol wire alphabet and its binary codec.
//!
//! Every message that crosses a process boundary in the TCP cluster is
//! a [`WireMsg`], encoded with `ms-core`'s tagged snapshot codec and
//! carried inside one length-prefixed frame
//! ([`ms_core::codec::write_frame`]). The alphabet covers all three
//! conversations of the MS-src protocol (§III):
//!
//! * **data plane** (worker ↔ worker, one TCP stream per graph edge):
//!   [`WireMsg::StreamHello`] identifies the edge, then
//!   [`WireMsg::Data`] tuples and [`WireMsg::Token`] checkpoint tokens
//!   ride the stream in order, closed by an explicit [`WireMsg::Eos`].
//!   A socket that dies *without* an `Eos` is a failure, never an
//!   end-of-stream — the distinction is what lets a consumer hold its
//!   input open across a peer crash until the controller rolls back.
//! * **control plane, worker → controller**: [`WireMsg::Register`],
//!   [`WireMsg::Heartbeat`] (on a dedicated heartbeat connection,
//!   opened with [`WireMsg::HeartbeatHello`]), [`WireMsg::CkptDone`]
//!   durable-checkpoint acks (the controller's epoch barrier),
//!   [`WireMsg::WorkerError`], [`WireMsg::SinkDone`].
//! * **control plane, controller → worker**: [`WireMsg::Assign`],
//!   [`WireMsg::Checkpoint`], [`WireMsg::Rollback`],
//!   [`WireMsg::Shutdown`].

use std::io::{Read, Write};

use ms_core::codec::{read_frame, write_frame, SnapshotReader, SnapshotWriter};
use ms_core::error::{Error, Result};
use ms_core::gate::GateConfig;
use ms_core::graph::QueryNetwork;
use ms_core::ids::{EpochId, OperatorId};
use ms_core::metrics::{BackpressureGauges, OperatorSample};
use ms_core::tuple::Tuple;
use ms_gate::GateSample;

/// Where one operator of an assignment runs.
#[derive(Clone, Debug, PartialEq)]
pub struct OpPlacement {
    /// The operator.
    pub op: OperatorId,
    /// Name of the worker hosting it.
    pub worker: String,
    /// That worker's data-plane listen address (`host:port`).
    pub data_addr: String,
}

/// One source operator to host as an ingestion gateway (`ms-gate`)
/// instead of a demo source: the worker owning it runs the gate event
/// loop, publishes its TCP address to `gate_op{N}.addr` under the
/// store directory, and external producers push batches at it.
#[derive(Clone, Debug, PartialEq)]
pub struct GateSpec {
    /// The source operator the gateway replaces.
    pub op: OperatorId,
    /// Admission/pre-aggregation configuration.
    pub cfg: GateConfig,
}

/// A full generation of work, broadcast by the controller to every
/// live worker. Carries the query network itself (operator count plus
/// edges in `QueryNetwork::edges` order, so each worker rebuilds an
/// identical graph with identical port numbering), the placement map,
/// and the recovery point.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// Monotone generation number; one per (re)deployment.
    pub generation: u64,
    /// Complete application checkpoint to restore from, or `None` for
    /// a fresh start.
    pub restore_epoch: Option<EpochId>,
    /// Number of operators in the query network.
    pub n_ops: u32,
    /// All edges in `QueryNetwork::edges` order (from-major, output
    /// port order) — replaying `connect` in this order reproduces the
    /// original port numbering on every worker.
    pub edges: Vec<(OperatorId, OperatorId)>,
    /// Where each operator runs.
    pub placement: Vec<OpPlacement>,
    /// Demo-app parameter: tuples each source emits in total.
    pub source_limit: u64,
    /// Demo-app parameter: per-tuple source delay (µs), to stretch the
    /// stream over wall-clock time.
    pub source_delay_us: u64,
    /// Demo-app parameter: when nonzero, interior operators carry a
    /// keyed state table of this many keys (delta-checkpointed) instead
    /// of being stateless doublers.
    pub keyed_state: u64,
    /// Demo-app parameter: when nonzero (together with `keyed_state`),
    /// interior operators are `SawtoothStat`s whose keyed table
    /// collapses every this many applied tuples — the dynamic state
    /// profile exercised by the live application-aware plane.
    pub sawtooth_window: u64,
    /// The shard plan of the deployment: `groups[logical]` lists the
    /// physical instances of that logical operator, shard order (see
    /// `ms_core::shard::ShardPlan`). Every worker derives its hash
    /// routes (one route per logical consumer, over the consumer's
    /// whole instance group) from this map. Singleton groups everywhere
    /// ⇒ the unsharded wiring, byte-identical to the historical one.
    pub groups: Vec<Vec<OperatorId>>,
    /// Sources hosted as ingestion gateways this generation (empty ⇒
    /// every source is a demo source, the historical wiring).
    pub gates: Vec<GateSpec>,
}

impl Assignment {
    /// Rebuilds the query network this assignment describes.
    pub fn network(&self) -> Result<QueryNetwork> {
        let mut qn = QueryNetwork::new();
        for i in 0..self.n_ops {
            qn.add_operator(format!("op{i}"));
        }
        for &(from, to) in &self.edges {
            qn.connect(from, to)?;
        }
        qn.validate()?;
        Ok(qn)
    }

    /// The worker hosting `op`, if placed.
    pub fn worker_of(&self, op: OperatorId) -> Option<&str> {
        self.placement
            .iter()
            .find(|p| p.op == op)
            .map(|p| p.worker.as_str())
    }

    /// The data address of the worker hosting `op`, if placed.
    pub fn addr_of(&self, op: OperatorId) -> Option<&str> {
        self.placement
            .iter()
            .find(|p| p.op == op)
            .map(|p| p.data_addr.as_str())
    }

    /// Operators placed on the named worker.
    pub fn ops_on(&self, worker: &str) -> Vec<OperatorId> {
        self.placement
            .iter()
            .filter(|p| p.worker == worker)
            .map(|p| p.op)
            .collect()
    }
}

/// Everything that travels between the processes of a cluster.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMsg {
    /// Worker → controller: first message on a control connection.
    Register {
        /// Unique worker name.
        name: String,
        /// The worker's data-plane listen address.
        data_addr: String,
    },
    /// Worker → controller: liveness signal, sent on a fixed cadence.
    /// Carries the worker's aggregate backpressure gauges — input-queue
    /// depth and alignment-window occupancy summed over its hosts — so
    /// the controller can observe a congesting worker before it stalls.
    Heartbeat {
        /// Summed [`BackpressureGauges`] across the worker's hosts.
        gauges: BackpressureGauges,
    },
    /// Worker → controller: a sink operator of `generation` drained its
    /// stream; `snapshot` is its final serialized state.
    SinkDone {
        /// Generation the sink belonged to (stale ones are ignored).
        generation: u64,
        /// The sink operator.
        op: OperatorId,
        /// `OperatorSnapshot::data` of the finished sink.
        snapshot: Vec<u8>,
    },
    /// Controller → worker: deploy (or redeploy) a generation.
    Assign(Assignment),
    /// Controller → worker: forward a checkpoint command to every local
    /// source HAU (the controller-triggered token of §III-A).
    Checkpoint(EpochId),
    /// Controller → worker: abandon the current generation (a peer
    /// failed); tear down hosts and discard in-flight work.
    Rollback,
    /// Controller → worker: the application finished; exit cleanly.
    Shutdown,
    /// Data plane: identifies the graph edge a fresh stream carries.
    StreamHello {
        /// Generation this stream belongs to.
        generation: u64,
        /// Producing operator.
        from: OperatorId,
        /// Consuming operator.
        to: OperatorId,
    },
    /// Data plane: one tuple.
    Data(Tuple),
    /// Data plane: a run of tuples in one frame. Exactly equivalent to
    /// the same tuples as consecutive [`WireMsg::Data`] frames — every
    /// tuple keeps its own `seq`, so replay cuts and dedup are
    /// unchanged — but a skewed edge pays one frame header, one
    /// decode dispatch, and one inbox push for the whole run.
    TupleBatch(Vec<Tuple>),
    /// Data plane: a checkpoint token trickling down the dataflow.
    Token(EpochId),
    /// Data plane: graceful end of stream. Only this message ends a
    /// stream; a bare socket close is treated as a failure.
    Eos,
    /// Worker → controller: one local HAU's individual checkpoint for
    /// `epoch` is durable in stable storage. The controller only
    /// broadcasts the next [`WireMsg::Checkpoint`] once every HAU of
    /// the generation has acked the previous epoch — the barrier that
    /// keeps the timer-driven ticker from ever having two epochs'
    /// tokens racing through the graph.
    CkptDone {
        /// Generation the checkpoint belongs to (stale acks ignored).
        generation: u64,
        /// The acked epoch.
        epoch: EpochId,
        /// The HAU whose checkpoint is durable.
        op: OperatorId,
    },
    /// Worker → controller: first message on a *heartbeat* connection.
    /// Heartbeats ride their own socket so a stalled report write (the
    /// shared control connection) can never delay liveness signals
    /// into a spurious failure detection.
    HeartbeatHello {
        /// The registered worker this heartbeat stream belongs to.
        name: String,
    },
    /// Worker → controller: a local HAU hit a non-recoverable local
    /// fault (stable storage unusable, restore failed). The controller
    /// fails the worker and rolls the generation back; the process
    /// itself stays up for the next generation.
    WorkerError {
        /// Generation the failure occurred in (stale ones ignored).
        generation: u64,
        /// Human-readable failure description (logged controller-side).
        detail: String,
    },
    /// Worker → controller: per-operator meter samples for the local
    /// HAUs. Sent on two cadences: the heartbeat thread folds every
    /// local operator's sample in on each beat, and the durable hook
    /// sends a single-operator sample immediately *before* each
    /// [`WireMsg::CkptDone`] on the same control connection — so when
    /// an epoch's barrier closes, the controller is guaranteed to hold
    /// a fresh checkpoint sample for every acked operator and can cut
    /// the run-ledger records for that epoch.
    Telemetry {
        /// Generation the samples belong to (stale ones ignored).
        generation: u64,
        /// One meter reading per sampled local operator.
        samples: Vec<(OperatorId, OperatorSample)>,
    },
    /// Worker → controller: gateway meter samples for locally hosted
    /// ingestion gates, folded into each heartbeat alongside
    /// [`WireMsg::Telemetry`]. The controller keeps the freshest
    /// sample per gate and cuts it into the run ledger at each epoch
    /// barrier.
    GateTelemetry {
        /// Generation the samples belong to (stale ones ignored).
        generation: u64,
        /// One gateway meter reading per locally hosted gate.
        samples: Vec<(OperatorId, GateSample)>,
    },
}

const TAG_REGISTER: u64 = 1;
const TAG_HEARTBEAT: u64 = 2;
const TAG_SINK_DONE: u64 = 3;
const TAG_ASSIGN: u64 = 4;
const TAG_CHECKPOINT: u64 = 5;
const TAG_ROLLBACK: u64 = 6;
const TAG_SHUTDOWN: u64 = 7;
const TAG_STREAM_HELLO: u64 = 8;
const TAG_DATA: u64 = 9;
const TAG_TOKEN: u64 = 10;
const TAG_EOS: u64 = 11;
const TAG_CKPT_DONE: u64 = 12;
const TAG_HEARTBEAT_HELLO: u64 = 13;
const TAG_WORKER_ERROR: u64 = 14;
const TAG_TELEMETRY: u64 = 15;
const TAG_GATE_TELEMETRY: u64 = 16;
const TAG_TUPLE_BATCH: u64 = 17;

impl WireMsg {
    /// Encodes the message into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        match self {
            WireMsg::Register { name, data_addr } => {
                w.put_u64(TAG_REGISTER).put_str(name).put_str(data_addr);
            }
            WireMsg::Heartbeat { gauges } => {
                w.put_u64(TAG_HEARTBEAT)
                    .put_u64(gauges.queued_tuples)
                    .put_u64(gauges.open_windows)
                    .put_u64(gauges.window_tuples);
            }
            WireMsg::SinkDone {
                generation,
                op,
                snapshot,
            } => {
                w.put_u64(TAG_SINK_DONE)
                    .put_u64(*generation)
                    .put_u64(op.0 as u64)
                    .put_bytes(snapshot);
            }
            WireMsg::Assign(a) => {
                w.put_u64(TAG_ASSIGN).put_u64(a.generation);
                match a.restore_epoch {
                    Some(e) => w.put_u64(1).put_u64(e.0),
                    None => w.put_u64(0).put_u64(0),
                };
                w.put_u64(a.n_ops as u64);
                w.put_seq(a.edges.iter(), |w, (f, t)| {
                    w.put_u64(f.0 as u64).put_u64(t.0 as u64);
                });
                w.put_seq(a.placement.iter(), |w, p| {
                    w.put_u64(p.op.0 as u64)
                        .put_str(&p.worker)
                        .put_str(&p.data_addr);
                });
                w.put_u64(a.source_limit)
                    .put_u64(a.source_delay_us)
                    .put_u64(a.keyed_state)
                    .put_u64(a.sawtooth_window);
                w.put_seq(a.groups.iter(), |w, group| {
                    w.put_seq(group.iter(), |w, op| {
                        w.put_u64(op.0 as u64);
                    });
                });
                w.put_seq(a.gates.iter(), |w, g| {
                    w.put_u64(g.op.0 as u64)
                        .put_u64(g.cfg.budget_bytes)
                        .put_u64(g.cfg.budget_batches)
                        .put_u64(g.cfg.preagg as u64)
                        .put_u64(g.cfg.expected_producers as u64)
                        .put_u64(g.cfg.retry_after_ms);
                });
            }
            WireMsg::Checkpoint(e) => {
                w.put_u64(TAG_CHECKPOINT).put_u64(e.0);
            }
            WireMsg::Rollback => {
                w.put_u64(TAG_ROLLBACK);
            }
            WireMsg::Shutdown => {
                w.put_u64(TAG_SHUTDOWN);
            }
            WireMsg::StreamHello {
                generation,
                from,
                to,
            } => {
                w.put_u64(TAG_STREAM_HELLO)
                    .put_u64(*generation)
                    .put_u64(from.0 as u64)
                    .put_u64(to.0 as u64);
            }
            WireMsg::Data(t) => {
                w.put_u64(TAG_DATA).put_tuple(t);
            }
            WireMsg::TupleBatch(tuples) => {
                w.put_u64(TAG_TUPLE_BATCH);
                w.put_seq(tuples.iter(), |w, t| {
                    w.put_tuple(t);
                });
            }
            WireMsg::Token(e) => {
                w.put_u64(TAG_TOKEN).put_u64(e.0);
            }
            WireMsg::Eos => {
                w.put_u64(TAG_EOS);
            }
            WireMsg::CkptDone {
                generation,
                epoch,
                op,
            } => {
                w.put_u64(TAG_CKPT_DONE)
                    .put_u64(*generation)
                    .put_u64(epoch.0)
                    .put_u64(op.0 as u64);
            }
            WireMsg::HeartbeatHello { name } => {
                w.put_u64(TAG_HEARTBEAT_HELLO).put_str(name);
            }
            WireMsg::WorkerError { generation, detail } => {
                w.put_u64(TAG_WORKER_ERROR)
                    .put_u64(*generation)
                    .put_str(detail);
            }
            WireMsg::Telemetry {
                generation,
                samples,
            } => {
                w.put_u64(TAG_TELEMETRY).put_u64(*generation);
                w.put_seq(samples.iter(), |w, (op, s)| {
                    w.put_u64(op.0 as u64)
                        .put_u64(s.tuples_in)
                        .put_u64(s.tuples_out)
                        .put_u64(s.bytes_out)
                        .put_u64(s.state_bytes)
                        .put_u64(s.ckpt_epoch)
                        .put_u64(s.ckpt_bytes)
                        .put_u64(s.ckpt_is_delta as u64)
                        .put_u64(s.full_bytes_total)
                        .put_u64(s.delta_bytes_total)
                        .put_u64(s.align_wait_us)
                        .put_u64(s.serialize_us)
                        .put_u64(s.persist_us);
                });
            }
            WireMsg::GateTelemetry {
                generation,
                samples,
            } => {
                w.put_u64(TAG_GATE_TELEMETRY).put_u64(*generation);
                w.put_seq(samples.iter(), |w, (op, s)| {
                    w.put_u64(op.0 as u64)
                        .put_u64(s.accepted_batches)
                        .put_u64(s.shed_batches)
                        .put_u64(s.accepted_events)
                        .put_u64(s.emitted_tuples)
                        .put_u64(s.wal_bytes)
                        .put_u64(s.ack_p50_us)
                        .put_u64(s.ack_p99_us);
                });
            }
        }
        w.finish()
    }

    /// Decodes one frame payload.
    pub fn decode(buf: &[u8]) -> Result<WireMsg> {
        let mut r = SnapshotReader::new(buf);
        let tag = r.get_u64()?;
        let msg = match tag {
            TAG_REGISTER => WireMsg::Register {
                name: r.get_str()?,
                data_addr: r.get_str()?,
            },
            TAG_HEARTBEAT => WireMsg::Heartbeat {
                gauges: BackpressureGauges {
                    queued_tuples: r.get_u64()?,
                    open_windows: r.get_u64()?,
                    window_tuples: r.get_u64()?,
                },
            },
            TAG_SINK_DONE => WireMsg::SinkDone {
                generation: r.get_u64()?,
                op: get_op(&mut r)?,
                snapshot: r.get_bytes()?,
            },
            TAG_ASSIGN => {
                let generation = r.get_u64()?;
                let has_restore = r.get_u64()? != 0;
                let raw_epoch = r.get_u64()?;
                let restore_epoch = has_restore.then_some(EpochId(raw_epoch));
                let n_ops = r.get_u64()? as u32;
                let edges = r.get_seq(|r| Ok((get_op(r)?, get_op(r)?)))?;
                let placement = r.get_seq(|r| {
                    Ok(OpPlacement {
                        op: get_op(r)?,
                        worker: r.get_str()?,
                        data_addr: r.get_str()?,
                    })
                })?;
                let source_limit = r.get_u64()?;
                let source_delay_us = r.get_u64()?;
                let keyed_state = r.get_u64()?;
                let sawtooth_window = r.get_u64()?;
                let groups = r.get_seq(|r| r.get_seq(get_op))?;
                let gates = r.get_seq(|r| {
                    Ok(GateSpec {
                        op: get_op(r)?,
                        cfg: GateConfig {
                            budget_bytes: r.get_u64()?,
                            budget_batches: r.get_u64()?,
                            preagg: r.get_u64()? != 0,
                            expected_producers: u32::try_from(r.get_u64()?).map_err(|_| {
                                Error::Wire("expected_producers out of range".into())
                            })?,
                            retry_after_ms: r.get_u64()?,
                        },
                    })
                })?;
                WireMsg::Assign(Assignment {
                    generation,
                    restore_epoch,
                    n_ops,
                    edges,
                    placement,
                    source_limit,
                    source_delay_us,
                    keyed_state,
                    sawtooth_window,
                    groups,
                    gates,
                })
            }
            TAG_CHECKPOINT => WireMsg::Checkpoint(EpochId(r.get_u64()?)),
            TAG_ROLLBACK => WireMsg::Rollback,
            TAG_SHUTDOWN => WireMsg::Shutdown,
            TAG_STREAM_HELLO => WireMsg::StreamHello {
                generation: r.get_u64()?,
                from: get_op(&mut r)?,
                to: get_op(&mut r)?,
            },
            TAG_DATA => WireMsg::Data(r.get_tuple()?),
            TAG_TUPLE_BATCH => WireMsg::TupleBatch(r.get_seq(|r| r.get_tuple())?),
            TAG_TOKEN => WireMsg::Token(EpochId(r.get_u64()?)),
            TAG_EOS => WireMsg::Eos,
            TAG_CKPT_DONE => WireMsg::CkptDone {
                generation: r.get_u64()?,
                epoch: EpochId(r.get_u64()?),
                op: get_op(&mut r)?,
            },
            TAG_HEARTBEAT_HELLO => WireMsg::HeartbeatHello { name: r.get_str()? },
            TAG_WORKER_ERROR => WireMsg::WorkerError {
                generation: r.get_u64()?,
                detail: r.get_str()?,
            },
            TAG_TELEMETRY => {
                let generation = r.get_u64()?;
                let samples = r.get_seq(|r| {
                    Ok((
                        get_op(r)?,
                        OperatorSample {
                            tuples_in: r.get_u64()?,
                            tuples_out: r.get_u64()?,
                            bytes_out: r.get_u64()?,
                            state_bytes: r.get_u64()?,
                            ckpt_epoch: r.get_u64()?,
                            ckpt_bytes: r.get_u64()?,
                            ckpt_is_delta: r.get_u64()? != 0,
                            full_bytes_total: r.get_u64()?,
                            delta_bytes_total: r.get_u64()?,
                            align_wait_us: r.get_u64()?,
                            serialize_us: r.get_u64()?,
                            persist_us: r.get_u64()?,
                        },
                    ))
                })?;
                WireMsg::Telemetry {
                    generation,
                    samples,
                }
            }
            TAG_GATE_TELEMETRY => {
                let generation = r.get_u64()?;
                let samples = r.get_seq(|r| {
                    Ok((
                        get_op(r)?,
                        GateSample {
                            accepted_batches: r.get_u64()?,
                            shed_batches: r.get_u64()?,
                            accepted_events: r.get_u64()?,
                            emitted_tuples: r.get_u64()?,
                            wal_bytes: r.get_u64()?,
                            ack_p50_us: r.get_u64()?,
                            ack_p99_us: r.get_u64()?,
                        },
                    ))
                })?;
                WireMsg::GateTelemetry {
                    generation,
                    samples,
                }
            }
            other => {
                return Err(Error::Wire(format!("unknown wire message tag {other}")));
            }
        };
        if !r.is_exhausted() {
            return Err(Error::Wire("trailing bytes after wire message".into()));
        }
        Ok(msg)
    }
}

fn get_op(r: &mut SnapshotReader<'_>) -> Result<OperatorId> {
    let raw = r.get_u64()?;
    u32::try_from(raw)
        .map(OperatorId)
        .map_err(|_| Error::Wire(format!("operator id {raw} out of range")))
}

/// Writes one message as one frame.
pub fn send_msg(w: &mut impl Write, msg: &WireMsg) -> Result<()> {
    write_frame(w, &msg.encode())
}

/// Reads one message. `Ok(None)` is a clean end-of-stream (EOF at a
/// frame boundary); torn frames and decode failures are
/// [`Error::Wire`].
pub fn recv_msg(r: &mut impl Read) -> Result<Option<WireMsg>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => WireMsg::decode(&payload).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::time::SimTime;
    use ms_core::value::Value;

    fn sample_assignment() -> Assignment {
        Assignment {
            generation: 3,
            restore_epoch: Some(EpochId(7)),
            n_ops: 3,
            edges: vec![
                (OperatorId(0), OperatorId(1)),
                (OperatorId(1), OperatorId(2)),
            ],
            placement: vec![
                OpPlacement {
                    op: OperatorId(0),
                    worker: "wa".into(),
                    data_addr: "127.0.0.1:4000".into(),
                },
                OpPlacement {
                    op: OperatorId(1),
                    worker: "wb".into(),
                    data_addr: "127.0.0.1:4001".into(),
                },
                OpPlacement {
                    op: OperatorId(2),
                    worker: "wa".into(),
                    data_addr: "127.0.0.1:4000".into(),
                },
            ],
            source_limit: 1000,
            source_delay_us: 250,
            keyed_state: 4096,
            sawtooth_window: 512,
            groups: vec![
                vec![OperatorId(0)],
                vec![OperatorId(1)],
                vec![OperatorId(2)],
            ],
            gates: vec![GateSpec {
                op: OperatorId(0),
                cfg: GateConfig {
                    budget_bytes: 65536,
                    budget_batches: 128,
                    preagg: true,
                    expected_producers: 4,
                    retry_after_ms: 25,
                },
            }],
        }
    }

    fn sharded_assignment() -> Assignment {
        // A sharded chain: one logical interior expanded to two
        // physical instances (ops 1 and 2), sink pushed to op 3.
        Assignment {
            generation: 9,
            restore_epoch: None,
            n_ops: 4,
            edges: vec![
                (OperatorId(0), OperatorId(1)),
                (OperatorId(0), OperatorId(2)),
                (OperatorId(1), OperatorId(3)),
                (OperatorId(2), OperatorId(3)),
            ],
            placement: vec![
                OpPlacement {
                    op: OperatorId(0),
                    worker: "wa".into(),
                    data_addr: "127.0.0.1:4000".into(),
                },
                OpPlacement {
                    op: OperatorId(1),
                    worker: "wb".into(),
                    data_addr: "127.0.0.1:4001".into(),
                },
                OpPlacement {
                    op: OperatorId(2),
                    worker: "wa".into(),
                    data_addr: "127.0.0.1:4000".into(),
                },
                OpPlacement {
                    op: OperatorId(3),
                    worker: "wb".into(),
                    data_addr: "127.0.0.1:4001".into(),
                },
            ],
            source_limit: 100,
            source_delay_us: 0,
            keyed_state: 64,
            sawtooth_window: 0,
            groups: vec![
                vec![OperatorId(0)],
                vec![OperatorId(1), OperatorId(2)],
                vec![OperatorId(3)],
            ],
            gates: Vec::new(),
        }
    }

    fn all_messages() -> Vec<WireMsg> {
        vec![
            WireMsg::Register {
                name: "wa".into(),
                data_addr: "127.0.0.1:4000".into(),
            },
            WireMsg::Heartbeat {
                gauges: BackpressureGauges {
                    queued_tuples: 17,
                    open_windows: 2,
                    window_tuples: 140,
                },
            },
            WireMsg::SinkDone {
                generation: 2,
                op: OperatorId(4),
                snapshot: vec![1, 2, 3, 4],
            },
            WireMsg::Assign(sample_assignment()),
            WireMsg::Assign(Assignment {
                restore_epoch: None,
                ..sample_assignment()
            }),
            WireMsg::Checkpoint(EpochId(12)),
            WireMsg::Rollback,
            WireMsg::Shutdown,
            WireMsg::StreamHello {
                generation: 1,
                from: OperatorId(0),
                to: OperatorId(1),
            },
            WireMsg::Data(Tuple::new(
                OperatorId(1),
                42,
                SimTime::from_micros(9),
                vec![Value::Int(5), Value::Str("payload".into())],
            )),
            WireMsg::TupleBatch(vec![]),
            WireMsg::TupleBatch(
                (0..3)
                    .map(|i| {
                        Tuple::new(
                            OperatorId(1),
                            100 + i,
                            SimTime::from_micros(10 + i),
                            vec![Value::Int(i as i64), Value::Str("batched".into())],
                        )
                    })
                    .collect(),
            ),
            WireMsg::Token(EpochId(3)),
            WireMsg::Eos,
            WireMsg::CkptDone {
                generation: 2,
                epoch: EpochId(5),
                op: OperatorId(3),
            },
            WireMsg::HeartbeatHello { name: "wb".into() },
            WireMsg::WorkerError {
                generation: 4,
                detail: "storage error: disk full".into(),
            },
            WireMsg::Telemetry {
                generation: 5,
                samples: vec![
                    (
                        OperatorId(0),
                        OperatorSample {
                            tuples_in: 0,
                            tuples_out: 900,
                            bytes_out: 7200,
                            state_bytes: 16,
                            ckpt_epoch: 4,
                            ckpt_bytes: 16,
                            ckpt_is_delta: false,
                            full_bytes_total: 64,
                            delta_bytes_total: 0,
                            align_wait_us: 0,
                            serialize_us: 3,
                            persist_us: 120,
                        },
                    ),
                    (OperatorId(2), OperatorSample::default()),
                ],
            },
            WireMsg::Telemetry {
                generation: 6,
                samples: Vec::new(),
            },
            WireMsg::GateTelemetry {
                generation: 6,
                samples: vec![
                    (
                        OperatorId(0),
                        GateSample {
                            accepted_batches: 40,
                            shed_batches: 3,
                            accepted_events: 640,
                            emitted_tuples: 200,
                            wal_bytes: 12800,
                            ack_p50_us: 90,
                            ack_p99_us: 410,
                        },
                    ),
                    (OperatorId(4), GateSample::default()),
                ],
            },
            WireMsg::GateTelemetry {
                generation: 7,
                samples: Vec::new(),
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let decoded = WireMsg::decode(&msg.encode()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn stream_of_messages_roundtrips_over_frames() {
        let msgs = all_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            send_msg(&mut stream, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for m in &msgs {
            assert_eq!(recv_msg(&mut cursor).unwrap().as_ref(), Some(m));
        }
        assert_eq!(recv_msg(&mut cursor).unwrap(), None);
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_error() {
        let mut w = SnapshotWriter::new();
        w.put_u64(999);
        assert!(WireMsg::decode(&w.finish()).is_err());
        let mut extra = WireMsg::Rollback.encode();
        extra.extend_from_slice(&WireMsg::Eos.encode());
        assert!(WireMsg::decode(&extra).is_err());
    }

    #[test]
    fn assignment_network_rebuilds_identical_ports() {
        let a = sample_assignment();
        let qn = a.network().unwrap();
        assert_eq!(qn.len(), 3);
        assert_eq!(qn.edges().collect::<Vec<_>>(), a.edges);
        assert_eq!(a.worker_of(OperatorId(1)), Some("wb"));
        assert_eq!(a.addr_of(OperatorId(2)), Some("127.0.0.1:4000"));
        assert_eq!(a.ops_on("wa"), vec![OperatorId(0), OperatorId(2)]);
    }

    #[test]
    fn sharded_assignment_roundtrips_with_groups() {
        let a = sharded_assignment();
        let msg = WireMsg::Assign(a.clone());
        let decoded = WireMsg::decode(&msg.encode()).unwrap();
        let WireMsg::Assign(b) = decoded else {
            panic!("decoded to a different variant");
        };
        assert_eq!(b, a);
        assert_eq!(b.groups[1], vec![OperatorId(1), OperatorId(2)]);
        // The physical network rebuilds with the sharded fan-in: both
        // shard instances feed the sink on distinct input ports.
        let qn = b.network().unwrap();
        assert_eq!(qn.len(), 4);
        assert_eq!(qn.upstream(OperatorId(3)), &[OperatorId(1), OperatorId(2)]);
        assert_eq!(
            qn.downstream(OperatorId(0)),
            &[OperatorId(1), OperatorId(2)]
        );
    }
}
