//! Run-ledger summarizer: reads the controller's `ledger.jsonl` and
//! prints the per-epoch table, top state growers, and barrier-latency
//! stats. See `ms-wire`'s `ledger` module docs for the record schema.

use std::path::{Path, PathBuf};

use ms_wire::{by_shard_summary, read_ledger, summarize, LedgerFollower};

fn usage() -> ! {
    eprintln!(
        "usage: ms_ledger LEDGER.jsonl [--top N] [--tail N] [--by-shard]\n\
         \x20      ms_ledger LEDGER.jsonl --follow [--poll-ms N] [--exit-after-ms N]"
    );
    std::process::exit(2);
}

/// `--follow`: tail the ledger of a (possibly running) cluster,
/// printing one line per completed epoch and every cadence decision
/// as it lands. `--exit-after-ms` bounds the watch (0 = forever) so
/// scripts and tests can use it without a kill.
fn follow(path: &Path, poll_ms: u64, exit_after_ms: u64) -> ! {
    let mut f = LedgerFollower::new();
    let started = std::time::Instant::now();
    loop {
        match f.poll(path) {
            Ok(lines) => {
                for l in lines {
                    println!("{l}");
                }
            }
            Err(e) => {
                eprintln!("ms_ledger: {e}");
                std::process::exit(1);
            }
        }
        if exit_after_ms > 0 && started.elapsed().as_millis() as u64 >= exit_after_ms {
            // Final partial epoch: flush what accumulated so the last
            // barrier isn't silently dropped.
            for l in f.flush() {
                println!("{l}");
            }
            std::process::exit(0);
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(1)));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<String> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let num = |key: &str, default: u64| -> u64 {
        get(key).map_or(default, |v| v.parse().unwrap_or_else(|_| usage()))
    };
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let top = num("--top", 5) as usize;
    let tail = num("--tail", 0);
    if args.iter().any(|a| a == "--follow") {
        follow(
            &PathBuf::from(path),
            num("--poll-ms", 200),
            num("--exit-after-ms", 0),
        );
    }

    let mut records = match read_ledger(&PathBuf::from(path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ms_ledger: {e}");
            std::process::exit(1);
        }
    };
    // --tail N keeps only the last N epochs (by epoch id, which is
    // unique across generations).
    if tail > 0 {
        let mut epochs: Vec<u64> = records.iter().map(|r| r.epoch).collect();
        epochs.sort_unstable();
        epochs.dedup();
        if epochs.len() as u64 > tail {
            let cutoff = epochs[epochs.len() - tail as usize];
            records.retain(|r| r.epoch >= cutoff);
        }
    }
    // --by-shard swaps the per-epoch table for the sharding view:
    // records grouped by logical operator with per-shard state balance.
    if args.iter().any(|a| a == "--by-shard") {
        print!("{}", by_shard_summary(&records));
    } else {
        print!("{}", summarize(&records, top));
    }
}
