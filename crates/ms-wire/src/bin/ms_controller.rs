//! Cluster controller daemon. See `ms-wire`'s crate docs for the
//! localhost walkthrough.

use std::path::PathBuf;
use std::time::Duration;

use ms_core::gate::GateConfig;
use ms_wire::{run_controller, ControllerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ms-controller --store DIR [--listen ADDR] [--addr-file FILE] \
         [--workers N] [--shape chainN|diamond|fanin|fleetSxK] [--limit N] \
         [--delay-us N] [--keyed-state N] [--sawtooth-window N] [--shards N] \
         [--ckpt-ms N] \
         [--hb-timeout-ms N] [--barrier-stall-ms N] [--respawn-wait-ms N] \
         [--deadline-secs N] \
         [--aware 0|1] [--aware-sample-ms N] [--aware-profile-periods N] \
         [--recovery-budget-ms N] \
         [--result-file FILE] [--gate-producers N] [--gate-budget-bytes N] \
         [--gate-budget-batches N] [--gate-preagg 0|1] [--gate-retry-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<String> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let num = |key: &str, default: u64| -> u64 {
        get(key).map_or(default, |v| v.parse().unwrap_or_else(|_| usage()))
    };
    let Some(store_dir) = get("--store") else {
        usage()
    };
    let cfg = ControllerConfig {
        listen: get("--listen").unwrap_or_else(|| "127.0.0.1:0".into()),
        addr_file: get("--addr-file").map(PathBuf::from),
        store_dir: PathBuf::from(store_dir),
        workers: num("--workers", 2) as usize,
        shape: get("--shape").unwrap_or_else(|| "chain3".into()),
        source_limit: num("--limit", 4000),
        source_delay_us: num("--delay-us", 300),
        keyed_state: num("--keyed-state", 0),
        sawtooth_window: num("--sawtooth-window", 0),
        shards: num("--shards", 0),
        ckpt_interval: Duration::from_millis(num("--ckpt-ms", 120)),
        hb_timeout: Duration::from_millis(num("--hb-timeout-ms", 500)),
        barrier_stall: match num("--barrier-stall-ms", 0) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        respawn_wait: Duration::from_millis(num("--respawn-wait-ms", 2000)),
        deadline: Duration::from_secs(num("--deadline-secs", 120)),
        result_file: get("--result-file").map(PathBuf::from),
        // Gateway mode is keyed on --gate-producers: 0 (the default)
        // keeps every source a demo source.
        gate: match num("--gate-producers", 0) {
            0 => None,
            n => Some(GateConfig {
                budget_bytes: num("--gate-budget-bytes", 0),
                budget_batches: num("--gate-budget-batches", 0),
                preagg: num("--gate-preagg", 1) != 0,
                expected_producers: n as u32,
                retry_after_ms: num("--gate-retry-ms", 50),
            }),
        },
        aware: num("--aware", 0) != 0,
        aware_sample: Duration::from_millis(num("--aware-sample-ms", 100)),
        aware_profile_periods: num("--aware-profile-periods", 2) as u32,
        recovery_budget: match num("--recovery-budget-ms", 0) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
    };
    match run_controller(cfg) {
        Ok(report) => {
            println!(
                "ms-controller: done, recoveries={} checkpoints={} restore_epochs={:?}",
                report.recoveries, report.checkpoints, report.restore_epochs
            );
            print!("{}", report.render());
        }
        Err(e) => {
            eprintln!("ms-controller: error: {e}");
            std::process::exit(1);
        }
    }
}
