//! Measurement primitives used by the evaluation harness.
//!
//! The paper reports: end-to-end throughput (tuples per 10-minute
//! window) and average latency (Figs. 12–13), instantaneous latency
//! time series (Fig. 15), checkpoint-time and recovery-time breakdowns
//! (Figs. 14, 16), and state-size traces (Fig. 5). These types collect
//! exactly those quantities.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A point-in-time reading of one worker's backpressure state: how
/// much input is queued ahead of its hosts and how much the alignment
/// windows are holding back. Rising queue depths or window occupancy
/// are the early signal of a stalled stage — visible in the heartbeat
/// long before the stall degrades into a timeout-detected failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackpressureGauges {
    /// Tuples sitting unread in host input channels.
    pub queued_tuples: u64,
    /// Alignment windows currently open (epochs mid-alignment).
    pub open_windows: u64,
    /// Tuples buffered inside open alignment windows (arrived after a
    /// token, held back until the epoch cuts).
    pub window_tuples: u64,
}

impl BackpressureGauges {
    /// Field-wise sum — aggregates per-host readings into a worker
    /// total.
    pub fn merge(&self, other: &BackpressureGauges) -> BackpressureGauges {
        BackpressureGauges {
            queued_tuples: self.queued_tuples + other.queued_tuples,
            open_windows: self.open_windows + other.open_windows,
            window_tuples: self.window_tuples + other.window_tuples,
        }
    }
}

/// Lock-free gauge set a host thread updates as it runs and a
/// heartbeat thread samples concurrently. One meter per host; the
/// worker merges the snapshots (see [`BackpressureGauges::merge`]).
#[derive(Debug, Default)]
pub struct BackpressureMeter {
    queued_tuples: AtomicU64,
    open_windows: AtomicU64,
    window_tuples: AtomicU64,
}

impl BackpressureMeter {
    /// Creates a zeroed meter.
    pub fn new() -> BackpressureMeter {
        BackpressureMeter::default()
    }

    /// Records the current input-queue depth (tuples unread across the
    /// host's input channels).
    pub fn set_queue_depth(&self, tuples: u64) {
        self.queued_tuples.store(tuples, Ordering::Relaxed);
    }

    /// Records the alignment-window occupancy: open windows and the
    /// tuples buffered inside them.
    pub fn set_window_occupancy(&self, open: u64, buffered: u64) {
        self.open_windows.store(open, Ordering::Relaxed);
        self.window_tuples.store(buffered, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time reading (each gauge is read
    /// atomically; the set is advisory, not transactional).
    pub fn sample(&self) -> BackpressureGauges {
        BackpressureGauges {
            queued_tuples: self.queued_tuples.load(Ordering::Relaxed),
            open_windows: self.open_windows.load(Ordering::Relaxed),
            window_tuples: self.window_tuples.load(Ordering::Relaxed),
        }
    }
}

/// Lock-free per-operator (per-HAU) meter: the host thread and the
/// persister thread bump it on their hot paths with relaxed atomics,
/// and a sampler (heartbeat thread, `LiveRuntime::telemetry`) reads it
/// concurrently. Collects the quantities the paper's evaluation plots
/// per HAU: tuple flow, the state-size trace (Fig. 5), and the
/// checkpoint phase breakdown (Fig. 14) with delta-vs-full byte
/// accounting.
///
/// Every field is an independent `AtomicU64`; a [`sample`] is advisory
/// (fields may be from slightly different instants) but each counter
/// is individually exact and monotone — a sampler can never observe a
/// torn or decreasing total.
///
/// Each field has exactly one writer: the host thread owns the flow
/// counters and the state gauge (written at the snapshot cut), the
/// persister thread owns the checkpoint fields. That contract lets
/// the tuple-path increments be a relaxed
/// load+store pair instead of an atomic read-modify-write — plain
/// `mov`s on x86, keeping the metered hot path within the ≤2%
/// throughput budget — while any number of samplers read concurrently.
///
/// [`sample`]: OperatorMeter::sample
#[derive(Debug, Default)]
pub struct OperatorMeter {
    tuples_in: AtomicU64,
    tuples_out: AtomicU64,
    bytes_out: AtomicU64,
    state_bytes: AtomicU64,
    ckpt_epoch: AtomicU64,
    ckpt_bytes: AtomicU64,
    ckpt_delta: AtomicU64,
    full_bytes_total: AtomicU64,
    delta_bytes_total: AtomicU64,
    align_wait_us: AtomicU64,
    serialize_us: AtomicU64,
    persist_us: AtomicU64,
}

impl OperatorMeter {
    /// Creates a zeroed meter.
    pub fn new() -> OperatorMeter {
        OperatorMeter::default()
    }

    /// Counts `n` tuples applied to the operator. Host-thread only
    /// (the single-writer contract): the load+store pair is exact
    /// without an atomic read-modify-write.
    pub fn add_tuples_in(&self, n: u64) {
        let v = self.tuples_in.load(Ordering::Relaxed);
        self.tuples_in.store(v + n, Ordering::Relaxed);
    }

    /// Counts `n` emitted tuples carrying `bytes` of payload.
    /// Host-thread only, like [`add_tuples_in`].
    ///
    /// [`add_tuples_in`]: OperatorMeter::add_tuples_in
    pub fn add_tuples_out(&self, n: u64, bytes: u64) {
        let t = self.tuples_out.load(Ordering::Relaxed);
        self.tuples_out.store(t + n, Ordering::Relaxed);
        let b = self.bytes_out.load(Ordering::Relaxed);
        self.bytes_out.store(b + bytes, Ordering::Relaxed);
    }

    /// Records the operator's logical state size, sampled at snapshot
    /// time — the live feed for the paper's Fig. 5 state-size trace.
    pub fn set_state_bytes(&self, bytes: u64) {
        self.state_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Records one durable checkpoint: its epoch, encoded size,
    /// delta-vs-full kind, and per-phase timings (align-wait measured
    /// host-side, serialize/persist measured on the persister thread).
    /// Called once per epoch from the persister after the write lands.
    pub fn record_checkpoint(
        &self,
        epoch: u64,
        bytes: u64,
        delta: bool,
        align_us: u64,
        serialize_us: u64,
        persist_us: u64,
    ) {
        self.ckpt_bytes.store(bytes, Ordering::Relaxed);
        self.ckpt_delta.store(delta as u64, Ordering::Relaxed);
        if delta {
            self.delta_bytes_total.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.full_bytes_total.fetch_add(bytes, Ordering::Relaxed);
        }
        self.align_wait_us.store(align_us, Ordering::Relaxed);
        self.serialize_us.store(serialize_us, Ordering::Relaxed);
        self.persist_us.store(persist_us, Ordering::Relaxed);
        // Epoch last: a sampler that sees the new epoch has, at worst,
        // gauge values at most one store behind it.
        self.ckpt_epoch.store(epoch, Ordering::Relaxed);
    }

    /// A point-in-time reading of every gauge and counter.
    pub fn sample(&self) -> OperatorSample {
        OperatorSample {
            tuples_in: self.tuples_in.load(Ordering::Relaxed),
            tuples_out: self.tuples_out.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            state_bytes: self.state_bytes.load(Ordering::Relaxed),
            ckpt_epoch: self.ckpt_epoch.load(Ordering::Relaxed),
            ckpt_bytes: self.ckpt_bytes.load(Ordering::Relaxed),
            ckpt_is_delta: self.ckpt_delta.load(Ordering::Relaxed) != 0,
            full_bytes_total: self.full_bytes_total.load(Ordering::Relaxed),
            delta_bytes_total: self.delta_bytes_total.load(Ordering::Relaxed),
            align_wait_us: self.align_wait_us.load(Ordering::Relaxed),
            serialize_us: self.serialize_us.load(Ordering::Relaxed),
            persist_us: self.persist_us.load(Ordering::Relaxed),
        }
    }
}

/// One reading of an [`OperatorMeter`] — a plain value that crosses
/// threads and the wire (workers fold these into telemetry messages;
/// the controller keys them into the run ledger).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorSample {
    /// Tuples applied to the operator since launch.
    pub tuples_in: u64,
    /// Tuples emitted since launch.
    pub tuples_out: u64,
    /// Payload bytes emitted since launch.
    pub bytes_out: u64,
    /// Logical state size at the last snapshot.
    pub state_bytes: u64,
    /// Epoch of the most recent durable checkpoint (0 = none yet).
    pub ckpt_epoch: u64,
    /// Encoded bytes of that checkpoint (delta bytes if incremental).
    pub ckpt_bytes: u64,
    /// Whether that checkpoint was a delta rather than a full snapshot.
    pub ckpt_is_delta: bool,
    /// Cumulative encoded bytes of full checkpoints.
    pub full_bytes_total: u64,
    /// Cumulative encoded bytes of delta checkpoints.
    pub delta_bytes_total: u64,
    /// Token-alignment wait for the last checkpoint (window opened →
    /// window cut), µs. Zero for sources.
    pub align_wait_us: u64,
    /// State-serialization time for the last checkpoint, µs.
    pub serialize_us: u64,
    /// Stable-store write time for the last checkpoint, µs.
    pub persist_us: u64,
}

impl OperatorSample {
    /// The last checkpoint's phase breakdown in the paper's Fig. 14
    /// shape: align-wait (token collection) / serialize / persist.
    pub fn ckpt_breakdown(&self) -> Breakdown {
        let mut b = Breakdown::new();
        b.add("align_wait", SimDuration::from_micros(self.align_wait_us));
        b.add("serialize", SimDuration::from_micros(self.serialize_us));
        b.add("persist", SimDuration::from_micros(self.persist_us));
        b
    }
}

/// Sub-bucket resolution of [`LatencyHistogram`]: each power-of-two
/// range is split into `2^SUB_BITS` linear sub-buckets, bounding the
/// relative quantile error at `2^-SUB_BITS` (6.25%).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;

/// A fixed-bucket log-linear histogram over unit-agnostic `u64` ticks
/// (microseconds for [`DurationStats`], nanoseconds in benches that
/// need sub-µs resolution). Values below `2^SUB_BITS` get exact
/// single-value buckets; above that, buckets widen geometrically with
/// 16 linear sub-buckets per octave, so any quantile is reported
/// within ~6% of the true sample. Memory is bounded (≤ 976 counters)
/// and grows lazily from the low buckets, so an empty histogram is a
/// few words.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros();
            let sub = ((v >> (exp - SUB_BITS)) as usize) - SUB;
            (exp - SUB_BITS) as usize * SUB + SUB + sub
        }
    }

    /// Inclusive upper bound of bucket `i` — what quantiles report, so
    /// percentile estimates never undershoot the true sample.
    fn bucket_high(i: usize) -> u64 {
        if i < SUB {
            i as u64
        } else {
            let oct = ((i - SUB) / SUB) as u32;
            let sub = ((i - SUB) % SUB) as u64;
            ((SUB as u64 + sub) << oct).saturating_add((1u64 << oct) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let i = LatencyHistogram::bucket_of(v);
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (`0.0..=1.0`) in the histogram's tick unit, or
    /// zero when empty. Reports the containing bucket's upper bound.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return LatencyHistogram::bucket_high(i);
            }
        }
        LatencyHistogram::bucket_high(self.counts.len().saturating_sub(1))
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Streaming summary of a sequence of duration samples, including
/// fixed-bucket percentiles (see [`LatencyHistogram`]).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DurationStats {
    count: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
    hist: LatencyHistogram,
}

impl DurationStats {
    /// Creates an empty summary.
    pub fn new() -> DurationStats {
        DurationStats {
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            hist: LatencyHistogram::new(),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        self.count += 1;
        self.sum_us += us as u128;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.hist.record(us);
    }

    /// The `q`-quantile (`0.0..=1.0`), within ~6% relative error,
    /// clamped to the observed maximum. Zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        SimDuration::from_micros(self.hist.quantile(q).min(self.max_us))
    }

    /// Median sample.
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// 95th-percentile sample.
    pub fn p95(&self) -> SimDuration {
        self.quantile(0.95)
    }

    /// 99th-percentile sample.
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((self.sum_us / self.count as u128) as u64)
        }
    }

    /// Smallest sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.min_us)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_us)
    }
}

/// A `(time, value)` series, e.g. state size over time (Fig. 5) or
/// instantaneous latency during a checkpoint (Fig. 15).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Appends a point. Times must be non-decreasing; a timestamp that
    /// precedes the last recorded point is clamped to the last point's
    /// time, so wall-clock jitter across workers (or a stepped clock)
    /// cannot break the sorted-order invariant [`interpolate`] and the
    /// ledger series rely on. Used to be a debug-only assertion, which
    /// let release builds silently record out-of-order times.
    ///
    /// [`interpolate`]: TimeSeries::interpolate
    pub fn push(&mut self, t: SimTime, v: f64) {
        let t = match self.points.last() {
            Some(&(last, _)) if t < last => last,
            _ => t,
        };
        self.points.push((t, v));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values (time-unweighted), or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Largest value, or zero when empty.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Smallest value, or zero when empty.
    pub fn min(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min)
        }
    }

    /// Indices of strict local minima (the red circles of Fig. 5).
    /// Plateau edges are treated as minima if both strict neighbours
    /// are larger.
    pub fn local_minima(&self) -> Vec<usize> {
        let v = &self.points;
        let n = v.len();
        let mut out = Vec::new();
        for i in 0..n {
            let left_greater = (0..i).rev().find(|&j| v[j].1 != v[i].1);
            let right_greater = (i + 1..n).find(|&j| v[j].1 != v[i].1);
            let left_ok = left_greater.is_some_and(|j| v[j].1 > v[i].1);
            let right_ok = right_greater.is_some_and(|j| v[j].1 > v[i].1);
            if left_ok && right_ok {
                out.push(i);
            }
        }
        out
    }

    /// Linear interpolation between recorded points; clamps outside the
    /// domain. Matches the paper's reconstruction of state size between
    /// turning points (§III-C2).
    pub fn interpolate(&self, t: SimTime) -> f64 {
        match self.points.as_slice() {
            [] => 0.0,
            [(_, v)] => *v,
            points => {
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let i = points.partition_point(|&(pt, _)| pt <= t);
                let (t0, v0) = points[i - 1];
                let (t1, v1) = points[i];
                if t1 == t0 {
                    return v1;
                }
                let frac = (t.as_micros() - t0.as_micros()) as f64
                    / (t1.as_micros() - t0.as_micros()) as f64;
                v0 + (v1 - v0) * frac
            }
        }
    }
}

/// A labelled breakdown of one measured duration into phases — used for
/// checkpoint time (token collection / disk I/O / other, Fig. 14) and
/// recovery time (reconnection / disk I/O / other, Fig. 16).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Breakdown {
    parts: Vec<(String, SimDuration)>,
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Breakdown {
        Breakdown::default()
    }

    /// Adds `d` to the phase named `label` (creating it if new).
    pub fn add(&mut self, label: &str, d: SimDuration) {
        if let Some(entry) = self.parts.iter_mut().find(|(l, _)| l == label) {
            entry.1 += d;
        } else {
            self.parts.push((label.to_string(), d));
        }
    }

    /// The phase durations, in insertion order.
    pub fn parts(&self) -> &[(String, SimDuration)] {
        &self.parts
    }

    /// Duration of one phase (zero if absent).
    pub fn get(&self, label: &str) -> SimDuration {
        self.parts
            .iter()
            .find(|(l, _)| l == label)
            .map_or(SimDuration::ZERO, |(_, d)| *d)
    }

    /// Sum over all phases.
    pub fn total(&self) -> SimDuration {
        self.parts
            .iter()
            .fold(SimDuration::ZERO, |acc, (_, d)| acc + *d)
    }
}

/// Throughput/latency aggregates for one run.
///
/// Throughput counts every data tuple *processed* by the application
/// ("the number of tuples processed by the application within a
/// 10-minute time window", §IV-A). Latency is end-to-end: it is
/// sampled wherever a tuple is terminally consumed — at a sink, or at
/// an absorbing operator (e.g. a windowed kernel pooling its input).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Data tuples processed by any operator inside the window.
    pub processed_tuples: u64,
    /// Tuples terminally consumed (sink arrivals + absorptions).
    pub sink_tuples: u64,
    /// Source-to-consumption latency of those tuples.
    pub latency: DurationStats,
    /// Instantaneous latency samples `(arrival time, latency seconds)`.
    pub instantaneous_latency: TimeSeries,
}

impl RunMetrics {
    /// Creates empty metrics.
    pub fn new() -> RunMetrics {
        RunMetrics::default()
    }

    /// Counts one processed data tuple.
    pub fn record_processed(&mut self) {
        self.processed_tuples += 1;
    }

    /// Records one terminal consumption (sink arrival or absorption).
    pub fn record_sink_arrival(&mut self, now: SimTime, emitted: SimTime) {
        self.record_completion(now, now.saturating_since(emitted));
    }

    /// Records a terminal consumption observed at `observed_at` with an
    /// explicit end-to-end latency. `observed_at` must be non-decreasing
    /// across calls (use the observation instant, not the completion
    /// instant, when several workers finish out of order).
    pub fn record_completion(&mut self, observed_at: SimTime, latency: SimDuration) {
        self.sink_tuples += 1;
        self.latency.record(latency);
        self.instantaneous_latency
            .push(observed_at, latency.as_secs_f64());
    }

    /// Throughput over a window, in processed tuples/second.
    pub fn throughput(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            0.0
        } else {
            self.processed_tuples as f64 / window.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpressure_meter_samples_and_merges() {
        let m = BackpressureMeter::new();
        assert_eq!(m.sample(), BackpressureGauges::default());
        m.set_queue_depth(12);
        m.set_window_occupancy(2, 7);
        let a = m.sample();
        assert_eq!(a.queued_tuples, 12);
        assert_eq!(a.open_windows, 2);
        assert_eq!(a.window_tuples, 7);
        let b = BackpressureGauges {
            queued_tuples: 3,
            open_windows: 1,
            window_tuples: 0,
        };
        let merged = a.merge(&b);
        assert_eq!(merged.queued_tuples, 15);
        assert_eq!(merged.open_windows, 3);
        assert_eq!(merged.window_tuples, 7);
    }

    #[test]
    fn duration_stats() {
        let mut s = DurationStats::new();
        assert_eq!(s.mean(), SimDuration::ZERO);
        s.record(SimDuration::from_secs(1));
        s.record(SimDuration::from_secs(3));
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), SimDuration::from_secs(2));
        assert_eq!(s.min(), SimDuration::from_secs(1));
        assert_eq!(s.max(), SimDuration::from_secs(3));
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        // Exact single-value buckets below 2^SUB_BITS.
        for v in 0..16u64 {
            let mut one = LatencyHistogram::new();
            one.record(v);
            assert_eq!(one.p50(), v);
        }
    }

    #[test]
    fn histogram_quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.50, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let est = h.quantile(q);
            assert!(
                est >= exact && est as f64 <= exact as f64 * 1.07,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        // Empty histogram reports zero.
        assert_eq!(LatencyHistogram::new().quantile(0.99), 0);
        // Huge values don't overflow the bucket math.
        let mut big = LatencyHistogram::new();
        big.record(u64::MAX);
        assert!(big.p99() >= u64::MAX / 16 * 15);
    }

    #[test]
    fn duration_stats_percentiles() {
        let mut s = DurationStats::new();
        for ms in 1..=1000u64 {
            s.record(SimDuration::from_millis(ms));
        }
        let p50 = s.p50().as_micros();
        let p99 = s.p99().as_micros();
        assert!((500_000..=535_000).contains(&p50), "p50 {p50}");
        assert!((990_000..=1_000_000).contains(&p99), "p99 {p99}");
        // Percentiles never exceed the observed maximum.
        assert!(s.p99() <= s.max());
        assert_eq!(DurationStats::new().p99(), SimDuration::ZERO);
    }

    #[test]
    fn operator_meter_counts_and_breakdown() {
        let m = OperatorMeter::new();
        assert_eq!(m.sample(), OperatorSample::default());
        m.add_tuples_in(3);
        m.add_tuples_out(2, 64);
        m.set_state_bytes(1024);
        m.record_checkpoint(7, 256, true, 10, 20, 30);
        let s = m.sample();
        assert_eq!(s.tuples_in, 3);
        assert_eq!(s.tuples_out, 2);
        assert_eq!(s.bytes_out, 64);
        assert_eq!(s.state_bytes, 1024);
        assert_eq!(s.ckpt_epoch, 7);
        assert_eq!(s.ckpt_bytes, 256);
        assert!(s.ckpt_is_delta);
        assert_eq!(s.delta_bytes_total, 256);
        assert_eq!(s.full_bytes_total, 0);
        m.record_checkpoint(8, 4096, false, 1, 2, 3);
        assert_eq!(m.sample().full_bytes_total, 4096);
        assert_eq!(m.sample().delta_bytes_total, 256);
        let b = s.ckpt_breakdown();
        assert_eq!(b.get("align_wait"), SimDuration::from_micros(10));
        assert_eq!(b.get("serialize"), SimDuration::from_micros(20));
        assert_eq!(b.get("persist"), SimDuration::from_micros(30));
        assert_eq!(b.total(), SimDuration::from_micros(60));
    }

    #[test]
    fn operator_meter_concurrent_updates_never_tear() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        const TUPLES: u64 = 200_000;
        const EPOCHS: u64 = 200;
        let meter = Arc::new(OperatorMeter::new());
        let done = Arc::new(AtomicBool::new(false));

        let sampler = {
            let meter = Arc::clone(&meter);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last = OperatorSample::default();
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) {
                    let s = meter.sample();
                    // Counters are monotone: a torn or word-sliced read
                    // would show up as a decrease.
                    assert!(s.tuples_in >= last.tuples_in);
                    assert!(s.tuples_out >= last.tuples_out);
                    assert!(s.bytes_out >= last.bytes_out);
                    assert!(s.full_bytes_total >= last.full_bytes_total);
                    assert!(s.ckpt_epoch >= last.ckpt_epoch);
                    last = s;
                    reads += 1;
                }
                reads
            })
        };

        // The real writer topology (the single-writer contract): the
        // host thread owns the flow counters, the persister thread
        // owns the state gauge and checkpoint fields, and the sampler
        // races both.
        let host = {
            let meter = Arc::clone(&meter);
            std::thread::spawn(move || {
                for _ in 0..TUPLES {
                    meter.add_tuples_in(1);
                    meter.add_tuples_out(1, 8);
                }
            })
        };
        let persister = {
            let meter = Arc::clone(&meter);
            std::thread::spawn(move || {
                for e in 1..=EPOCHS {
                    meter.set_state_bytes(64 * e);
                    meter.record_checkpoint(e, 100, false, 1, 2, 3);
                }
            })
        };
        host.join().unwrap();
        persister.join().unwrap();
        done.store(true, Ordering::Release);
        assert!(sampler.join().unwrap() > 0, "sampler observed the run");

        let s = meter.sample();
        assert_eq!(s.tuples_in, TUPLES);
        assert_eq!(s.tuples_out, TUPLES);
        assert_eq!(s.bytes_out, TUPLES * 8);
        assert_eq!(s.ckpt_epoch, EPOCHS);
        assert_eq!(s.full_bytes_total, 100 * EPOCHS);
    }

    #[test]
    fn time_series_stats_and_minima() {
        let mut ts = TimeSeries::new();
        let vals = [5.0, 3.0, 4.0, 1.0, 2.0];
        for (i, v) in vals.iter().enumerate() {
            ts.push(SimTime::from_secs(i as u64), *v);
        }
        assert_eq!(ts.mean(), 3.0);
        assert_eq!(ts.max(), 5.0);
        assert_eq!(ts.min(), 1.0);
        assert_eq!(ts.local_minima(), vec![1, 3]);
    }

    #[test]
    fn out_of_order_push_is_clamped() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(5), 1.0);
        ts.push(SimTime::from_secs(3), 2.0); // behind: clamped to t=5
        ts.push(SimTime::from_secs(7), 3.0);
        assert_eq!(
            ts.points(),
            &[
                (SimTime::from_secs(5), 1.0),
                (SimTime::from_secs(5), 2.0),
                (SimTime::from_secs(7), 3.0),
            ]
        );
        // The series stays sorted, so interpolation still works.
        assert_eq!(ts.interpolate(SimTime::from_secs(6)), 2.5);
    }

    #[test]
    fn minima_handles_plateaus() {
        let mut ts = TimeSeries::new();
        for (i, v) in [3.0, 1.0, 1.0, 2.0].iter().enumerate() {
            ts.push(SimTime::from_secs(i as u64), *v);
        }
        // Both plateau points qualify: nearest differing neighbours are
        // larger on each side.
        assert_eq!(ts.local_minima(), vec![1, 2]);
    }

    #[test]
    fn interpolation() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 0.0);
        ts.push(SimTime::from_secs(10), 100.0);
        assert_eq!(ts.interpolate(SimTime::from_secs(5)), 50.0);
        assert_eq!(ts.interpolate(SimTime::from_secs(20)), 100.0);
        assert_eq!(ts.interpolate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn breakdown_accumulates() {
        let mut b = Breakdown::new();
        b.add("disk", SimDuration::from_secs(2));
        b.add("disk", SimDuration::from_secs(1));
        b.add("other", SimDuration::from_secs(4));
        assert_eq!(b.get("disk"), SimDuration::from_secs(3));
        assert_eq!(b.total(), SimDuration::from_secs(7));
        assert_eq!(b.get("missing"), SimDuration::ZERO);
    }

    #[test]
    fn run_metrics_throughput() {
        let mut m = RunMetrics::new();
        m.record_processed();
        m.record_processed();
        m.record_sink_arrival(SimTime::from_secs(2), SimTime::from_secs(1));
        m.record_sink_arrival(SimTime::from_secs(4), SimTime::from_secs(1));
        assert_eq!(m.sink_tuples, 2);
        assert_eq!(m.processed_tuples, 2);
        assert_eq!(m.throughput(SimDuration::from_secs(2)), 1.0);
        assert_eq!(m.latency.mean(), SimDuration::from_secs(2));
    }
}
