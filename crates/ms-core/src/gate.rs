//! The producer-facing ingestion protocol and gateway configuration.
//!
//! External producers are not HAUs: they are unreliable clients pushing
//! batched events at an ingestion gateway (`ms-gate`) over TCP. This
//! module defines their wire alphabet — length-prefixed frames (the
//! same [`crate::codec::frame`] layer the cluster protocol uses)
//! carrying a [`GateMsg`] — plus the [`GateConfig`] knobs the gateway
//! runs under.
//!
//! # Protocol contract
//!
//! A connection opens with [`GateMsg::Hello`] binding it to a producer
//! id, then carries stop-and-wait batches: the producer sends one
//! [`GateMsg::Batch`] and waits for the gateway's ack before the next.
//! Batch ids are strictly increasing per producer; a batch is retried
//! (same id, same events) until [`GateMsg::Accepted`] arrives. The
//! gateway acks `Accepted` only *after* the batch is durable in the
//! preservation log (ack-after-WAL), so an acked batch survives a
//! SIGKILL of the hosting worker; a retried batch whose id the gateway
//! already accepted is acked again without being re-admitted
//! (duplicate idempotence). [`GateMsg::Busy`] means the batch was shed
//! at admission — nothing was logged or emitted — and the producer
//! should retry after the hinted delay. [`GateMsg::Fin`] declares a
//! producer done; the gateway closes its downstream stream once every
//! expected producer has finished.

use crate::codec::{SnapshotReader, SnapshotWriter};
use crate::error::{Error, Result};

/// Logical admission cost charged per event: one key plus one value,
/// both 8 bytes. Admission budgets and `ingest_swarm` reduction ratios
/// are measured in these units.
pub const EVENT_BYTES: u64 = 16;

const TAG_HELLO: u64 = 1;
const TAG_BATCH: u64 = 2;
const TAG_FIN: u64 = 3;
const TAG_ACCEPTED: u64 = 4;
const TAG_BUSY: u64 = 5;
const TAG_FIN_OK: u64 = 6;

/// One message of the producer↔gateway protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateMsg {
    /// Binds the connection to a producer id (first frame, and again
    /// after every reconnect).
    Hello {
        /// The producer's stable identity.
        producer: u64,
    },
    /// One batch of `(key, value)` events. Batch ids are strictly
    /// increasing per producer; retries reuse the id.
    Batch {
        /// Per-producer batch id.
        batch: u64,
        /// The batched events, in producer order.
        events: Vec<(u64, i64)>,
    },
    /// The producer has no more batches.
    Fin {
        /// The producer's stable identity (repeated so a `Fin` retried
        /// on a fresh connection is self-describing).
        producer: u64,
    },
    /// Gateway → producer: the batch is durable in the preservation
    /// log (or was already accepted earlier — duplicate retry).
    Accepted {
        /// The acked batch id.
        batch: u64,
    },
    /// Gateway → producer: the batch was shed at admission (budget
    /// exhausted); nothing was logged. Retry after the hinted delay.
    Busy {
        /// The shed batch id.
        batch: u64,
        /// Suggested retry delay.
        retry_after_ms: u64,
    },
    /// Gateway → producer: the `Fin` was recorded.
    FinOk,
}

impl GateMsg {
    /// Serializes the message payload (the caller frames it).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        match self {
            GateMsg::Hello { producer } => {
                w.put_u64(TAG_HELLO).put_u64(*producer);
            }
            GateMsg::Batch { batch, events } => {
                w.put_u64(TAG_BATCH).put_u64(*batch);
                w.put_seq(events.iter(), |w, (k, v)| {
                    w.put_u64(*k).put_i64(*v);
                });
            }
            GateMsg::Fin { producer } => {
                w.put_u64(TAG_FIN).put_u64(*producer);
            }
            GateMsg::Accepted { batch } => {
                w.put_u64(TAG_ACCEPTED).put_u64(*batch);
            }
            GateMsg::Busy {
                batch,
                retry_after_ms,
            } => {
                w.put_u64(TAG_BUSY).put_u64(*batch).put_u64(*retry_after_ms);
            }
            GateMsg::FinOk => {
                w.put_u64(TAG_FIN_OK);
            }
        }
        w.finish()
    }

    /// Decodes one message payload; trailing bytes are an error.
    pub fn decode(buf: &[u8]) -> Result<GateMsg> {
        let mut r = SnapshotReader::new(buf);
        let msg = match r.get_u64()? {
            TAG_HELLO => GateMsg::Hello {
                producer: r.get_u64()?,
            },
            TAG_BATCH => GateMsg::Batch {
                batch: r.get_u64()?,
                events: r.get_seq(|r| Ok((r.get_u64()?, r.get_i64()?)))?,
            },
            TAG_FIN => GateMsg::Fin {
                producer: r.get_u64()?,
            },
            TAG_ACCEPTED => GateMsg::Accepted {
                batch: r.get_u64()?,
            },
            TAG_BUSY => GateMsg::Busy {
                batch: r.get_u64()?,
                retry_after_ms: r.get_u64()?,
            },
            TAG_FIN_OK => GateMsg::FinOk,
            tag => return Err(Error::Codec(format!("unknown gate message tag {tag}"))),
        };
        if !r.is_exhausted() {
            return Err(Error::Codec("trailing bytes after gate message".into()));
        }
        Ok(msg)
    }

    /// Logical admission cost of this message's events (zero for
    /// non-batch messages).
    pub fn admission_bytes(&self) -> u64 {
        match self {
            GateMsg::Batch { events, .. } => events.len() as u64 * EVENT_BYTES,
            _ => 0,
        }
    }
}

/// Gateway configuration, carried in a deployment's `GateSpec`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GateConfig {
    /// Admission budget per epoch window in [`EVENT_BYTES`] units
    /// (0 = unbounded). A batch whose events would push the window
    /// past the budget is shed with [`GateMsg::Busy`].
    pub budget_bytes: u64,
    /// Admission budget per epoch window in batches (0 = unbounded).
    pub budget_batches: u64,
    /// Fold events per key inside each batch before they reach an
    /// engine edge (one emitted tuple per distinct key per batch).
    pub preagg: bool,
    /// Producers expected to [`GateMsg::Fin`] before the gateway
    /// closes its stream (0 = controller-driven stop only).
    pub expected_producers: u32,
    /// Retry hint carried in [`GateMsg::Busy`] acks.
    pub retry_after_ms: u64,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            budget_bytes: 0,
            budget_batches: 0,
            preagg: true,
            expected_producers: 0,
            retry_after_ms: 50,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{frame, FrameDecoder};

    fn all_messages() -> Vec<GateMsg> {
        vec![
            GateMsg::Hello { producer: 7 },
            GateMsg::Batch {
                batch: 3,
                events: vec![(1, -5), (u64::MAX, i64::MIN), (0, 0)],
            },
            GateMsg::Batch {
                batch: 0,
                events: Vec::new(),
            },
            GateMsg::Fin { producer: 9 },
            GateMsg::Accepted { batch: 3 },
            GateMsg::Busy {
                batch: 4,
                retry_after_ms: 50,
            },
            GateMsg::FinOk,
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let back = GateMsg::decode(&msg.encode()).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn stream_of_messages_roundtrips_over_frames() {
        let msgs = all_messages();
        let mut bytes = Vec::new();
        for m in &msgs {
            bytes.extend_from_slice(&frame(&m.encode()));
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let mut got = Vec::new();
        while let Some(payload) = dec.next_frame().unwrap() {
            got.push(GateMsg::decode(&payload).unwrap());
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_error() {
        let mut w = SnapshotWriter::new();
        w.put_u64(99);
        assert!(GateMsg::decode(&w.finish()).is_err());
        let mut bytes = GateMsg::FinOk.encode();
        bytes.extend_from_slice(&[0; 4]);
        assert!(GateMsg::decode(&bytes).is_err());
        assert!(GateMsg::decode(&[]).is_err());
    }

    #[test]
    fn admission_bytes_charges_events_only() {
        let b = GateMsg::Batch {
            batch: 1,
            events: vec![(1, 2), (3, 4)],
        };
        assert_eq!(b.admission_bytes(), 2 * EVENT_BYTES);
        assert_eq!(GateMsg::FinOk.admission_bytes(), 0);
    }
}
