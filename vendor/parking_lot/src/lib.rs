//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API shape the
//! workspace uses: non-poisoning `lock()` / `read()` / `write()` that
//! return guards directly instead of `Result`s.

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's non-poisoning `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
