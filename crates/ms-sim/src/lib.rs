//! Deterministic discrete-event simulation kernel.
//!
//! The reproduction replaces the paper's 56-node EC2 deployment with a
//! discrete-event simulation (see DESIGN.md §2). This crate is the
//! kernel: a virtual-time [`EventQueue`], a seeded, forkable random
//! stream ([`rng::DetRng`]), and a tiny driver loop ([`run`]). Every
//! higher layer (network, storage, cluster, runtime) schedules its
//! events here, so a whole experiment is a pure function of
//! `(configuration, seed)` — run it twice, get identical results.

#![warn(missing_docs)]

pub mod queue;
pub mod rng;

pub use queue::EventQueue;
pub use rng::DetRng;

use ms_core::time::SimTime;

/// A simulation world: owns all mutable component state and interprets
/// events. The kernel stays generic over the event type so substrate
/// crates can be tested with their own small event enums.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles one event at virtual time `now`. New events are
    /// scheduled onto `queue`; scheduling in the past is a bug and
    /// panics in debug builds.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Drains the queue until it is empty or virtual time would exceed
/// `until`; returns the number of events dispatched. Events scheduled
/// exactly at `until` are processed.
pub fn run<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>, until: SimTime) -> u64 {
    let mut dispatched = 0;
    while let Some(t) = queue.peek_time() {
        if t > until {
            break;
        }
        let (now, event) = queue.pop().expect("peeked entry must pop");
        world.handle(now, event, queue);
        dispatched += 1;
    }
    queue.advance_to(until);
    dispatched
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::time::SimDuration;

    struct Counter {
        fired: Vec<(SimTime, u32)>,
        respawn: bool,
    }

    impl World for Counter {
        type Event = u32;
        fn handle(&mut self, now: SimTime, e: u32, q: &mut EventQueue<u32>) {
            self.fired.push((now, e));
            if self.respawn && e < 3 {
                q.schedule_in(SimDuration::from_secs(1), e + 1);
            }
        }
    }

    #[test]
    fn run_dispatches_in_time_order_and_respects_bound() {
        let mut w = Counter {
            fired: vec![],
            respawn: false,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(30), 30);
        let n = run(&mut w, &mut q, SimTime::from_secs(10));
        assert_eq!(n, 3);
        assert_eq!(
            w.fired.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        // The bound advances the clock even when no event sits there.
        assert_eq!(q.now(), SimTime::from_secs(10));
        // The out-of-window event is still queued.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut w = Counter {
            fired: vec![],
            respawn: true,
        };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(0), 0);
        run(&mut w, &mut q, SimTime::from_secs(100));
        assert_eq!(w.fired.len(), 4);
        assert_eq!(w.fired[3].0, SimTime::from_secs(3));
    }
}
