//! Fig. 16 — worst-case recovery time, broken into reconnection /
//! disk I/O / other.
//!
//! All 55 compute nodes fail simultaneously; every HAU restarts on
//! replacement capacity and reads its state from shared storage.
//! MS-src and MS-src+ap share a bar (identical checkpoint contents up
//! to in-flight tuples); MS-src+ap+aa recovers from its minimal-state
//! checkpoint; the Oracle from a checkpoint forced at the true
//! minimal-state instant. The three applications' probe/fail chains
//! run concurrently; rows print in figure order.

use ms_bench::paper::FIG16_RECOVERY_SECS;
use ms_bench::runner::{paper_config, run_app, run_parallel, APPS};
use ms_bench::BenchArgs;
use ms_core::config::SchemeKind;
use ms_core::time::{SimDuration, SimTime};
use ms_runtime::report::rec_phase;
use ms_runtime::{FailTarget, FailurePlan, RunReport};

fn recovery_row(report: &RunReport) -> Option<[f64; 4]> {
    let rec = report.recoveries.first()?;
    Some([
        rec.breakdown.get(rec_phase::RECONNECTION).as_secs_f64(),
        rec.breakdown.get(rec_phase::DISK_IO).as_secs_f64(),
        rec.breakdown.get(rec_phase::OTHER).as_secs_f64(),
        rec.recovery_time().as_secs_f64(),
    ])
}

/// Runs every Fig. 16 measurement for one application and renders its
/// rows. Runs inside a sweep worker; only returns text.
fn app_block(ai: usize, app: &str, seed: u64) -> String {
    let paper = FIG16_RECOVERY_SECS[ai].1;
    let mut out = String::new();

    // MS-src(+ap): checkpoint at +200 s; probe for its completion
    // time, then fail 60 s after it.
    let mut cfg = paper_config(SchemeKind::MsSrcAp, 1, seed);
    cfg.measure = SimDuration::from_secs(900);
    let t_ck = SimTime::ZERO + cfg.warmup + SimDuration::from_secs(200);
    cfg.forced_checkpoints = vec![t_ck];
    let probe = run_app(app, cfg.clone());
    let done = probe
        .completed_checkpoints()
        .next()
        .and_then(|c| c.completed_at)
        .expect("forced checkpoint completes");
    cfg.failure = Some(FailurePlan {
        at: done + SimDuration::from_secs(60),
        target: FailTarget::AllComputeNodes,
    });
    let report = run_app(app, cfg);
    out.push_str(&row(app, "MS-src(+ap)", recovery_row(&report), paper[0]));

    // MS-src+ap+aa: let it choose its checkpoint, then fail 60 s
    // after completion (two-phase: probe run finds the time).
    let mut aa_cfg = paper_config(SchemeKind::MsSrcApAa, 1, seed);
    aa_cfg.measure = SimDuration::from_secs(900);
    let probe = run_app(app, aa_cfg.clone());
    let aa_done = probe
        .completed_checkpoints()
        .next()
        .and_then(|c| c.completed_at);
    if let Some(done) = aa_done {
        let mut cfg = aa_cfg;
        cfg.failure = Some(FailurePlan {
            at: done + SimDuration::from_secs(60),
            target: FailTarget::AllComputeNodes,
        });
        let report = run_app(app, cfg);
        out.push_str(&row(app, "MS-src+ap+aa", recovery_row(&report), paper[1]));
    } else {
        out.push_str(&format!(
            "{app:<12} MS-src+ap+aa (no completed checkpoint in probe)\n"
        ));
    }

    // Oracle: checkpoint forced at the minimal-state instant.
    let probe = run_app(app, paper_config(SchemeKind::MsSrcAp, 0, seed));
    let t_min = probe
        .state_trace
        .points()
        .iter()
        .skip_while(|(t, _)| t.as_secs_f64() < probe.window.as_secs_f64() * 0.2)
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|&(t, _)| t)
        .unwrap_or(SimTime::from_secs(300));
    let mut cfg = paper_config(SchemeKind::MsSrcAp, 1, seed);
    cfg.measure = SimDuration::from_secs(900);
    cfg.forced_checkpoints = vec![t_min];
    let probe = run_app(app, cfg.clone());
    let done = probe
        .completed_checkpoints()
        .next()
        .and_then(|c| c.completed_at)
        .expect("oracle checkpoint completes");
    cfg.failure = Some(FailurePlan {
        at: done + SimDuration::from_secs(60),
        target: FailTarget::AllComputeNodes,
    });
    let report = run_app(app, cfg);
    out.push_str(&row(app, "Oracle", recovery_row(&report), paper[2]));
    out
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    println!("Fig. 16: worst-case recovery time (s) — all compute nodes fail\n");
    println!(
        "{:<12} {:<14} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "app", "scheme", "reconnect", "disk", "other", "total", "paper"
    );
    let idx: Vec<usize> = (0..APPS.len()).collect();
    let blocks = run_parallel(&idx, args.threads(), |&ai| app_block(ai, APPS[ai], seed));
    for block in blocks {
        print!("{block}");
        println!();
    }
    println!("(baseline omitted: it \"can only handle single node failures\", §IV-C)");
}

fn row(app: &str, scheme: &str, vals: Option<[f64; 4]>, paper: f64) -> String {
    match vals {
        Some([rc, disk, other, total]) => format!(
            "{app:<12} {scheme:<14} {rc:>9.2} {disk:>8.2} {other:>8.2} {total:>8.2} {paper:>10.2}\n"
        ),
        None => format!("{app:<12} {scheme:<14} (no recovery recorded)\n"),
    }
}
