//! Case runner backing the `proptest!` macro.

use crate::TestRng;

/// A failed property case; carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs `property` over deterministically seeded cases, panicking on
/// the first failure with enough detail to replay it.
pub fn run<F>(name: &str, property: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for case in 0..case_count() {
        let seed = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::new(seed);
        if let Err(e) = property(&mut rng) {
            panic!("property {name} failed at case {case} (seed {seed:#x}): {e}");
        }
    }
}
