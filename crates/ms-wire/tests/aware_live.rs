//! End-to-end exercise of the live telemetry plane on a real
//! 3-process cluster: the controller profiles the running sawtooth
//! workload over worker heartbeats, arms the §III-C classifier, and
//! initiates at least one epoch barrier at a detected aggregate
//! local minimum — then survives a SIGKILL with a byte-identical
//! recovered answer, proving aware timing costs nothing in
//! correctness.
//!
//! The middle operator is [`SawtoothStat`](ms_wire::apps): its keyed
//! table collapses every `--sawtooth-window` applied tuples, so with
//! a key space larger than the window the state size ramps linearly
//! and crashes to near zero on a fixed cadence — the canonical
//! Fig. 10 shape, produced by real tuples instead of a trace.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ms_core::codec::SnapshotReader;
use ms_wire::{read_decisions, read_ledger, LEDGER_FILE};

const LIMIT: u64 = 12000;
const DELAY_US: u64 = 500;
/// Key space (values cycle through `v % KEYED_STATE`); must exceed the
/// sawtooth window so every in-window tuple inserts a fresh key and
/// the table *ramps* instead of saturating.
const KEYED_STATE: u64 = 4096;
/// Applied tuples between state collapses: at 500 µs per tuple the
/// aggregate state dives every ~500 ms, well inside a 1 s period.
const SAWTOOTH_WINDOW: u64 = 1000;

/// Kills every still-running child on drop so a failing assert never
/// leaks processes.
struct Cluster(Vec<Child>);

impl Cluster {
    fn push(&mut self, c: Child) -> usize {
        self.0.push(c);
        self.0.len() - 1
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn controller(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ms-controller"));
    cmd.args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--addr-file".as_ref(), dir.join("addr").as_os_str()])
        .args(["--result-file".as_ref(), dir.join("result").as_os_str()])
        .args(["--workers", "2", "--shape", "chain3"])
        .args(["--limit", &LIMIT.to_string()])
        .args(["--delay-us", &DELAY_US.to_string()])
        .args(["--keyed-state", &KEYED_STATE.to_string()])
        .args(["--sawtooth-window", &SAWTOOTH_WINDOW.to_string()])
        // One-second period, two profiling periods, 100 ms sampling:
        // the classifier arms ~2 s in, with ~4 s of sawtooth left.
        .args(["--ckpt-ms", "1000", "--aware", "1"])
        .args(["--aware-sample-ms", "100", "--aware-profile-periods", "2"])
        .args(["--hb-timeout-ms", "500"])
        .args(["--respawn-wait-ms", "3000", "--deadline-secs", "90"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    cmd
}

fn worker(dir: &Path, name: &str) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ms-worker"));
    cmd.args(["--name", name])
        .args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--controller-file".as_ref(), dir.join("addr").as_os_str()])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    cmd
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms_wire_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_exit(child: &mut Child, budget: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + budget;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "process did not exit within {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Highest *complete* application checkpoint epoch in the store.
fn max_complete_epoch(store: &Path) -> u64 {
    let mut per_epoch = std::collections::HashMap::new();
    let Ok(entries) = fs::read_dir(store.join("ckpt")) else {
        return 0;
    };
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if let Some(epoch) = name
            .strip_prefix('e')
            .and_then(|r| r.split_once("_op"))
            .and_then(|(e, _)| e.parse::<u64>().ok())
        {
            *per_epoch.entry(epoch).or_insert(0usize) += 1;
        }
    }
    per_epoch
        .iter()
        .filter(|(_, &n)| n >= 3)
        .map(|(&e, _)| e)
        .max()
        .unwrap_or(0)
}

/// `(recoveries line, sink lines)` from a result file.
fn parse_result(path: &Path) -> (String, Vec<String>) {
    let text = fs::read_to_string(path).unwrap();
    let mut lines = text.lines();
    let recoveries = lines.next().unwrap().to_string();
    (recoveries, lines.map(str::to_string).collect())
}

/// Decodes a `sink op{N} {hex}` line into the Summer's `(sum, count)`.
fn decode_sink(line: &str) -> (i64, u64) {
    let hex = line.rsplit(' ').next().unwrap();
    let bytes: Vec<u8> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect();
    let mut r = SnapshotReader::new(&bytes);
    (r.get_i64().unwrap(), r.get_u64().unwrap())
}

/// Asserts the decision trail shows the plane working: timer-paced
/// initiations while profiling, then at least one barrier initiated
/// at a detected aggregate local minimum.
fn check_decisions(store: &Path, run: &str) {
    let decisions = read_decisions(&store.join(LEDGER_FILE)).expect("decision trail must parse");
    assert!(!decisions.is_empty(), "{run}: no decision records");
    assert!(
        decisions.iter().any(|d| d.reason == "timer"),
        "{run}: no timer-paced initiation during the profiling phase"
    );
    assert!(
        decisions.iter().any(|d| d.reason == "local_minimum"),
        "{run}: classifier never initiated at a local minimum; reasons: {:?}",
        decisions
            .iter()
            .map(|d| d.reason.clone())
            .collect::<Vec<_>>()
    );
    for d in &decisions {
        assert!(d.period_us_before > 0, "{run}: decision without a period");
    }
    // Decision rows share the file with epoch rows without corrupting
    // them for the batch reader.
    let epochs = read_ledger(&store.join(LEDGER_FILE)).expect("epoch rows must still parse");
    assert!(!epochs.is_empty(), "{run}: epoch rows vanished");
}

#[test]
fn aware_cluster_checkpoints_at_minima_and_survives_sigkill() {
    // --- Reference run: no failure. ---
    let ref_dir = fresh_dir("aware_ref");
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&ref_dir).spawn().unwrap());
    cluster.push(worker(&ref_dir, "wa").spawn().unwrap());
    cluster.push(worker(&ref_dir, "wb").spawn().unwrap());
    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(80));
    assert!(status.success(), "reference controller failed: {status:?}");
    let (recoveries, ref_sinks) = parse_result(&ref_dir.join("result"));
    assert_eq!(recoveries, "recoveries=0");
    assert_eq!(ref_sinks.len(), 1);
    check_decisions(&ref_dir.join("store"), "reference");
    drop(cluster);

    // --- Failure run: SIGKILL the sawtooth worker mid-stream. ---
    let dir = fresh_dir("aware_kill");
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&dir).spawn().unwrap());
    cluster.push(worker(&dir, "wa").spawn().unwrap());
    // Placement is round-robin over sorted names: op0,op2 → wa and
    // op1 (the sawtooth table) → wb.
    let victim = cluster.push(worker(&dir, "wb").spawn().unwrap());

    // Let the stream run until at least two application checkpoints
    // are complete — past the profiling phase, so the rollback rewinds
    // an aware-timed epoch.
    let deadline = Instant::now() + Duration::from_secs(30);
    while max_complete_epoch(&dir.join("store")) < 2 {
        assert!(
            Instant::now() < deadline,
            "no complete checkpoint appeared in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        !dir.join("result").exists(),
        "stream finished before the kill; raise --limit"
    );
    cluster.0[victim].kill().unwrap(); // SIGKILL on unix
    let _ = cluster.0[victim].wait();
    // Spare worker takes the bench.
    cluster.push(worker(&dir, "wc").spawn().unwrap());

    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(80));
    assert!(status.success(), "recovery controller failed: {status:?}");
    let (recoveries, sinks) = parse_result(&dir.join("result"));
    assert_eq!(recoveries, "recoveries=1");

    // The recovered answer is byte-identical to the unfailed run: the
    // sawtooth phase counter rides the checkpoints, so replay rebuilds
    // the exact collapse schedule.
    assert_eq!(sinks, ref_sinks);
    let (sum, count) = decode_sink(&sinks[0]);
    assert_eq!(
        count, LIMIT,
        "exactly-once violated: lost or duplicated tuples"
    );
    // The sawtooth operator forwards every value doubled.
    let expected: i64 = 2 * (0..LIMIT as i64).sum::<i64>();
    assert_eq!(sum, expected);

    check_decisions(&dir.join("store"), "failure");
    // The measured recovery landed in the decision trail.
    let decisions = read_decisions(&dir.join("store").join(LEDGER_FILE)).unwrap();
    let rec: Vec<_> = decisions
        .iter()
        .filter(|d| d.reason == "recovery")
        .collect();
    assert_eq!(rec.len(), 1, "want exactly one recovery row: {rec:?}");
    assert!(rec[0].recovery_us > 0, "recovery time not measured");

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&dir);
}
