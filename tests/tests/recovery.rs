//! Failure and recovery semantics across schemes: rack bursts,
//! baseline single-node recovery, recovery-time structure.

mod common;

use common::{pipeline_app, sink_verdict};
use ms_core::config::{CheckpointConfig, SchemeKind};
use ms_core::ids::NodeId;
use ms_core::time::{SimDuration, SimTime};
use ms_runtime::report::rec_phase;
use ms_runtime::{Engine, EngineConfig, FailTarget, FailurePlan};

fn base_cfg(scheme: SchemeKind) -> EngineConfig {
    EngineConfig {
        scheme,
        ckpt: CheckpointConfig::n_in_window(3, SimDuration::from_secs(90)),
        warmup: SimDuration::from_secs(5),
        measure: SimDuration::from_secs(90),
        ..EngineConfig::default()
    }
}

#[test]
fn partial_burst_rolls_back_whole_application() {
    // Two of three pipeline nodes die (a "rack burst" at this scale).
    // Meteor Shower restores ALL HAUs to the MRC, not just the dead
    // ones, and the sink stays exactly-once.
    let (app, sink) = pipeline_app();
    let mut cfg = base_cfg(SchemeKind::MsSrcAp);
    cfg.failure = Some(FailurePlan {
        at: SimTime::from_secs(50),
        target: FailTarget::Nodes(vec![NodeId(1), NodeId(2)]),
    });
    let report = Engine::new(app, cfg).unwrap().run();
    let v = sink_verdict(&report, sink);
    assert!(
        v.exactly_once(),
        "count={} max={} sum={}",
        v.count,
        v.max_v,
        v.sum
    );
    let rec = &report.recoveries[0];
    // Two HAUs physically restart (their nodes died); the third is
    // rolled back in place — "all the operators in this application
    // are recovered simultaneously", which the exactly-once check
    // above already verified.
    assert_eq!(rec.restarted_haus, 2);
}

#[test]
fn baseline_single_node_recovery_is_exactly_once() {
    // The baseline's designed-for case: one (intermediate) node fails;
    // the HAU restarts from its own checkpoint and upstream neighbours
    // resend preserved tuples. Node 2 hosts the transform HAU.
    let (app, sink) = pipeline_app();
    let mut cfg = base_cfg(SchemeKind::Baseline);
    cfg.failure = Some(FailurePlan {
        at: SimTime::from_secs(50),
        target: FailTarget::Nodes(vec![NodeId(2)]),
    });
    let report = Engine::new(app, cfg).unwrap().run();
    let v = sink_verdict(&report, sink);
    assert!(v.count > 500, "sink made progress: {}", v.count);
    assert!(
        v.exactly_once(),
        "baseline single-node recovery: count={} max={} sum={}",
        v.count,
        v.max_v,
        v.sum
    );
    assert_eq!(
        report.recoveries[0].restarted_haus, 1,
        "only the failed HAU restarts"
    );
}

#[test]
fn recovery_breakdown_has_all_phases() {
    let (app, _) = pipeline_app();
    let mut cfg = base_cfg(SchemeKind::MsSrcAp);
    cfg.failure = Some(FailurePlan {
        at: SimTime::from_secs(60),
        target: FailTarget::AllComputeNodes,
    });
    let report = Engine::new(app, cfg).unwrap().run();
    let rec = &report.recoveries[0];
    assert!(rec.recovery_time() > SimDuration::ZERO);
    assert!(rec.breakdown.get(rec_phase::RECONNECTION) > SimDuration::ZERO);
    assert!(rec.breakdown.get(rec_phase::OTHER) > SimDuration::ZERO);
    // Detection precedes recovery; recovery follows the failure.
    assert!(rec.detected_at > rec.failed_at);
    assert!(rec.recovered_at > rec.detected_at);
}

#[test]
fn recovery_restores_from_most_recent_complete_checkpoint() {
    let (app, _) = pipeline_app();
    let mut cfg = base_cfg(SchemeKind::MsSrc);
    cfg.failure = Some(FailurePlan {
        at: SimTime::from_secs(70),
        target: FailTarget::AllComputeNodes,
    });
    let report = Engine::new(app, cfg).unwrap().run();
    let completed_before: Vec<_> = report
        .completed_checkpoints()
        .filter(|c| c.completed_at.unwrap() < SimTime::from_secs(70))
        .map(|c| c.epoch)
        .collect();
    let rec = &report.recoveries[0];
    assert_eq!(
        rec.epoch,
        *completed_before.iter().max().unwrap(),
        "recovered from the MRC"
    );
}

#[test]
fn larger_checkpointed_state_takes_longer_to_recover() {
    // Recovery disk I/O scales with checkpointed bytes: compare a
    // fresh (small-state) checkpoint against a later (bigger) one.
    let (app, _) = pipeline_app();
    let mut cfg = base_cfg(SchemeKind::MsSrcAp);
    cfg.forced_checkpoints = vec![SimTime::from_secs(10)];
    cfg.failure = Some(FailurePlan {
        at: SimTime::from_secs(30),
        target: FailTarget::AllComputeNodes,
    });
    let report_small = Engine::new(app, cfg).unwrap().run();

    let (app, _) = pipeline_app();
    let mut cfg = base_cfg(SchemeKind::MsSrcAp);
    cfg.forced_checkpoints = vec![SimTime::from_secs(80)];
    cfg.measure = SimDuration::from_secs(120);
    cfg.failure = Some(FailurePlan {
        at: SimTime::from_secs(95),
        target: FailTarget::AllComputeNodes,
    });
    let report_big = Engine::new(app, cfg).unwrap().run();

    let small = report_small.recoveries[0].recovery_time();
    let big = report_big.recoveries[0].recovery_time();
    assert!(
        big >= small,
        "bigger checkpoint ({big:?}) should not recover faster than smaller ({small:?})"
    );
}
