//! Application-aware checkpoint timing (§III-C, Figs. 10–11).
//!
//! The decision logic — profiling, `smax`/`smin` relaxation, half-drop
//! notifications, alert mode with summed-ICR turning points — lives in
//! [`ms_core::aware`] so the live cluster controller (`ms-wire`) and
//! this simulator drive one and the same implementation. This module
//! re-exports it under the historical path; the simulator's engine
//! feeds [`AwareController::on_sample`] from virtual time, the live
//! telemetry plane feeds the identical code from heartbeat wall-clock.

pub use ms_core::aware::{
    profile, AwareAction, AwareConfig, AwareController, CheckpointReason, LiveAwareConfig,
    LivePhase, LiveProfiler, Profile,
};
