//! Pooled operator state.
//!
//! All three case-study applications share the same state shape that
//! drives Fig. 5: a kernel operator accumulates input items (position
//! batches, camera frames) in an internal pool, then discards them at
//! a batch boundary (window close, bus arrival, vehicle departure).
//! [`Pool`] is that structure, with logical-size accounting via the
//! paper's sampling estimator, codec-based snapshot support, and
//! dirty tracking for incremental (delta) checkpoints: items mutate
//! only by appending at the tail and draining at the head, so the
//! pool tracks the unchanged prefix and reports everything past it as
//! the per-epoch change set (see `ms_core::delta`).

use std::collections::BTreeMap;

use ms_core::codec::{SnapshotReader, SnapshotWriter};
use ms_core::error::Result;
use ms_core::state::{estimate, StateSize};

/// One pooled item: the feature payload the kernel computes on plus
/// the logical byte size of the original data.
#[derive(Clone, Debug, PartialEq)]
pub struct PoolItem {
    /// Extracted features (e.g. a frame digest, speed samples).
    pub features: Vec<f64>,
    /// Logical bytes of the original payload.
    pub logical: u64,
}

impl StateSize for PoolItem {
    fn state_size(&self) -> u64 {
        self.logical
    }
}

/// An accumulating pool of items.
#[derive(Clone, Debug, Default)]
pub struct Pool {
    items: Vec<PoolItem>,
    /// Leading items unchanged since the last delta capture.
    stable: usize,
    /// Item count at the last delta capture.
    last_len: usize,
}

impl PartialEq for Pool {
    /// Pools compare by content only: the dirty-tracking cursors are
    /// capture-cycle bookkeeping, not state (a restored pool is clean).
    fn eq(&self, other: &Pool) -> bool {
        self.items == other.items
    }
}

impl Pool {
    /// Creates an empty pool.
    pub fn new() -> Pool {
        Pool::default()
    }

    /// Adds an item.
    pub fn push(&mut self, features: Vec<f64>, logical: u64) {
        self.items.push(PoolItem { features, logical });
    }

    /// The pooled items.
    pub fn items(&self) -> &[PoolItem] {
        &self.items
    }

    /// Feature vectors only (kernel input).
    pub fn features(&self) -> Vec<Vec<f64>> {
        self.items.iter().map(|i| i.features.clone()).collect()
    }

    /// Number of pooled items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Discards everything.
    pub fn clear(&mut self) {
        self.items.clear();
        self.stable = 0;
    }

    /// Discards all but the `keep` most recent items (BCP keeps a few
    /// frames across bus arrivals; SignalGuru keeps the current
    /// vehicle's tail).
    pub fn retain_recent(&mut self, keep: usize) {
        if self.items.len() > keep {
            self.items.drain(..self.items.len() - keep);
            // Survivors shifted down: every index now holds different
            // content than at the last capture.
            self.stable = 0;
        }
    }

    /// Logical size via the precompiler's default 3-point sampling
    /// estimator (§III-C1).
    pub fn sampled_size(&self) -> u64 {
        estimate::sampled_default(&self.items)
    }

    /// Exact encoded size under [`Pool::encode`]: one tagged length
    /// word plus, per item, two tagged words and one tagged f64 per
    /// feature. Snapshot implementations pass this to
    /// [`SnapshotWriter::with_capacity`]/[`SnapshotWriter::reserve`] so
    /// serialization allocates once instead of doubling.
    pub fn encoded_bytes(&self) -> usize {
        9 + self
            .items
            .iter()
            .map(|i| 18 + 9 * i.features.len())
            .sum::<usize>()
    }

    /// Writes the pool into a snapshot.
    pub fn encode(&self, w: &mut SnapshotWriter) {
        w.reserve(self.encoded_bytes());
        w.put_u64(self.items.len() as u64);
        for item in &self.items {
            w.put_u64(item.logical);
            w.put_u64(item.features.len() as u64);
            for f in &item.features {
                w.put_f64(*f);
            }
        }
    }

    /// Reads a pool back from a snapshot.
    pub fn decode(r: &mut SnapshotReader<'_>) -> Result<Pool> {
        let n = r.get_u64()? as usize;
        let mut items = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let logical = r.get_u64()?;
            let k = r.get_u64()? as usize;
            let mut features = Vec::with_capacity(k.min(1 << 16));
            for _ in 0..k {
                features.push(r.get_f64()?);
            }
            items.push(PoolItem { features, logical });
        }
        // A decoded pool is clean: the snapshot it came from is by
        // definition the last durable capture.
        let stable = items.len();
        Ok(Pool {
            items,
            stable,
            last_len: stable,
        })
    }

    /// Canonical per-item value bytes for the delta-checkpoint table
    /// view: the item's logical size, then its tagged feature vector.
    fn encode_item(item: &PoolItem) -> Vec<u8> {
        let mut w = SnapshotWriter::with_capacity(18 + 9 * item.features.len());
        w.put_u64(item.logical);
        w.put_u64(item.features.len() as u64);
        for f in &item.features {
            w.put_f64(*f);
        }
        w.finish()
    }

    /// Decodes one [`Pool::encode_item`] value back into an item.
    pub(crate) fn decode_item(buf: &[u8]) -> Result<PoolItem> {
        let mut r = SnapshotReader::new(buf);
        let logical = r.get_u64()?;
        let k = r.get_u64()? as usize;
        let mut features = Vec::with_capacity(k.min(1 << 16));
        for _ in 0..k {
            features.push(r.get_f64()?);
        }
        Ok(PoolItem { features, logical })
    }

    /// The canonical key→bytes view of the whole pool (keys are item
    /// indices), for delta-capable operator snapshots built on
    /// `ms_core::delta::encode_table`.
    pub fn table(&self) -> BTreeMap<u64, Vec<u8>> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, item)| (i as u64, Pool::encode_item(item)))
            .collect()
    }

    /// Drains the dirty-tracking cursors into `(changed, removed)` key
    /// sets relative to the last capture, both in ascending key order;
    /// the pool is clean afterwards. Items only append at the tail and
    /// drain at the head, so "changed" is every index past the stable
    /// prefix and "removed" is every index the pool shrank away.
    pub fn take_delta(&mut self) -> (Vec<(u64, Vec<u8>)>, Vec<u64>) {
        let changed = (self.stable..self.items.len())
            .map(|i| (i as u64, Pool::encode_item(&self.items[i])))
            .collect();
        let removed = (self.items.len()..self.last_len)
            .map(|i| i as u64)
            .collect();
        self.mark_clean();
        (changed, removed)
    }

    /// Marks the current contents as captured without producing a
    /// delta (a full snapshot already covers everything).
    pub fn mark_clean(&mut self) {
        self.stable = self.items.len();
        self.last_len = self.items.len();
    }
}

impl StateSize for Pool {
    fn state_size(&self) -> u64 {
        self.sampled_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_tracks_contents() {
        let mut p = Pool::new();
        assert_eq!(p.sampled_size(), 0);
        for _ in 0..10 {
            p.push(vec![1.0, 2.0], 1000);
        }
        assert_eq!(p.sampled_size(), 10_000);
        p.clear();
        assert_eq!(p.sampled_size(), 0);
    }

    #[test]
    fn retain_recent_keeps_tail() {
        let mut p = Pool::new();
        for i in 0..5 {
            p.push(vec![i as f64], 10);
        }
        p.retain_recent(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.items()[0].features, vec![3.0]);
        p.retain_recent(10);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn delta_tracking_reports_tail_and_shrinkage() {
        let mut p = Pool::new();
        p.push(vec![1.0], 10);
        p.push(vec![2.0], 10);
        let (changed, removed) = p.take_delta();
        assert_eq!(changed.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [0, 1]);
        assert!(removed.is_empty());
        let (changed, removed) = p.take_delta();
        assert!(
            changed.is_empty() && removed.is_empty(),
            "clean after capture"
        );
        p.push(vec![3.0], 10);
        let (changed, removed) = p.take_delta();
        assert_eq!(changed.iter().map(|(k, _)| *k).collect::<Vec<_>>(), [2]);
        assert!(removed.is_empty());
        p.clear();
        let (changed, removed) = p.take_delta();
        assert!(changed.is_empty());
        assert_eq!(removed, [0, 1, 2]);
    }

    #[test]
    fn delta_folds_onto_table_snapshot() {
        use ms_core::delta::{encode_table, fold, StateDelta};
        let mut p = Pool::new();
        for i in 0..6 {
            p.push(vec![i as f64], 100);
        }
        let base = encode_table(&p.table());
        p.mark_clean();
        p.retain_recent(2);
        p.push(vec![9.0], 50);
        let (changed, removed) = p.take_delta();
        let d = StateDelta {
            changed,
            removed,
            logical_bytes: 0,
        };
        assert_eq!(fold(&base, &[d]).unwrap(), encode_table(&p.table()));
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut p = Pool::new();
        p.push(vec![1.5, -2.5], 123);
        p.push(vec![], 7);
        let mut w = SnapshotWriter::new();
        p.encode(&mut w);
        let buf = w.finish();
        let mut r = SnapshotReader::new(&buf);
        let q = Pool::decode(&mut r).unwrap();
        assert_eq!(p, q);
    }
}
