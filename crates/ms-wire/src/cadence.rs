//! The controller's live telemetry plane: application-aware checkpoint
//! initiation plus adaptive cadence.
//!
//! The simulator proved out the paper's §III-C timing logic against
//! replayed traces; this module puts the same decision procedure behind
//! the *running* cluster. Worker heartbeats already carry per-operator
//! [`state_bytes`](ms_core::metrics::OperatorSample::state_bytes)
//! gauges every 50 ms — far finer than the checkpoint period — so the
//! controller can feed them straight into a [`LiveProfiler`] and let
//! the §III-C classifier pick barrier instants at detected aggregate
//! state minima instead of a blind timer.
//!
//! Layered on top (and usable independently) is the *cadence*
//! controller: after every barrier close it re-estimates worst-case
//! recovery time from measured ledger signals — checkpoint restore at
//! the observed persist rate, plus one replay window — and widens or
//! narrows the checkpoint period multiplicatively to track a
//! configured recovery-time budget. Every initiation and every cadence
//! move is written to the run ledger as a
//! [`DecisionRecord`](crate::ledger::DecisionRecord), so `ms_ledger
//! --follow` shows the plane thinking in real time.
//!
//! Wall-clock never leaks into the decision logic: the plane stamps
//! samples onto a [`SimTime`] axis anchored at its own construction,
//! which keeps the live path byte-for-byte the same classifier the
//! simulator (and the trace-replay tests) exercise.

use std::time::{Duration, Instant};

use ms_core::aware::{AwareAction, CheckpointReason, LiveAwareConfig, LivePhase, LiveProfiler};
use ms_core::ids::{HauId, OperatorId};
use ms_core::time::{SimDuration, SimTime};

use crate::ledger::DecisionRecord;

/// The adaptive period may narrow to 1/4 of the configured interval…
const MIN_PERIOD_DIV: u32 = 4;
/// …and widen to 8× it. Both bounds are relative so one flag move
/// rescales the whole envelope.
const MAX_PERIOD_MUL: u32 = 8;
/// Narrowing halves the period: recovery estimates over budget mean
/// real exposure, so the response is aggressive.
const NARROW_FACTOR: f64 = 0.5;
/// Widening is gentler (×1.25): overhead saved by a longer period is
/// linear, while the cost of overshooting the budget is an SLO miss.
const WIDEN_FACTOR: f64 = 1.25;

/// Static configuration for the telemetry plane, split out of
/// [`ControllerConfig`](crate::ControllerConfig) so the plane can be
/// unit-tested without a cluster.
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// Drive barrier initiation from the §III-C profiler (vs the
    /// fixed timer).
    pub aware: bool,
    /// Profiler sampling/evaluation cadence (paper: one round per
    /// sub-epoch sample interval).
    pub sample_interval: Duration,
    /// How many whole periods the profiling phase observes before the
    /// live classifier arms.
    pub profile_periods: u32,
    /// The configured checkpoint period — the cadence layer's starting
    /// point and the anchor for its min/max envelope.
    pub period: Duration,
    /// Recovery-time budget; `Some` enables the adaptive cadence layer.
    pub recovery_budget: Option<Duration>,
}

/// Why the controller initiated a checkpoint barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCause {
    /// Fixed-period (or profiling-phase fallback) timer expiry.
    Timer,
    /// The live §III-C classifier fired.
    Aware(CheckpointReason),
}

impl CheckpointCause {
    /// The ledger reason code for this cause.
    pub fn as_str(&self) -> &'static str {
        match self {
            CheckpointCause::Timer => "timer",
            CheckpointCause::Aware(r) => r.as_str(),
        }
    }
}

/// Measured signals from one closed barrier, aggregated over the
/// `latest` heartbeat map the controller already keeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochSignals {
    /// Deployment generation the barrier closed in.
    pub generation: u64,
    /// The epoch that closed.
    pub epoch: u64,
    /// Sum of live state across operators (bytes).
    pub state_bytes: u64,
    /// Sum of checkpoint bytes written for this epoch.
    pub ckpt_bytes: u64,
    /// Token-injection → last-ack barrier latency (µs).
    pub barrier_us: u64,
    /// Slowest operator's persist time for this epoch (µs) — with
    /// `ckpt_bytes` this yields the store's effective write rate.
    pub persist_us: u64,
}

/// The live telemetry plane the controller consults from its event
/// loop. Owns the [`LiveProfiler`] (when `--aware`) and the cadence
/// state (when `--recovery-budget-ms`); either half works alone.
pub struct TelemetryPlane {
    started: Instant,
    profiler: Option<LiveProfiler>,
    budget: Option<Duration>,
    period: Duration,
    min_period: Duration,
    max_period: Duration,
}

impl TelemetryPlane {
    /// Builds the plane; call once per controller process, before the
    /// first deployment.
    pub fn new(cfg: &PlaneConfig) -> TelemetryPlane {
        let profiler = cfg.aware.then(|| {
            LiveProfiler::new(LiveAwareConfig {
                period: SimDuration::from_micros(cfg.period.as_micros() as u64),
                profile_periods: cfg.profile_periods,
                sample_interval: SimDuration::from_micros(cfg.sample_interval.as_micros() as u64),
                ..LiveAwareConfig::default()
            })
        });
        TelemetryPlane {
            started: Instant::now(),
            profiler,
            budget: cfg.recovery_budget,
            period: cfg.period,
            min_period: cfg.period / MIN_PERIOD_DIV,
            max_period: cfg.period * MAX_PERIOD_MUL,
        }
    }

    /// The checkpoint period currently in force (adaptive, when a
    /// budget is set; otherwise the configured constant).
    pub fn period(&self) -> Duration {
        self.period
    }

    /// True once the profiler has finished its observation window and
    /// the §III-C classifier is armed.
    pub fn executing(&self) -> bool {
        self.profiler
            .as_ref()
            .is_some_and(|p| p.phase() == LivePhase::Executing)
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.started.elapsed().as_micros() as u64)
    }

    /// Feeds one heartbeat state-size gauge into the profiler.
    /// Stale/duplicate deliveries are dropped by the profiler itself.
    pub fn ingest(&mut self, op: OperatorId, state_bytes: u64) {
        let now = self.now();
        self.ingest_at(now, op, state_bytes);
    }

    fn ingest_at(&mut self, now: SimTime, op: OperatorId, state_bytes: u64) {
        if let Some(p) = &mut self.profiler {
            p.ingest(now, HauId(op.0), state_bytes);
        }
    }

    /// Asks the plane whether to initiate a barrier now. `since_last`
    /// is wall time since the previous initiation. At most one cause
    /// per call; the controller only calls this with no barrier
    /// outstanding.
    pub fn poll(&mut self, since_last: Duration) -> Option<CheckpointCause> {
        let now = self.now();
        self.poll_at(now, since_last)
    }

    fn poll_at(&mut self, now: SimTime, since_last: Duration) -> Option<CheckpointCause> {
        if let Some(p) = &mut self.profiler {
            if let AwareAction::Checkpoint(reason) = p.poll(now) {
                return Some(CheckpointCause::Aware(reason));
            }
            // During the profiling phase nothing else would checkpoint,
            // so the plain timer keeps the cluster durable until the
            // classifier arms.
            if p.phase() == LivePhase::Profiling && since_last >= self.period {
                return Some(CheckpointCause::Timer);
            }
            None
        } else {
            (since_last >= self.period).then_some(CheckpointCause::Timer)
        }
    }

    /// Builds the ledger decision row for a barrier the plane (or the
    /// legacy timer while the plane is active) just initiated.
    pub fn initiation_record(
        &self,
        generation: u64,
        epoch: u64,
        cause: CheckpointCause,
    ) -> DecisionRecord {
        DecisionRecord {
            generation,
            epoch,
            reason: cause.as_str().to_string(),
            state_bytes: self
                .profiler
                .as_ref()
                .map_or(0, LiveProfiler::total_state_bytes),
            ckpt_bytes: 0,
            barrier_us: 0,
            est_recovery_us: 0,
            budget_us: self.budget.map_or(0, |b| b.as_micros() as u64),
            period_us_before: self.period.as_micros() as u64,
            period_us_after: self.period.as_micros() as u64,
            recovery_us: 0,
        }
    }

    /// Re-evaluates the cadence from one closed barrier's signals.
    /// Returns the decision row to append (`widen`/`narrow`/`hold`),
    /// or `None` when no budget is configured.
    pub fn on_barrier_close(&mut self, sig: &EpochSignals) -> Option<DecisionRecord> {
        let budget = self.budget?;
        let budget_us = budget.as_micros() as u64;
        // Worst-case recovery = restore the latest complete checkpoint
        // chain + replay one full period of source log. Restore speed
        // is approximated by this epoch's measured persist rate (the
        // store is symmetric enough on localhost; on a real rack the
        // read rate would be sampled the same way).
        let restore_us = if sig.persist_us > 0 && sig.ckpt_bytes > 0 {
            (sig.state_bytes as f64 * sig.persist_us as f64 / sig.ckpt_bytes as f64) as u64
        } else {
            0
        };
        let est_recovery_us = restore_us + self.period.as_micros() as u64;

        let before = self.period;
        let target = if est_recovery_us > budget_us {
            mul_duration(before, NARROW_FACTOR)
        } else if est_recovery_us.saturating_mul(2) < budget_us {
            // Hysteresis: only widen when comfortably under budget, so
            // the period doesn't oscillate around the boundary.
            mul_duration(before, WIDEN_FACTOR)
        } else {
            before
        };
        let after = target.clamp(self.min_period, self.max_period);
        let reason = if after > before {
            "widen"
        } else if after < before {
            "narrow"
        } else {
            "hold"
        };
        self.period = after;
        if after != before {
            if let Some(p) = &mut self.profiler {
                p.set_period(SimDuration::from_micros(after.as_micros() as u64));
            }
        }
        Some(DecisionRecord {
            generation: sig.generation,
            epoch: sig.epoch,
            reason: reason.to_string(),
            state_bytes: sig.state_bytes,
            ckpt_bytes: sig.ckpt_bytes,
            barrier_us: sig.barrier_us,
            est_recovery_us,
            budget_us,
            period_us_before: before.as_micros() as u64,
            period_us_after: after.as_micros() as u64,
            recovery_us: 0,
        })
    }
}

/// `Duration * f64` with µs rounding, keeping the arithmetic in one
/// place so the clamp envelope sees consistent values.
fn mul_duration(d: Duration, factor: f64) -> Duration {
    Duration::from_micros((d.as_micros() as f64 * factor).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(aware: bool, budget_ms: u64) -> TelemetryPlane {
        TelemetryPlane::new(&PlaneConfig {
            aware,
            sample_interval: Duration::from_millis(100),
            profile_periods: 2,
            period: Duration::from_millis(1000),
            recovery_budget: (budget_ms > 0).then(|| Duration::from_millis(budget_ms)),
        })
    }

    fn signals(state: u64, ckpt: u64, persist_us: u64) -> EpochSignals {
        EpochSignals {
            generation: 0,
            epoch: 3,
            state_bytes: state,
            ckpt_bytes: ckpt,
            barrier_us: 1500,
            persist_us,
        }
    }

    #[test]
    fn timer_only_plane_paces_at_fixed_period() {
        let mut p = plane(false, 0);
        assert_eq!(p.poll(Duration::from_millis(999)), None);
        assert_eq!(
            p.poll(Duration::from_millis(1000)),
            Some(CheckpointCause::Timer)
        );
        assert_eq!(p.period(), Duration::from_millis(1000));
    }

    #[test]
    fn no_budget_means_no_cadence_decisions() {
        let mut p = plane(false, 0);
        assert!(p
            .on_barrier_close(&signals(1 << 20, 1 << 18, 5_000))
            .is_none());
    }

    #[test]
    fn over_budget_narrows_under_half_widens() {
        // persist rate = 2^18 B / 4000 µs = 64 B/µs; restore of 2^26 B
        // takes 2^26/64 = 1,048,576 µs, + 1s period ≈ 2.05 s estimate.
        let mut p = plane(false, 1500);
        let d = p
            .on_barrier_close(&signals(1 << 26, 1 << 18, 4_000))
            .unwrap();
        assert_eq!(d.reason, "narrow");
        assert_eq!(d.period_us_before, 1_000_000);
        assert_eq!(d.period_us_after, 500_000);
        assert!(d.est_recovery_us > d.budget_us);
        assert_eq!(p.period(), Duration::from_millis(500));

        // Tiny state: estimate ≈ the (now 500 ms) period alone, far
        // under half of 1500 ms ⇒ widen by 1.25×.
        let d = p
            .on_barrier_close(&signals(1 << 10, 1 << 10, 1_000))
            .unwrap();
        assert_eq!(d.reason, "widen");
        assert_eq!(d.period_us_after, 625_000);
        assert_eq!(p.period(), Duration::from_micros(625_000));
    }

    #[test]
    fn hysteresis_band_holds() {
        // Estimate lands between budget/2 and budget ⇒ hold.
        let mut p = plane(false, 1500);
        // restore = 0 (no persist signal) ⇒ estimate = period = 1 s,
        // which sits inside [750 ms, 1500 ms].
        let d = p.on_barrier_close(&signals(1 << 20, 0, 0)).unwrap();
        assert_eq!(d.reason, "hold");
        assert_eq!(d.period_us_before, d.period_us_after);
    }

    #[test]
    fn period_clamps_to_envelope() {
        let mut p = plane(false, 1);
        // Budget of 1 ms can never be met: every close narrows, but the
        // period floors at 1/4 of the configured 1 s.
        for _ in 0..10 {
            p.on_barrier_close(&signals(1 << 26, 1 << 18, 4_000));
        }
        assert_eq!(p.period(), Duration::from_millis(250));

        let mut p = plane(false, 3_600_000);
        // A huge budget widens every close, capping at 8×.
        for _ in 0..30 {
            p.on_barrier_close(&signals(1 << 10, 1 << 10, 100));
        }
        assert_eq!(p.period(), Duration::from_millis(8000));
    }

    #[test]
    fn cadence_change_reaches_the_profiler() {
        let mut p = plane(true, 1500);
        assert!(!p.executing());
        // Sawtooth samples across the 2-period profiling window: state
        // ramps 0..900 ms then collapses, twice, on a 100 ms grid.
        for i in 0..20u64 {
            let t = SimTime::from_millis(i * 100);
            let s = 1_000 + (i % 10) * 5_000;
            p.ingest_at(t, OperatorId(0), s);
        }
        // First poll past the window arms the classifier.
        assert_eq!(
            p.poll_at(SimTime::from_millis(2_050), Duration::from_millis(50)),
            None
        );
        assert!(p.executing());
        // A narrow decision must reach the armed controller: feed more
        // samples and confirm the (shorter) period still rolls over,
        // i.e. the plane keeps producing actions on the new cadence.
        let d = p
            .on_barrier_close(&signals(1 << 26, 1 << 18, 4_000))
            .unwrap();
        assert_eq!(d.reason, "narrow");
        let mut fired = false;
        for i in 21..40u64 {
            let t = SimTime::from_millis(i * 100);
            p.ingest_at(t, OperatorId(0), 1_000 + (i % 10) * 5_000);
            if p.poll_at(t, Duration::from_millis(100)).is_some() {
                fired = true;
            }
        }
        assert!(fired, "armed classifier stopped producing actions");
    }

    #[test]
    fn profiling_phase_falls_back_to_timer() {
        let mut p = plane(true, 0);
        p.ingest_at(SimTime::from_millis(50), OperatorId(0), 10_000);
        // Profiler still observing ⇒ the plain timer paces.
        assert_eq!(
            p.poll_at(SimTime::from_millis(60), Duration::from_millis(1_000)),
            Some(CheckpointCause::Timer)
        );
        assert_eq!(
            p.poll_at(SimTime::from_millis(70), Duration::from_millis(10)),
            None
        );
    }

    #[test]
    fn initiation_records_carry_the_period() {
        let mut p = plane(false, 2000);
        p.on_barrier_close(&signals(1 << 26, 1 << 18, 4_000)); // narrow
        let init = p.initiation_record(1, 7, CheckpointCause::Timer);
        assert_eq!(init.reason, "timer");
        assert_eq!(init.period_us_before, init.period_us_after);
        assert_eq!(init.period_us_before, 500_000);
        assert_eq!(init.budget_us, 2_000_000);
    }
}
