//! [`FsStore`]: a filesystem [`StableStore`] shared by every process
//! of a TCP cluster.
//!
//! The in-memory `LiveStorage` dies with its process; a real cluster
//! needs preservation and checkpoints to survive a SIGKILL. `FsStore`
//! keeps the exact same contract on a shared directory:
//!
//! * `ckpt/e{epoch}_op{N}.ckpt` — full individual checkpoints, and
//!   `ckpt/e{epoch}_op{N}.delta` — incremental ones carrying only the
//!   keys changed/removed since the operator's previous capture plus a
//!   pointer to that capture's epoch (the delta's *base*). Payloads use
//!   the shared [`ms_live::ckpt_codec`] layout (the same bytes
//!   `LiveStorage` round-trips), framed one per file. Both are
//!   written to a dot-prefixed temp file and atomically renamed into
//!   place, so a checkpoint file either exists complete or not at all.
//!   Reads fold the chain: [`StableStore::get_checkpoint`] always
//!   returns the complete state, byte-identical to a full snapshot.
//! * `log/op{N}.log` — source-preservation logs: one frame per tuple,
//!   appended *before* the tuple is sent (§III-A). A group-committed
//!   batch ([`StableStore::append_log_batch`]) concatenates its
//!   tuples' frames into one pre-sized buffer and hands the kernel a
//!   single `write_all` — byte-identical to appending each tuple
//!   alone, just one lock/encode/syscall for the lot. Bytes handed to
//!   the kernel survive the process, so a SIGKILL can tear at most
//!   the final record; readers stop at the first incomplete frame.
//! * `marks/op{N}.marks` — per-source `(epoch, next_seq)` stream
//!   boundaries, appended the same way.
//!
//! # Delta chains, rebase, GC
//!
//! An epoch is *complete* only when every operator has a checkpoint
//! for it **and** each one resolves — following base pointers — to a
//! full snapshot still on disk, so `latest_complete` never names an
//! epoch recovery could not restore. A [`RebasePolicy`] bounds chain
//! length and cumulative delta bytes: past either bound the store
//! folds the chain and writes a fresh `.ckpt` instead of a `.delta`.
//! When an epoch completes, files older than the oldest base its
//! chains rest on are deleted — they are unreachable from the newest
//! restorable epoch. Crash-safety of GC: deletion happens only after
//! the completing epoch's files (and their bases) are durable, and a
//! process dying mid-GC leaves extra files, never missing ones.
//!
//! # Source-log byte cap
//!
//! An optional cap bounds each preservation log. An append that would
//! exceed it first tries to *trim*: records below the newest complete
//! checkpoint's replay boundary can never be replayed again and are
//! dropped (the log is rewritten and atomically swapped). If trimming
//! cannot free room, the append blocks — pausing the source, which is
//! exactly hop-by-hop backpressure — until a checkpoint frees space or
//! a patience deadline passes, at which point it fails the storage
//! contract (`Err`) and the host stops streaming rather than write
//! past the cap.
//!
//! Restart idempotence: a source restarted from scratch (no complete
//! checkpoint) deterministically regenerates tuples it already logged.
//! The log writer remembers the highest sequence on disk and skips
//! appends at or below it, so the log never holds duplicates and
//! recovery replay stays exactly-once.
//!
//! Failure model: fail-stop, surfaced instead of aborted. An I/O
//! error on the preservation path returns [`Error::Storage`]; the
//! host stops streaming (a source that cannot reach stable storage
//! must not keep sending) and the worker reports the failure to the
//! controller, which recovers it like a crash — without taking the
//! whole worker process (and its healthy co-located operators) down.
//! Read paths degrade to "nothing stored". The store assumes the
//! controller serializes incarnations (a killed worker is dead before
//! its operators are reassigned); two live writers on one log are out
//! of scope, as in the paper's single-controller design.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ms_core::codec::{
    frame, frame_tuples, FrameDecoder, SnapshotReader, SnapshotWriter, FRAME_HEADER_BYTES,
    MAX_FILE_FRAME_BYTES, MAX_FRAME_BYTES,
};
use ms_core::delta::{self, StateDelta};
use ms_core::error::{Error, Result};
use ms_core::ids::{EpochId, OperatorId};
use ms_core::operator::OperatorSnapshot;
use ms_core::tuple::Tuple;
use ms_live::{ckpt_codec, CkptState, CkptWrite, LiveHauCheckpoint, RebasePolicy, StableStore};
use parking_lot::Mutex;

struct LogWriter {
    file: File,
    /// Highest sequence already durable in this log (dedup guard).
    last_seq: Option<u64>,
    /// Bytes currently in the log file (byte-cap accounting).
    bytes: u64,
}

/// Filesystem-backed stable store. Cheap to open; every process of the
/// cluster (workers *and* the controller) opens its own handle on the
/// shared directory.
pub struct FsStore {
    root: PathBuf,
    expected: usize,
    policy: RebasePolicy,
    /// `(cap bytes, patience)` — see the module docs.
    log_cap: Option<(u64, Duration)>,
    logs: Mutex<HashMap<OperatorId, LogWriter>>,
    /// Preservation-log `write(2)` calls issued (group-commit
    /// instrumentation: tuples-per-syscall = appended tuples / this).
    log_writes: AtomicU64,
}

impl FsStore {
    /// Opens (creating if needed) a store rooted at `root`, expecting
    /// `expected` individual checkpoints per complete application
    /// checkpoint. Operators are ids `0..expected` (how both runtimes
    /// number a query network).
    pub fn open(root: impl Into<PathBuf>, expected: usize) -> Result<FsStore> {
        let root = root.into();
        for sub in ["ckpt", "log", "marks"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(FsStore {
            root,
            expected,
            policy: RebasePolicy::default(),
            log_cap: None,
            logs: Mutex::new(HashMap::new()),
            log_writes: AtomicU64::new(0),
        })
    }

    /// Preservation-log `write(2)` calls this handle has issued. A
    /// group-committed batch costs exactly one, which is what the
    /// `wal_append` bench asserts.
    pub fn log_write_syscalls(&self) -> u64 {
        self.log_writes.load(Ordering::Relaxed)
    }

    /// Replaces the rebase policy (builder style).
    pub fn with_policy(mut self, policy: RebasePolicy) -> FsStore {
        self.policy = policy;
        self
    }

    /// Caps each source-preservation log at `cap` bytes. An append
    /// over the cap trims what the newest complete checkpoint made
    /// unreplayable, then blocks (pausing the source) up to `patience`
    /// for a checkpoint to free space before failing the append.
    pub fn with_log_cap(mut self, cap: u64, patience: Duration) -> FsStore {
        self.log_cap = Some((cap, patience));
        self
    }

    /// The highest epoch any checkpoint file was ever written for,
    /// complete or not. A restarted controller must number its tokens
    /// strictly above this: reusing an epoch that a previous
    /// incarnation partially persisted would mix two barriers' files
    /// under one name.
    pub fn max_epoch_started(&self) -> Option<EpochId> {
        let entries = fs::read_dir(self.root.join("ckpt")).ok()?;
        entries
            .flatten()
            .filter_map(|e| parse_ckpt_epoch(&e.file_name().to_string_lossy()))
            .max()
            .map(EpochId)
    }

    fn full_path(&self, epoch: EpochId, op: OperatorId) -> PathBuf {
        self.root
            .join("ckpt")
            .join(format!("e{}_op{}.ckpt", epoch.0, op.0))
    }

    fn delta_path(&self, epoch: EpochId, op: OperatorId) -> PathBuf {
        self.root
            .join("ckpt")
            .join(format!("e{}_op{}.delta", epoch.0, op.0))
    }

    fn log_path(&self, op: OperatorId) -> PathBuf {
        self.root.join("log").join(format!("op{}.log", op.0))
    }

    fn marks_path(&self, op: OperatorId) -> PathBuf {
        self.root.join("marks").join(format!("op{}.marks", op.0))
    }

    /// Atomically writes one checkpoint frame (temp file + rename).
    /// Checkpoint files carry full operator state, so they use the
    /// file cap, not the wire cap — and an over-cap payload must fail
    /// *here*, loudly, never land on disk unreadable.
    fn write_ckpt_file(&self, path: &Path, payload: Vec<u8>) -> Result<()> {
        let name = path.file_name().expect("ckpt file name").to_string_lossy();
        if payload.len() > MAX_FILE_FRAME_BYTES {
            return Err(Error::Storage(format!(
                "checkpoint {name} is {} bytes, over the {MAX_FILE_FRAME_BYTES}-byte file cap",
                payload.len()
            )));
        }
        let tmp = self.root.join("ckpt").join(format!(".tmp_{name}"));
        // Temp-write + rename is idempotent, so a transient failure
        // here is safely retryable from scratch.
        fs::write(&tmp, frame(&payload))
            .and_then(|()| fs::rename(&tmp, path))
            .map_err(|e| Error::storage_io(&format!("checkpoint {name} not persisted"), &e))
    }

    /// Decodes the checkpoint stored for `(epoch, op)` — the full file
    /// if present, else the delta file. The file extension disambiguates
    /// the two payload layouts of the shared codec.
    fn read_ckpt(&self, epoch: EpochId, op: OperatorId) -> Option<CkptWrite> {
        if let Some(payload) = read_ckpt_frame(&self.full_path(epoch, op)) {
            return ckpt_codec::decode_full(&payload).ok();
        }
        let payload = read_ckpt_frame(&self.delta_path(epoch, op))?;
        ckpt_codec::decode_delta(&payload).ok()
    }

    /// Reads only a delta file's base pointer (chain validation reads
    /// small delta files, never multi-megabyte fulls).
    fn delta_base(&self, epoch: EpochId, op: OperatorId) -> Option<EpochId> {
        let payload = read_ckpt_frame(&self.delta_path(epoch, op))?;
        ckpt_codec::decode_delta_base(&payload)
            .ok()
            .map(|(_next_seq, base)| base)
    }

    /// The epoch of the full snapshot `(epoch, op)`'s chain bottoms out
    /// at, or `None` for a missing/broken chain.
    fn full_base_of(&self, epoch: EpochId, op: OperatorId) -> Option<EpochId> {
        let mut at = epoch;
        loop {
            if self.full_path(at, op).exists() {
                return Some(at);
            }
            let base = self.delta_base(at, op)?;
            if base >= at {
                return None; // corrupt pointer; treat as broken
            }
            at = base;
        }
    }

    /// Is `epoch` restorable: one resolvable checkpoint per operator?
    fn epoch_is_complete(&self, epoch: EpochId) -> bool {
        (0..self.expected).all(|i| self.full_base_of(epoch, OperatorId(i as u32)).is_some())
    }

    /// Deletes checkpoint files no epoch ≥ the newest complete one can
    /// need: everything older than the oldest full base `epoch`'s
    /// chains rest on.
    fn gc_below(&self, epoch: EpochId) {
        let oldest = (0..self.expected)
            .filter_map(|i| self.full_base_of(epoch, OperatorId(i as u32)))
            .min();
        let Some(keep_from) = oldest else { return };
        let Ok(entries) = fs::read_dir(self.root.join("ckpt")) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            if let Some(e) = parse_ckpt_epoch(&name.to_string_lossy()) {
                if e < keep_from.0 {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }

    /// The replay boundary a source marked for `epoch`, if any.
    fn mark_for(&self, source: OperatorId, epoch: EpochId) -> Option<u64> {
        read_frames(&self.marks_path(source))
            .iter()
            .filter_map(|p| {
                let mut r = SnapshotReader::new(p);
                Some((r.get_u64().ok()?, r.get_u64().ok()?))
            })
            .find(|&(e, _)| e == epoch.0)
            .map(|(_, s)| s)
    }

    /// Rewrites a capped log keeping only records the newest complete
    /// checkpoint can still replay; returns whether anything shrank.
    /// Called with the log mutex held — the swapped file and the
    /// writer handle change together.
    fn trim_log(&self, source: OperatorId, lw: &mut LogWriter) -> Result<bool> {
        let Some(from_seq) = self
            .latest_complete()
            .and_then(|e| self.mark_for(source, e))
        else {
            return Ok(false);
        };
        let path = self.log_path(source);
        let frames = read_frames(&path);
        let kept: Vec<&Vec<u8>> = frames
            .iter()
            .filter(|p| {
                SnapshotReader::new(p)
                    .get_tuple()
                    .is_ok_and(|t| t.seq >= from_seq)
            })
            .collect();
        if kept.len() == frames.len() {
            return Ok(false);
        }
        let mut buf = Vec::new();
        for p in &kept {
            buf.extend_from_slice(&frame(p));
        }
        let tmp = self.root.join("log").join(format!(
            ".tmp_{}",
            path.file_name().expect("log name").to_string_lossy()
        ));
        fs::write(&tmp, &buf)
            .and_then(|()| fs::rename(&tmp, &path))
            .map_err(|e| Error::Storage(format!("cannot trim capped log {path:?}: {e}")))?;
        lw.file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| Error::Storage(format!("cannot reopen trimmed log {path:?}: {e}")))?;
        lw.bytes = buf.len() as u64;
        Ok(true)
    }

    /// Ensures the writer for `source`'s preservation log exists,
    /// running the cold-open recovery scan — read the whole log once,
    /// find the clean prefix, trim a torn tail, remember the highest
    /// durable sequence — exactly when the writer is first created.
    /// Every later append (including a retry after a transient write
    /// error) finds the cached writer and never re-reads the file.
    /// Called with the log mutex held.
    fn ensure_writer<'a>(
        &self,
        logs: &'a mut HashMap<OperatorId, LogWriter>,
        source: OperatorId,
    ) -> Result<&'a mut LogWriter> {
        if let std::collections::hash_map::Entry::Vacant(slot) = logs.entry(source) {
            let path = self.log_path(source);
            // Scan what an earlier incarnation already made durable.
            let bytes = fs::read(&path).unwrap_or_default();
            let clean = clean_prefix_len(&bytes);
            let mut dec = FrameDecoder::new();
            dec.feed(&bytes[..clean]);
            let mut last_seq = None;
            while let Ok(Some(p)) = dec.next_frame() {
                if let Ok(t) = SnapshotReader::new(&p).get_tuple() {
                    last_seq = Some(t.seq);
                }
            }
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| Error::Storage(format!("cannot open source log {path:?}: {e}")))?;
            if clean < bytes.len() {
                // Drop the record the crash cut short, so re-appended
                // frames land on a clean boundary. Failure here leaves
                // a log whose tail would corrupt every later append —
                // the source must stop, not stream over it.
                file.set_len(clean as u64)
                    .map_err(|e| Error::Storage(format!("cannot trim torn log {path:?}: {e}")))?;
            }
            slot.insert(LogWriter {
                file,
                last_seq,
                bytes: clean as u64,
            });
        }
        Ok(logs.get_mut(&source).expect("writer just ensured"))
    }
}

/// Parses `e{epoch}_op{N}.ckpt` / `.delta`; temp files (dot-prefixed)
/// and foreign names yield `None`.
fn parse_ckpt_epoch(name: &str) -> Option<u64> {
    let rest = name.strip_prefix('e')?;
    let (epoch, rest) = rest.split_once("_op")?;
    let op = rest
        .strip_suffix(".ckpt")
        .or_else(|| rest.strip_suffix(".delta"))?;
    op.parse::<u64>().ok()?;
    epoch.parse().ok()
}

/// Byte length of the longest prefix made of complete frames.
fn clean_prefix_len(bytes: &[u8]) -> usize {
    let mut pos = 0;
    while bytes.len() - pos >= FRAME_HEADER_BYTES {
        let header: [u8; FRAME_HEADER_BYTES] = bytes[pos..pos + FRAME_HEADER_BYTES]
            .try_into()
            .expect("header slice");
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME_BYTES || bytes.len() - pos - FRAME_HEADER_BYTES < len {
            break;
        }
        pos += FRAME_HEADER_BYTES + len;
    }
    pos
}

/// Reads every complete frame of a framed file; a torn tail (the one
/// record a SIGKILL may have cut short) is silently dropped.
fn read_frames(path: &Path) -> Vec<Vec<u8>> {
    let Ok(bytes) = fs::read(path) else {
        return Vec::new();
    };
    let mut dec = FrameDecoder::new();
    dec.feed(&bytes);
    let mut out = Vec::new();
    while let Ok(Some(payload)) = dec.next_frame() {
        out.push(payload);
    }
    out
}

/// Reads the single frame of a checkpoint file. Checkpoint files use
/// the loose file cap — a full snapshot legitimately outgrows the
/// 64 MiB wire cap that guards TCP reads.
fn read_ckpt_frame(path: &Path) -> Option<Vec<u8>> {
    let bytes = fs::read(path).ok()?;
    let mut dec = FrameDecoder::with_limit(MAX_FILE_FRAME_BYTES);
    dec.feed(&bytes);
    dec.next_frame().ok().flatten()
}

impl StableStore for FsStore {
    fn put_checkpoint(&self, epoch: EpochId, op: OperatorId, ckpt: CkptWrite) -> Result<bool> {
        let CkptWrite {
            state,
            next_seq,
            in_flight,
            resume_seq,
        } = ckpt;
        match state {
            state @ CkptState::Full(_) => {
                let write = CkptWrite {
                    state,
                    next_seq,
                    in_flight,
                    resume_seq,
                };
                self.write_ckpt_file(&self.full_path(epoch, op), ckpt_codec::encode_ckpt(&write))?;
            }
            CkptState::Delta { base, delta } => {
                // Walk the chain the incoming delta would extend.
                let mut older: Vec<StateDelta> = Vec::new();
                let mut cum = delta.encoded_bytes() as u64;
                let mut at = base;
                let base_snapshot = loop {
                    match self.read_ckpt(at, op).map(|c| c.state) {
                        None => {
                            return Err(Error::Storage(format!(
                                "delta checkpoint {epoch}/{op}: chain broken at {at}"
                            )))
                        }
                        Some(CkptState::Full(snapshot)) => break snapshot,
                        Some(CkptState::Delta { base: b, delta: d }) => {
                            if b >= at {
                                return Err(Error::Storage(format!(
                                    "delta checkpoint {epoch}/{op}: corrupt base pointer at {at}"
                                )));
                            }
                            cum += d.encoded_bytes() as u64;
                            older.push(d);
                            at = b;
                        }
                    }
                };
                if self.policy.should_rebase(
                    older.len() as u32 + 1,
                    cum,
                    base_snapshot.data.len() as u64,
                ) {
                    // Fold the whole chain into a fresh full snapshot.
                    let logical = delta.logical_bytes;
                    older.reverse();
                    older.push(delta);
                    let data = delta::fold(&base_snapshot.data, &older)?;
                    let write = CkptWrite {
                        state: CkptState::Full(OperatorSnapshot {
                            data,
                            logical_bytes: logical,
                        }),
                        next_seq,
                        in_flight,
                        resume_seq,
                    };
                    self.write_ckpt_file(
                        &self.full_path(epoch, op),
                        ckpt_codec::encode_ckpt(&write),
                    )?;
                } else {
                    let write = CkptWrite {
                        state: CkptState::Delta { base, delta },
                        next_seq,
                        in_flight,
                        resume_seq,
                    };
                    self.write_ckpt_file(
                        &self.delta_path(epoch, op),
                        ckpt_codec::encode_ckpt(&write),
                    )?;
                }
            }
        }
        let complete = self.epoch_is_complete(epoch);
        if complete {
            self.gc_below(epoch);
        }
        Ok(complete)
    }

    fn get_checkpoint(&self, epoch: EpochId, op: OperatorId) -> Option<LiveHauCheckpoint> {
        let CkptWrite {
            state,
            next_seq,
            in_flight,
            resume_seq,
        } = self.read_ckpt(epoch, op)?;
        match state {
            CkptState::Full(snapshot) => Some(LiveHauCheckpoint {
                snapshot,
                next_seq,
                in_flight,
                resume_seq,
            }),
            CkptState::Delta { base, delta } => {
                let logical = delta.logical_bytes;
                let mut deltas = vec![delta];
                let mut at = base;
                let base_data = loop {
                    match self.read_ckpt(at, op)?.state {
                        CkptState::Full(snapshot) => break snapshot.data,
                        CkptState::Delta { base: b, delta: d } => {
                            if b >= at {
                                return None;
                            }
                            deltas.push(d);
                            at = b;
                        }
                    }
                };
                deltas.reverse();
                let data = delta::fold(&base_data, &deltas).ok()?;
                Some(LiveHauCheckpoint {
                    snapshot: OperatorSnapshot {
                        data,
                        logical_bytes: logical,
                    },
                    next_seq,
                    in_flight,
                    resume_seq,
                })
            }
        }
    }

    fn latest_complete(&self) -> Option<EpochId> {
        let Ok(entries) = fs::read_dir(self.root.join("ckpt")) else {
            return None;
        };
        let mut epochs: Vec<u64> = entries
            .flatten()
            .filter_map(|e| parse_ckpt_epoch(&e.file_name().to_string_lossy()))
            .collect();
        epochs.sort_unstable();
        epochs.dedup();
        epochs
            .into_iter()
            .rev()
            .map(EpochId)
            .find(|&e| self.epoch_is_complete(e))
    }

    fn append_log(&self, source: OperatorId, t: Tuple) -> Result<()> {
        self.append_log_batch(source, std::slice::from_ref(&t))
    }

    fn append_log_batch(&self, source: OperatorId, batch: &[Tuple]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut deadline: Option<Instant> = None;
        loop {
            {
                let mut logs = self.logs.lock();
                let lw = self.ensure_writer(&mut logs, source)?;
                // Dedup guard per tuple: a restarted source regenerates
                // tuples an earlier incarnation already made durable.
                let fresh: Vec<&Tuple> = batch
                    .iter()
                    .filter(|t| lw.last_seq.is_none_or(|s| t.seq > s))
                    .collect();
                let Some(last) = fresh.last() else {
                    return Ok(()); // whole batch already durable
                };
                let last_seq = last.seq;
                // One pre-sized buffer of concatenated per-tuple frames
                // — byte-identical to appending each tuple alone, so
                // torn-tail detection and replay never see a "batch".
                let rec = frame_tuples(fresh);
                let mut fits = match self.log_cap {
                    Some((cap, _)) => lw.bytes + rec.len() as u64 <= cap,
                    None => true,
                };
                if !fits {
                    // Over the cap: drop what the newest complete
                    // checkpoint made unreplayable and re-check.
                    self.trim_log(source, lw)?;
                    let (cap, _) = self.log_cap.expect("cap present when over it");
                    fits = lw.bytes + rec.len() as u64 <= cap;
                }
                if fits {
                    // One write_all for the whole batch: the kernel has
                    // every frame (or, on a crash, at most a torn final
                    // record) — never an interleaving.
                    if let Err(e) = lw.file.write_all(&rec) {
                        // A failed write may have landed a partial
                        // record; restore the pre-write length so a
                        // retry appends onto a clean boundary. Only a
                        // restored tail may report transient — retrying
                        // over torn bytes would corrupt the log
                        // interior.
                        return Err(if lw.file.set_len(lw.bytes).is_ok() {
                            Error::storage_io(
                                &format!("source preservation failed for {source}"),
                                &e,
                            )
                        } else {
                            Error::Storage(format!(
                                "source preservation failed for {source}: {e} (tail not restored)"
                            ))
                        });
                    }
                    self.log_writes.fetch_add(1, Ordering::Relaxed);
                    lw.bytes += rec.len() as u64;
                    lw.last_seq = Some(last_seq);
                    return Ok(());
                }
            } // release the log mutex while pausing
            let patience = self.log_cap.expect("cap hit").1;
            let d = *deadline.get_or_insert_with(|| Instant::now() + patience);
            if Instant::now() >= d {
                return Err(Error::Storage(format!(
                    "source log for {source} at byte cap and no checkpoint freed space \
                     within {patience:?} (backpressure timeout)"
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn mark_epoch(&self, source: OperatorId, epoch: EpochId, next_seq: u64) -> Result<()> {
        let mut w = SnapshotWriter::new();
        w.put_u64(epoch.0).put_u64(next_seq);
        let path = self.marks_path(source);
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::storage_io(&format!("epoch mark open for {source}"), &e))?;
        let len = f
            .metadata()
            .map_err(|e| Error::Storage(format!("epoch mark stat for {source}: {e}")))?
            .len();
        if let Err(e) = f.write_all(&frame(&w.finish())) {
            // Same retry-safety contract as the preservation log: a
            // restored tail may retry, an unrestorable one may not.
            return Err(if f.set_len(len).is_ok() {
                Error::storage_io(&format!("epoch mark failed for {source}"), &e)
            } else {
                Error::Storage(format!(
                    "epoch mark failed for {source}: {e} (tail not restored)"
                ))
            });
        }
        Ok(())
    }

    fn replay_from(&self, source: OperatorId, epoch: EpochId) -> Vec<Tuple> {
        let from_seq = self.mark_for(source, epoch).unwrap_or(0);
        read_frames(&self.log_path(source))
            .iter()
            .filter_map(|p| SnapshotReader::new(p).get_tuple().ok())
            .filter(|t| t.seq >= from_seq)
            .collect()
    }

    fn preserved_tuples(&self) -> usize {
        let Ok(entries) = fs::read_dir(self.root.join("log")) else {
            return 0;
        };
        entries
            .flatten()
            .map(|e| read_frames(&e.path()).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::delta::DeltaTable;
    use ms_core::time::SimTime;
    use ms_core::value::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ms_wire_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn tup(seq: u64) -> Tuple {
        Tuple::new(
            OperatorId(0),
            seq,
            SimTime::ZERO,
            vec![Value::Int(seq as i64)],
        )
    }

    fn snap(data: Vec<u8>) -> OperatorSnapshot {
        OperatorSnapshot {
            logical_bytes: data.len() as u64,
            data,
        }
    }

    fn ck(next_seq: u64) -> CkptWrite {
        CkptWrite::full(snap(vec![9, 9, 9]), next_seq)
    }

    fn delta_write(base: EpochId, delta: StateDelta, next_seq: u64) -> CkptWrite {
        CkptWrite {
            state: CkptState::Delta { base, delta },
            next_seq,
            in_flight: Vec::new(),
            resume_seq: Vec::new(),
        }
    }

    #[test]
    fn completeness_is_visible_across_handles() {
        let dir = tmpdir("complete");
        let a = FsStore::open(&dir, 2).unwrap();
        // A second handle on the same directory — as a second process
        // would hold.
        let b = FsStore::open(&dir, 2).unwrap();
        assert!(!a.put_checkpoint(EpochId(1), OperatorId(0), ck(5)).unwrap());
        assert_eq!(b.latest_complete(), None);
        assert!(b.put_checkpoint(EpochId(1), OperatorId(1), ck(0)).unwrap());
        assert_eq!(a.latest_complete(), Some(EpochId(1)));
        let got = b.get_checkpoint(EpochId(1), OperatorId(0)).unwrap();
        assert_eq!(got.next_seq, 5);
        assert_eq!(got.snapshot.data, vec![9, 9, 9]);
        assert!(got.in_flight.is_empty());
        assert!(got.resume_seq.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_flight_portion_roundtrips() {
        let dir = tmpdir("inflight");
        let s = FsStore::open(&dir, 1).unwrap();
        let full = CkptWrite {
            state: CkptState::Full(snap(vec![1, 2])),
            next_seq: 44,
            in_flight: vec![(0, tup(7)), (1, tup(9))],
            resume_seq: vec![8, 10],
        };
        assert!(s.put_checkpoint(EpochId(3), OperatorId(0), full).unwrap());
        let got = s.get_checkpoint(EpochId(3), OperatorId(0)).unwrap();
        assert_eq!(got.next_seq, 44);
        assert_eq!(got.resume_seq, vec![8, 10]);
        assert_eq!(got.in_flight.len(), 2);
        assert_eq!(got.in_flight[0].0, 0);
        assert_eq!(got.in_flight[0].1.seq, 7);
        assert_eq!(got.in_flight[1].0, 1);
        assert_eq!(got.in_flight[1].1.seq, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_survives_handle_and_dedups_restart() {
        let dir = tmpdir("log");
        {
            let s = FsStore::open(&dir, 1).unwrap();
            for seq in 0..10 {
                s.append_log(OperatorId(0), tup(seq)).unwrap();
            }
            s.mark_epoch(OperatorId(0), EpochId(1), 6).unwrap();
        }
        // "Restarted" incarnation regenerates from scratch: the first
        // ten appends are duplicates and must be skipped.
        let s = FsStore::open(&dir, 1).unwrap();
        for seq in 0..12 {
            s.append_log(OperatorId(0), tup(seq)).unwrap();
        }
        assert_eq!(s.preserved_tuples(), 12);
        let replay = s.replay_from(OperatorId(0), EpochId(1));
        assert_eq!(replay.len(), 6);
        assert_eq!(replay[0].seq, 6);
        // Unknown epoch: everything (mirrors LiveStorage).
        assert_eq!(s.replay_from(OperatorId(0), EpochId(42)).len(), 12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmpdir("torn");
        {
            let s = FsStore::open(&dir, 1).unwrap();
            for seq in 0..5 {
                s.append_log(OperatorId(0), tup(seq)).unwrap();
            }
        }
        // Simulate a SIGKILL mid-append: cut the last record short.
        let path = dir.join("log").join("op0.log");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let s = FsStore::open(&dir, 1).unwrap();
        let replay = s.replay_from(OperatorId(0), EpochId(0));
        assert_eq!(replay.len(), 4);
        // The next incarnation re-appends the torn tuple: seq 4 is
        // above the highest *complete* record, so it must not be
        // dropped by the dedup guard.
        s.append_log(OperatorId(0), tup(4)).unwrap();
        assert_eq!(s.replay_from(OperatorId(0), EpochId(0)).len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_files_never_count_toward_completeness() {
        let dir = tmpdir("tmpfiles");
        let s = FsStore::open(&dir, 1).unwrap();
        fs::write(dir.join("ckpt").join(".tmp_e9_op0.ckpt"), b"junk").unwrap();
        assert_eq!(s.latest_complete(), None);
        assert!(s.put_checkpoint(EpochId(9), OperatorId(0), ck(1)).unwrap());
        assert_eq!(s.latest_complete(), Some(EpochId(9)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_chain_folds_byte_identically_across_handles() {
        let dir = tmpdir("deltachain");
        let s = FsStore::open(&dir, 1).unwrap();
        let mut t = DeltaTable::new();
        for k in 0..32u64 {
            t.insert(k, vec![k as u8; 24]);
        }
        s.put_checkpoint(
            EpochId(1),
            OperatorId(0),
            CkptWrite::full(snap(t.snapshot()), 5),
        )
        .unwrap();
        t.mark_clean();
        t.insert(7, vec![0xAA; 24]);
        t.remove(9);
        s.put_checkpoint(
            EpochId(2),
            OperatorId(0),
            delta_write(EpochId(1), t.take_delta(77), 6),
        )
        .unwrap();
        t.insert(40, vec![0xBB; 24]);
        s.put_checkpoint(
            EpochId(3),
            OperatorId(0),
            delta_write(EpochId(2), t.take_delta(78), 7),
        )
        .unwrap();
        assert!(dir.join("ckpt").join("e3_op0.delta").exists());
        // A fresh handle (another process) folds the chain on read.
        let other = FsStore::open(&dir, 1).unwrap();
        let got = other.get_checkpoint(EpochId(3), OperatorId(0)).unwrap();
        assert_eq!(got.snapshot.data, t.snapshot(), "fold is byte-identical");
        assert_eq!(got.snapshot.logical_bytes, 78);
        assert_eq!(got.next_seq, 7);
        assert_eq!(other.latest_complete(), Some(EpochId(3)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn broken_chain_is_neither_complete_nor_writable() {
        let dir = tmpdir("broken");
        let s = FsStore::open(&dir, 1).unwrap();
        // A delta whose base was never written is rejected.
        let mut t = DeltaTable::new();
        t.insert(1, vec![1]);
        assert!(s
            .put_checkpoint(
                EpochId(2),
                OperatorId(0),
                delta_write(EpochId(1), t.take_delta(0), 0),
            )
            .is_err());
        // Hand-plant a delta file with a dangling base: the epoch must
        // not count as complete.
        t.insert(2, vec![2]);
        let dangling = delta_write(EpochId(1), t.take_delta(0), 0); // base = missing epoch 1
        fs::write(
            dir.join("ckpt").join("e2_op0.delta"),
            frame(&ckpt_codec::encode_ckpt(&dangling)),
        )
        .unwrap();
        assert_eq!(s.latest_complete(), None);
        assert!(s.get_checkpoint(EpochId(2), OperatorId(0)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_codec_parity_with_live_storage() {
        // Both runtimes share one checkpoint format: the same write
        // sequence through FsStore and LiveStorage folds to
        // byte-identical state, and the bytes FsStore framed to disk
        // are exactly the shared codec's encoding.
        use ms_live::LiveStorage;
        let dir = tmpdir("parity");
        let fs_store = FsStore::open(&dir, 1).unwrap();
        let live = LiveStorage::new(1);
        let mut t = DeltaTable::new();
        for k in 0..16u64 {
            t.insert(k, vec![k as u8; 12]);
        }
        let w1 = CkptWrite::full(snap(t.snapshot()), 3);
        fs_store
            .put_checkpoint(EpochId(1), OperatorId(0), w1.clone())
            .unwrap();
        live.put_checkpoint(EpochId(1), OperatorId(0), w1).unwrap();
        t.mark_clean();
        t.insert(5, vec![0xAA; 12]);
        t.remove(2);
        let w2 = CkptWrite {
            state: CkptState::Delta {
                base: EpochId(1),
                delta: t.take_delta(50),
            },
            next_seq: 9,
            in_flight: vec![(1, tup(8))],
            resume_seq: vec![4, 9],
        };
        fs_store
            .put_checkpoint(EpochId(2), OperatorId(0), w2.clone())
            .unwrap();
        live.put_checkpoint(EpochId(2), OperatorId(0), w2.clone())
            .unwrap();
        let on_disk = read_ckpt_frame(&dir.join("ckpt").join("e2_op0.delta")).unwrap();
        assert_eq!(on_disk, ckpt_codec::encode_ckpt(&w2), "one format on disk");
        let a = fs_store.get_checkpoint(EpochId(2), OperatorId(0)).unwrap();
        let b = live.get_checkpoint(EpochId(2), OperatorId(0)).unwrap();
        assert_eq!(a.snapshot.data, b.snapshot.data, "folds byte-identical");
        assert_eq!(a.snapshot.data, t.snapshot());
        assert_eq!(a.snapshot.logical_bytes, b.snapshot.logical_bytes);
        assert_eq!(a.next_seq, b.next_seq);
        assert_eq!(a.in_flight, b.in_flight);
        assert_eq!(a.resume_seq, b.resume_seq);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebase_writes_full_and_completion_gcs_old_epochs() {
        let dir = tmpdir("rebase");
        let s = FsStore::open(&dir, 1).unwrap().with_policy(RebasePolicy {
            max_chain: 3,
            max_delta_pct: 1_000_000,
        });
        let mut t = DeltaTable::new();
        for k in 0..64u64 {
            t.insert(k, vec![k as u8; 16]);
        }
        s.put_checkpoint(
            EpochId(1),
            OperatorId(0),
            CkptWrite::full(snap(t.snapshot()), 0),
        )
        .unwrap();
        t.mark_clean();
        let mut prev = EpochId(1);
        for e in 2..=4u64 {
            t.insert(100 + e, vec![0xCC; 16]);
            s.put_checkpoint(
                EpochId(e),
                OperatorId(0),
                delta_write(prev, t.take_delta(0), e),
            )
            .unwrap();
            prev = EpochId(e);
        }
        // Epoch 4 would be the third delta in the chain — rebased to a
        // full file, and its completion GCs epochs 1–3.
        assert!(dir.join("ckpt").join("e4_op0.ckpt").exists());
        assert!(!dir.join("ckpt").join("e4_op0.delta").exists());
        assert!(!dir.join("ckpt").join("e1_op0.ckpt").exists(), "GC'd");
        assert!(!dir.join("ckpt").join("e2_op0.delta").exists(), "GC'd");
        assert_eq!(s.latest_complete(), Some(EpochId(4)));
        let got = s.get_checkpoint(EpochId(4), OperatorId(0)).unwrap();
        assert_eq!(got.snapshot.data, t.snapshot());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_writes_far_fewer_bytes_on_mostly_unchanged_state() {
        // The CI smoke check: on a mostly-unchanged keyed state, the
        // delta file must be a small fraction of the full snapshot.
        let dir = tmpdir("smoke");
        let s = FsStore::open(&dir, 1).unwrap();
        let mut t = DeltaTable::new();
        for k in 0..1000u64 {
            t.insert(k, vec![(k % 251) as u8; 100]);
        }
        s.put_checkpoint(
            EpochId(1),
            OperatorId(0),
            CkptWrite::full(snap(t.snapshot()), 0),
        )
        .unwrap();
        t.mark_clean();
        for k in 0..10u64 {
            t.insert(k * 97, vec![0xEE; 100]); // 1% of keys
        }
        s.put_checkpoint(
            EpochId(2),
            OperatorId(0),
            delta_write(EpochId(1), t.take_delta(0), 0),
        )
        .unwrap();
        let full_bytes = fs::metadata(dir.join("ckpt").join("e1_op0.ckpt"))
            .unwrap()
            .len();
        let delta_bytes = fs::metadata(dir.join("ckpt").join("e2_op0.delta"))
            .unwrap()
            .len();
        assert!(
            delta_bytes * 5 < full_bytes,
            "delta path must write far fewer bytes ({delta_bytes} vs {full_bytes})"
        );
        // And the chain still restores byte-identically.
        let got = s.get_checkpoint(EpochId(2), OperatorId(0)).unwrap();
        assert_eq!(got.snapshot.data, t.snapshot());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_over_the_wire_frame_cap_roundtrips() {
        // A full snapshot of a large operator legitimately exceeds the
        // 64 MiB wire frame cap; checkpoint files must still write and
        // read (they use the loose file cap), and a delta based on one
        // must still validate its chain.
        let dir = tmpdir("bigckpt");
        let s = FsStore::open(&dir, 1).unwrap();
        let big = snap(vec![0xAB; MAX_FRAME_BYTES + 1024]);
        assert!(s
            .put_checkpoint(EpochId(1), OperatorId(0), CkptWrite::full(big.clone(), 3))
            .unwrap());
        let got = s.get_checkpoint(EpochId(1), OperatorId(0)).unwrap();
        assert_eq!(got.snapshot.data.len(), big.data.len());
        assert_eq!(got.snapshot.data, big.data);
        assert_eq!(s.latest_complete(), Some(EpochId(1)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_cap_pauses_then_fails_without_checkpoints() {
        let dir = tmpdir("capfail");
        let s = FsStore::open(&dir, 1)
            .unwrap()
            .with_log_cap(256, Duration::from_millis(50));
        let mut err = None;
        for seq in 0..64 {
            if let Err(e) = s.append_log(OperatorId(0), tup(seq)) {
                err = Some(e);
                break;
            }
        }
        let err = err.expect("cap must eventually fail the append");
        assert!(matches!(err, Error::Storage(_)));
        // The cap was honoured: the log never grew past it.
        assert!(fs::metadata(dir.join("log").join("op0.log")).unwrap().len() <= 256);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_cap_frees_space_after_complete_checkpoint() {
        let dir = tmpdir("captrim");
        let s = FsStore::open(&dir, 1)
            .unwrap()
            .with_log_cap(512, Duration::from_millis(50));
        let mut seq = 0;
        while s.append_log(OperatorId(0), tup(seq)).is_ok() && seq < 64 {
            seq += 1;
            if fs::metadata(dir.join("log").join("op0.log")).unwrap().len() > 384 {
                break;
            }
        }
        // A complete checkpoint whose replay boundary covers the log so
        // far makes every record trimmable.
        s.mark_epoch(OperatorId(0), EpochId(1), seq).unwrap();
        assert!(s
            .put_checkpoint(EpochId(1), OperatorId(0), ck(seq))
            .unwrap());
        // Appends resume: the over-cap append trims and succeeds
        // without waiting out the patience window.
        for extra in 0..8 {
            s.append_log(OperatorId(0), tup(seq + extra)).unwrap();
        }
        let replay = s.replay_from(OperatorId(0), EpochId(1));
        assert_eq!(replay.len(), 8, "trim kept exactly the replayable tail");
        assert_eq!(replay[0].seq, seq);
        let _ = fs::remove_dir_all(&dir);
    }
}
