//! Error type shared across the workspace.

use std::fmt;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the Meteor Shower crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A snapshot could not be decoded (truncated/corrupt data or a
    /// tag mismatch).
    Codec(String),
    /// A query network is malformed (cycle, dangling edge, duplicate
    /// connection, …).
    Graph(String),
    /// An experiment or cluster configuration is invalid.
    Config(String),
    /// A recovery step failed (e.g. no complete checkpoint exists).
    Recovery(String),
    /// A component was addressed that does not exist.
    NotFound(String),
    /// A real-transport failure: connection refused or reset, broken
    /// pipe, torn/oversized frame, unexpected EOF mid-message. This is
    /// the live-cluster counterpart of the simulator's
    /// `ms_net::SendOutcome::Unreachable` — fail-stop, observable by
    /// the sender, never a silent loss.
    Wire(String),
    /// Stable storage failed (preservation append, epoch mark, or
    /// checkpoint write/trim). Surfaced to the controller so the run
    /// fails visibly instead of aborting the worker process.
    Storage(String),
    /// Stable storage failed in a way that is plausibly transient — an
    /// interrupted syscall, a momentarily saturated device, an injected
    /// chaos fault. Durability-critical callers retry these with
    /// backoff; an exhausted retry budget escalates to the hard
    /// [`Error::Storage`] path. Keeping the distinction in the type
    /// (not in message text) is what lets the retry layer stay a thin
    /// decorator.
    Transient(String),
}

impl Error {
    /// True if retrying the failed operation may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Transient(_))
    }

    /// Classifies a storage-path I/O failure: interrupted / would-block
    /// / timed-out syscalls are transient (the kernel is telling us to
    /// try again), everything else — missing files, permission, ENOSPC,
    /// corrupt data — is a hard storage error.
    pub fn storage_io(context: &str, e: &std::io::Error) -> Error {
        use std::io::ErrorKind;
        let msg = format!("{context}: {:?}: {e}", e.kind());
        match e.kind() {
            ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                Error::Transient(msg)
            }
            _ => Error::Storage(msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Graph(m) => write!(f, "query network error: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Recovery(m) => write!(f, "recovery error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Wire(m) => write!(f, "wire error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Transient(m) => write!(f, "transient storage error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    /// Wire transports surface OS-level socket failures; the error
    /// kind is preserved in text so callers (and logs) can still tell
    /// a refused connect from a broken pipe. `io::Error` is neither
    /// `Clone` nor `PartialEq`, hence the stringly capture.
    fn from(e: std::io::Error) -> Error {
        Error::Wire(format!("{:?}: {e}", e.kind()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category() {
        assert!(Error::Codec("x".into()).to_string().contains("codec"));
        assert!(Error::Graph("x".into())
            .to_string()
            .contains("query network"));
        assert!(Error::Wire("x".into()).to_string().contains("wire"));
    }

    #[test]
    fn storage_io_classifies_retryable_kinds() {
        use std::io::{Error as IoError, ErrorKind};
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
        ] {
            let e = Error::storage_io("append", &IoError::new(kind, "busy"));
            assert!(e.is_transient(), "{kind:?} should be transient");
            assert!(e.to_string().contains("transient"));
        }
        for kind in [
            ErrorKind::NotFound,
            ErrorKind::PermissionDenied,
            ErrorKind::UnexpectedEof,
        ] {
            let e = Error::storage_io("append", &IoError::new(kind, "gone"));
            assert!(!e.is_transient(), "{kind:?} must be hard");
            assert!(matches!(e, Error::Storage(_)));
        }
    }

    #[test]
    fn io_error_maps_to_wire_with_kind() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe gone");
        let e = Error::from(io);
        match &e {
            Error::Wire(m) => {
                assert!(m.contains("BrokenPipe"));
                assert!(m.contains("pipe gone"));
            }
            other => panic!("expected Wire, got {other:?}"),
        }
    }
}
