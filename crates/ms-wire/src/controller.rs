//! The `ms-controller` daemon: deployment, checkpoint pacing, failure
//! detection, and recovery orchestration for a TCP cluster.
//!
//! The controller is the MS-src control plane in one event loop. It
//! loads the query network, waits for enough workers to register,
//! broadcasts an [`Assignment`] (generation 1), then paces checkpoint
//! tokens on a fixed cadence — gated by the epoch barrier: epoch
//! `e+1` tokens are only broadcast once every HAU's epoch-`e`
//! checkpoint has been acked durable (`CkptDone`), so two epochs'
//! tokens can never race through the graph no matter how short the
//! cadence. Workers heartbeat continuously on a dedicated heartbeat
//! connection; a heartbeat silence longer than the timeout on any
//! worker that hosts operators is a failure, and a `WorkerError`
//! report (storage failure, failed deploy) rolls the generation back
//! without waiting for a timeout. Recovery is the paper's §IV sequence:
//! broadcast `Rollback` to the survivors, wait briefly for a spare to
//! register, read the latest *complete* application checkpoint off the
//! shared stable store, and broadcast a new generation restoring from
//! it (sources replay their preserved logs past that boundary). When
//! every sink reports its final state, the controller writes the
//! result file and shuts the cluster down — the recovered answer is
//! byte-identical to a failure-free run, which the integration test
//! asserts by diffing the two result files.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use ms_cluster::{place_gates, spread_shards};
use ms_core::error::{Error, Result};
use ms_core::gate::GateConfig;
use ms_core::graph::QueryNetwork;
use ms_core::ids::{EpochId, OperatorId};
use ms_core::metrics::{BackpressureGauges, OperatorSample};
use ms_core::shard::{expand, ShardPlan};
use ms_gate::GateSample;
use ms_live::StableStore;

use crate::apps::demo_network;
use crate::cadence::{CheckpointCause, EpochSignals, PlaneConfig, TelemetryPlane};
use crate::ledger::{read_ledger, DecisionRecord, LedgerRecord, LedgerWriter, LEDGER_FILE};
use crate::message::{recv_msg, send_msg, Assignment, GateSpec, OpPlacement, WireMsg};
use crate::store::FsStore;

const ACCEPT_POLL: Duration = Duration::from_millis(10);
const TICK: Duration = Duration::from_millis(25);
/// Queued-tuple counts at/above this print a backpressure stall line…
const STALL_HI: u64 = 512;
/// …which clears (hysteresis) only once the queue drains below this.
const STALL_LO: u64 = 64;

/// Controller configuration.
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// Listen address for worker control connections (use port 0 for
    /// an ephemeral port plus `addr_file`).
    pub listen: String,
    /// File to publish the bound address into (atomic rename), for
    /// workers started with `--controller-file`.
    pub addr_file: Option<PathBuf>,
    /// Shared stable-store directory.
    pub store_dir: PathBuf,
    /// Workers to wait for before the first assignment.
    pub workers: usize,
    /// Demo graph shape (`chainN` or `diamond`).
    pub shape: String,
    /// Tuples each source emits.
    pub source_limit: u64,
    /// Per-tuple source delay (µs).
    pub source_delay_us: u64,
    /// Key count for the keyed-state interior operator (0 = stateless
    /// doubler interiors, the original demo shape).
    pub keyed_state: u64,
    /// With `keyed_state`, collapse the interior keyed table every
    /// this many applied tuples (`SawtoothStat`) — gives the state a
    /// sawtooth profile with real local minima (0 = plain `KeyedStat`).
    pub sawtooth_window: u64,
    /// Key-partitioned instances per interior operator (0 or 1 = no
    /// sharding). The shape above is the *logical* graph; the cluster
    /// deploys its [`expand`]-ed physical graph, so e.g. `fleet6x6`
    /// with 8 shards runs 6 sources + 48 stage shards + 1 sink = 55
    /// HAUs — the paper's evaluation scale.
    pub shards: u64,
    /// Checkpoint-token cadence.
    pub ckpt_interval: Duration,
    /// Heartbeat silence treated as a failure.
    pub hb_timeout: Duration,
    /// An epoch barrier held open longer than this is treated as a
    /// generation failure and rolled back (`None` = wait forever). A
    /// severed edge eats checkpoint tokens without killing any
    /// process, so heartbeat detection never fires; this is the only
    /// detector that catches a live-but-partitioned cluster.
    pub barrier_stall: Option<Duration>,
    /// After a failure, how long to hold redeployment open for a spare
    /// worker to register before continuing with the survivors.
    pub respawn_wait: Duration,
    /// Hard wall-clock budget for the whole run (belt-and-braces for
    /// CI; exceeded ⇒ error exit, never a hang).
    pub deadline: Duration,
    /// Where to write the final result (first line `recoveries=N`,
    /// then one `sink op{N} {hex}` line per sink).
    pub result_file: Option<PathBuf>,
    /// When set, every source of the graph is hosted as an ingestion
    /// gateway (`ms-gate`) under this admission configuration instead
    /// of a demo source; external producers push batches at the
    /// addresses the gate hosts publish (`gate_op{N}.addr` under the
    /// store directory).
    pub gate: Option<GateConfig>,
    /// Live application-aware checkpoint timing (§III-C): profile the
    /// heartbeat state-size stream for `aware_profile_periods`
    /// checkpoint periods, then initiate epoch barriers at detected
    /// aggregate local minima instead of on the fixed timer. The
    /// fixed timer still runs while profiling and as the period-end
    /// backstop.
    pub aware: bool,
    /// Spacing between execution-phase sampling rounds of the live
    /// profiler (how often alert mode re-evaluates turning points).
    pub aware_sample: Duration,
    /// Checkpoint periods observed before the profile — dynamic set,
    /// `smax` — freezes and execution mode starts.
    pub aware_profile_periods: u32,
    /// Recovery-time budget for the adaptive cadence layer: after
    /// every epoch barrier the controller estimates worst-case
    /// recovery (restore + replay window) from measured ledger
    /// signals and widens/narrows the checkpoint period to hold this
    /// budget. `None` = the period stays fixed.
    pub recovery_budget: Option<Duration>,
}

/// What a finished run looked like.
#[derive(Debug)]
pub struct ClusterReport {
    /// Failures recovered from.
    pub recoveries: usize,
    /// Checkpoint commands issued.
    pub checkpoints: u64,
    /// The epoch each recovery restored from (`None` = fresh restart).
    pub restore_epochs: Vec<Option<EpochId>>,
    /// Final serialized state per sink operator.
    pub sink_states: BTreeMap<OperatorId, Vec<u8>>,
}

impl ClusterReport {
    /// The result-file / stdout rendering (deterministic line order).
    pub fn render(&self) -> String {
        let mut out = format!("recoveries={}\n", self.recoveries);
        for (op, state) in &self.sink_states {
            let hex: String = state.iter().map(|b| format!("{b:02x}")).collect();
            out.push_str(&format!("sink {op} {hex}\n"));
        }
        out
    }
}

enum Event {
    Register {
        name: String,
        data_addr: String,
        writer: TcpStream,
    },
    Beat {
        name: String,
        gauges: BackpressureGauges,
    },
    SinkDone {
        generation: u64,
        op: OperatorId,
        snapshot: Vec<u8>,
    },
    /// A batch of operator telemetry samples from one worker — the
    /// heartbeat-cadence sweep of every local operator, or the single
    /// fresh sample a worker sends just ahead of each `CkptDone`.
    Telemetry {
        generation: u64,
        samples: Vec<(OperatorId, OperatorSample)>,
    },
    /// Gateway meter samples from one worker's heartbeat sweep.
    GateTelemetry {
        generation: u64,
        samples: Vec<(OperatorId, GateSample)>,
    },
    /// One HAU's individual checkpoint is durable (the epoch barrier).
    CkptAck {
        generation: u64,
        epoch: EpochId,
        op: OperatorId,
    },
    /// A worker hit a local non-recoverable fault (storage failure,
    /// failed deploy) but its process is still up.
    WorkerFault {
        generation: u64,
        name: String,
        detail: String,
    },
    ConnLost {
        name: String,
    },
    Tick,
}

struct Worker {
    name: String,
    data_addr: String,
    writer: TcpStream,
    last_beat: Instant,
    alive: bool,
    has_ops: bool,
    /// Latest backpressure gauges off the heartbeat stream.
    gauges: BackpressureGauges,
    /// Currently over the stall threshold (prints with hysteresis).
    stalled: bool,
}

/// Per-connection reader: demands `Register` (control connection) or
/// `HeartbeatHello` (dedicated heartbeat connection) first, then pumps
/// heartbeats, checkpoint acks, faults, and sink reports into the
/// event queue until the connection dies.
fn reader(mut stream: TcpStream, events: Sender<Event>) {
    let name = match recv_msg(&mut stream) {
        Ok(Some(WireMsg::Register { name, data_addr })) => {
            let Ok(writer) = stream.try_clone() else {
                return;
            };
            if events
                .send(Event::Register {
                    name: name.clone(),
                    data_addr,
                    writer,
                })
                .is_err()
            {
                return;
            }
            name
        }
        // A heartbeat-only stream: beats are attributed to the worker
        // registered (on its control connection) under this name.
        Ok(Some(WireMsg::HeartbeatHello { name })) => name,
        _ => return,
    };
    loop {
        let event = match recv_msg(&mut stream) {
            Ok(Some(WireMsg::Heartbeat { gauges })) => Event::Beat {
                name: name.clone(),
                gauges,
            },
            Ok(Some(WireMsg::Telemetry {
                generation,
                samples,
            })) => Event::Telemetry {
                generation,
                samples,
            },
            Ok(Some(WireMsg::GateTelemetry {
                generation,
                samples,
            })) => Event::GateTelemetry {
                generation,
                samples,
            },
            Ok(Some(WireMsg::SinkDone {
                generation,
                op,
                snapshot,
            })) => Event::SinkDone {
                generation,
                op,
                snapshot,
            },
            Ok(Some(WireMsg::CkptDone {
                generation,
                epoch,
                op,
            })) => Event::CkptAck {
                generation,
                epoch,
                op,
            },
            Ok(Some(WireMsg::WorkerError { generation, detail })) => Event::WorkerFault {
                generation,
                name: name.clone(),
                detail,
            },
            _ => {
                let _ = events.send(Event::ConnLost { name });
                return;
            }
        };
        if events.send(event).is_err() {
            return;
        }
    }
}

fn publish_addr(path: &PathBuf, addr: &str) -> Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, addr)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Runs the controller to completion and returns the cluster report.
pub fn run_controller(cfg: ControllerConfig) -> Result<ClusterReport> {
    // The configured shape is the logical graph; everything below —
    // checkpoint barrier, placement, store layout, ledger — runs on
    // its sharded physical expansion (identity when `shards <= 1`).
    let logical = demo_network(&cfg.shape)?;
    let (qn, plan) = expand(&logical, cfg.shards as usize)?;
    if cfg.shards > 1 {
        println!(
            "ms-controller: sharded {} logical operators into {} HAUs ({} shards/interior)",
            logical.len(),
            qn.len(),
            cfg.shards
        );
    }
    let store = FsStore::open(&cfg.store_dir, qn.len())?;
    let n_sinks = qn.sinks().len();
    // The run ledger lives next to the checkpoints, opened in append
    // mode so one trail spans every generation of the run. Telemetry
    // is advisory: a ledger that cannot be opened disables the trail
    // but never fails the cluster.
    let mut ledger = match LedgerWriter::open(&cfg.store_dir.join(LEDGER_FILE)) {
        Ok(l) => Some(l),
        Err(e) => {
            eprintln!("ms-controller: run ledger disabled: {e}");
            None
        }
    };

    let listener = TcpListener::bind(cfg.listen.as_str())?;
    let addr = listener.local_addr()?.to_string();
    if let Some(path) = &cfg.addr_file {
        publish_addr(path, &addr)?;
    }
    println!("ms-controller: listening on {addr}");
    listener.set_nonblocking(true)?;

    let (etx, erx) = unbounded::<Event>();
    let stop = Arc::new(AtomicBool::new(false));

    let accept_stop = stop.clone();
    let accept_etx = etx.clone();
    let accept = thread::spawn(move || loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let etx = accept_etx.clone();
                // Detached; exits when the worker's connection closes.
                thread::spawn(move || reader(stream, etx));
            }
            Err(_) => {
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(ACCEPT_POLL);
            }
        }
    });
    let tick_stop = stop.clone();
    let ticker = thread::spawn(move || {
        while !tick_stop.load(Ordering::SeqCst) {
            thread::sleep(TICK);
            if etx.send(Event::Tick).is_err() {
                return;
            }
        }
    });

    let deadline = Instant::now() + cfg.deadline;
    let mut workers: Vec<Worker> = Vec::new();
    // A controller started onto a store with history is a restarted
    // controller (the double-fault scenario): resume epoch numbering
    // strictly past every epoch any incarnation ever started, resume
    // generation numbering past the ledger's last record, and restore
    // the first deployment from the latest complete checkpoint rather
    // than replaying the run from scratch.
    let mut next_epoch = store.max_epoch_started().unwrap_or(EpochId::INITIAL);
    let mut generation = read_ledger(&cfg.store_dir.join(LEDGER_FILE))
        .ok()
        .and_then(|recs| recs.iter().map(|r| r.generation).max())
        .unwrap_or(0);
    let resumed = next_epoch != EpochId::INITIAL || generation > 0;
    if resumed {
        println!(
            "ms-controller: resuming on existing store \
             (generation > {generation}, epoch > {next_epoch})"
        );
    }
    let mut last_ckpt = Instant::now();
    let mut deployed = false;
    let mut recovering_since: Option<Instant> = None;
    // The epoch barrier: the epoch whose durable acks are still
    // outstanding, and the HAUs that acked it so far. While `Some`,
    // no further checkpoint token is broadcast — epoch `e+1` tokens
    // only enter the graph once every HAU's epoch-`e` checkpoint is
    // durable.
    let mut outstanding: Option<EpochId> = None;
    let mut outstanding_since = Instant::now();
    let mut acked: HashSet<OperatorId> = HashSet::new();
    // Freshest telemetry sample per operator (current generation only)
    // and where each operator runs, for folding the hosting worker's
    // backpressure gauges into that operator's ledger records.
    let mut latest: HashMap<OperatorId, OperatorSample> = HashMap::new();
    // Freshest gateway sample per gate op (cumulative counters, so the
    // newest heartbeat sweep always supersedes).
    let mut latest_gate: HashMap<OperatorId, GateSample> = HashMap::new();
    let mut op_worker: HashMap<OperatorId, String> = HashMap::new();
    let n_ops_total = qn.len();
    let mut report = ClusterReport {
        recoveries: 0,
        checkpoints: 0,
        restore_epochs: Vec::new(),
        sink_states: BTreeMap::new(),
    };
    // The live telemetry plane: §III-C aware barrier initiation
    // (`--aware`) and/or the adaptive cadence layer
    // (`--recovery-budget-ms`). `None` keeps the legacy fixed timer
    // bit-for-bit (and writes no decision records).
    let mut plane: Option<TelemetryPlane> =
        (cfg.aware || cfg.recovery_budget.is_some()).then(|| {
            TelemetryPlane::new(&PlaneConfig {
                aware: cfg.aware,
                sample_interval: cfg.aware_sample,
                profile_periods: cfg.aware_profile_periods,
                period: cfg.ckpt_interval,
                recovery_budget: cfg.recovery_budget,
            })
        });
    // Measured recovery clock: armed when a failure is detected, read
    // at the first barrier close of the restored generation.
    let mut recovery_t0: Option<Instant> = None;

    let outcome = loop {
        let event = match erx.recv() {
            Ok(e) => e,
            Err(_) => break Err(Error::Wire("controller event queue died".into())),
        };
        if Instant::now() > deadline {
            break Err(Error::Wire(format!(
                "controller deadline ({:?}) exceeded",
                cfg.deadline
            )));
        }
        match event {
            Event::Register {
                name,
                data_addr,
                writer,
            } => {
                println!("ms-controller: worker {name} registered at {data_addr}");
                workers.retain(|w| w.name != name);
                workers.push(Worker {
                    name,
                    data_addr,
                    writer,
                    last_beat: Instant::now(),
                    alive: true,
                    has_ops: false,
                    gauges: BackpressureGauges::default(),
                    stalled: false,
                });
            }
            Event::Beat { name, gauges } => {
                if let Some(w) = workers.iter_mut().find(|w| w.name == name) {
                    w.last_beat = Instant::now();
                    w.gauges = gauges;
                    // Surface sustained backpressure (deep input queues
                    // relative to the bounded channels) without spamming
                    // a line per heartbeat: print on crossing the high
                    // mark, clear only below the low mark.
                    if !w.stalled && gauges.queued_tuples >= STALL_HI {
                        w.stalled = true;
                        println!(
                            "ms-controller: worker {} backpressured \
                             (queued={} windows={} buffered={})",
                            w.name, gauges.queued_tuples, gauges.open_windows, gauges.window_tuples
                        );
                    } else if w.stalled && gauges.queued_tuples <= STALL_LO {
                        w.stalled = false;
                        println!("ms-controller: worker {} drained", w.name);
                    }
                }
            }
            Event::ConnLost { name } => {
                // Heartbeats from this worker have necessarily stopped;
                // let the timeout-based detector classify the failure,
                // as the paper's controller does.
                println!("ms-controller: lost connection to {name}");
            }
            Event::Telemetry {
                generation: g,
                samples,
            } => {
                if g == generation && deployed {
                    for (op, s) in samples {
                        // Heartbeat-cadence samples race the per-ack
                        // samples across two connections; never let a
                        // stale heartbeat sweep roll an operator's
                        // checkpoint record back an epoch.
                        match latest.get(&op) {
                            Some(old) if s.ckpt_epoch < old.ckpt_epoch => {}
                            _ => {
                                // Sub-epoch state-size samples feed the
                                // live §III-C profiler; the plane stamps
                                // them onto its own clock at receipt.
                                if let Some(pl) = plane.as_mut() {
                                    pl.ingest(op, s.state_bytes);
                                }
                                latest.insert(op, s);
                            }
                        }
                    }
                }
            }
            Event::GateTelemetry {
                generation: g,
                samples,
            } => {
                if g == generation && deployed {
                    for (op, s) in samples {
                        latest_gate.insert(op, s);
                    }
                }
            }
            Event::CkptAck {
                generation: g,
                epoch,
                op,
            } => {
                if g == generation && deployed && outstanding == Some(epoch) {
                    acked.insert(op);
                    if acked.len() >= n_ops_total {
                        // Epoch durable everywhere: open the barrier
                        // and cut one ledger record per operator. The
                        // workers send a fresh sample ahead of each
                        // `CkptDone` on the same connection, so by now
                        // `latest` holds every operator's epoch-`epoch`
                        // checkpoint phases.
                        let barrier_us = outstanding_since.elapsed().as_micros() as u64;
                        if let Some(l) = ledger.as_mut() {
                            let close = BarrierClose {
                                generation,
                                epoch,
                                barrier_us,
                                plan: &plan,
                            };
                            write_ledger_epoch(
                                l,
                                &close,
                                &latest,
                                &latest_gate,
                                &op_worker,
                                &workers,
                            );
                        }
                        // First barrier close after a restore marks the
                        // cluster caught up: read the recovery clock
                        // into the decision ledger. Written with or
                        // without the telemetry plane, so fixed-period
                        // baselines report measured recovery too.
                        if let Some(t0) = recovery_t0.take() {
                            let period_us = plane
                                .as_ref()
                                .map_or(cfg.ckpt_interval, TelemetryPlane::period)
                                .as_micros() as u64;
                            let rec = DecisionRecord {
                                generation,
                                epoch: epoch.0,
                                reason: "recovery".to_string(),
                                state_bytes: latest.values().map(|s| s.state_bytes).sum(),
                                ckpt_bytes: 0,
                                barrier_us,
                                est_recovery_us: 0,
                                budget_us: cfg.recovery_budget.map_or(0, |b| b.as_micros() as u64),
                                period_us_before: period_us,
                                period_us_after: period_us,
                                recovery_us: t0.elapsed().as_micros() as u64,
                            };
                            if let Some(l) = ledger.as_mut() {
                                let _ = l.append_decision(&rec);
                            }
                        }
                        if let Some(pl) = plane.as_mut() {
                            let sig = EpochSignals {
                                generation,
                                epoch: epoch.0,
                                state_bytes: latest.values().map(|s| s.state_bytes).sum(),
                                ckpt_bytes: latest.values().map(|s| s.ckpt_bytes).sum(),
                                barrier_us,
                                persist_us: latest
                                    .values()
                                    .map(|s| s.persist_us)
                                    .max()
                                    .unwrap_or(0),
                            };
                            if let Some(d) = pl.on_barrier_close(&sig) {
                                if let Some(l) = ledger.as_mut() {
                                    let _ = l.append_decision(&d);
                                }
                            }
                        }
                        outstanding = None;
                    }
                }
            }
            Event::WorkerFault {
                generation: g,
                name,
                detail,
            } => {
                if g == generation && deployed {
                    // The worker process is healthy — its generation is
                    // not. Roll back and redeploy, same as a crash but
                    // without waiting out a heartbeat timeout.
                    println!("ms-controller: worker {name} reported fault: {detail}");
                    report.recoveries += 1;
                    deployed = false;
                    recovering_since = Some(Instant::now());
                    recovery_t0 = Some(Instant::now());
                    report.sink_states.clear();
                    outstanding = None;
                    acked.clear();
                    for w in workers.iter_mut().filter(|w| w.alive) {
                        let _ = send_msg(&mut w.writer, &WireMsg::Rollback);
                    }
                    println!("ms-controller: rolling back generation {generation}");
                }
            }
            Event::SinkDone {
                generation: g,
                op,
                snapshot,
            } => {
                if g == generation && deployed {
                    println!("ms-controller: sink {op} finished (generation {g})");
                    report.sink_states.insert(op, snapshot);
                    if report.sink_states.len() == n_sinks {
                        break Ok(());
                    }
                }
            }
            Event::Tick => {
                let now = Instant::now();
                if deployed {
                    // Failure detection: heartbeat silence on any
                    // operator-hosting worker.
                    let failed: Vec<String> = workers
                        .iter()
                        .filter(|w| w.alive && now.duration_since(w.last_beat) > cfg.hb_timeout)
                        .map(|w| w.name.clone())
                        .collect();
                    let lost_ops = workers
                        .iter()
                        .any(|w| failed.contains(&w.name) && w.has_ops);
                    for w in workers.iter_mut() {
                        if failed.contains(&w.name) {
                            println!(
                                "ms-controller: worker {} failed (heartbeat timeout)",
                                w.name
                            );
                            w.alive = false;
                            let _ = w.writer.shutdown(Shutdown::Both);
                        }
                    }
                    let stalled_barrier = !lost_ops
                        && outstanding.is_some()
                        && cfg
                            .barrier_stall
                            .is_some_and(|limit| now.duration_since(outstanding_since) > limit);
                    if lost_ops || stalled_barrier {
                        if stalled_barrier {
                            println!(
                                "ms-controller: epoch {} barrier stalled {:?} (partition?)",
                                outstanding.expect("stalled_barrier implies outstanding"),
                                now.duration_since(outstanding_since)
                            );
                        }
                        report.recoveries += 1;
                        deployed = false;
                        recovering_since = Some(now);
                        recovery_t0 = Some(now);
                        report.sink_states.clear();
                        outstanding = None;
                        acked.clear();
                        for w in workers.iter_mut().filter(|w| w.alive) {
                            let _ = send_msg(&mut w.writer, &WireMsg::Rollback);
                        }
                        println!("ms-controller: rolling back generation {generation}");
                    } else if outstanding.is_none() {
                        // The barrier is open (previous epoch durable
                        // on every HAU): ask the telemetry plane — or,
                        // without one, the fixed timer — whether the
                        // next token should enter now.
                        let cause = match plane.as_mut() {
                            Some(pl) => pl.poll(now.duration_since(last_ckpt)),
                            None => (now.duration_since(last_ckpt) >= cfg.ckpt_interval)
                                .then_some(CheckpointCause::Timer),
                        };
                        if let Some(cause) = cause {
                            next_epoch = next_epoch.next();
                            report.checkpoints += 1;
                            last_ckpt = now;
                            outstanding = Some(next_epoch);
                            outstanding_since = now;
                            acked.clear();
                            if let (Some(pl), Some(l)) = (plane.as_ref(), ledger.as_mut()) {
                                let rec = pl.initiation_record(generation, next_epoch.0, cause);
                                let _ = l.append_decision(&rec);
                            }
                            for w in workers.iter_mut().filter(|w| w.alive) {
                                let _ = send_msg(&mut w.writer, &WireMsg::Checkpoint(next_epoch));
                            }
                        }
                    }
                }
                let live = workers.iter().filter(|w| w.alive).count();
                if !deployed {
                    let ready = match recovering_since {
                        // Initial deployment: wait for the configured
                        // cluster size.
                        None => live >= cfg.workers,
                        // Redeployment: prefer a full bench (a spare
                        // may be mid-registration), but continue with
                        // the survivors after `respawn_wait`.
                        Some(t0) => {
                            live >= cfg.workers
                                || (now.duration_since(t0) > cfg.respawn_wait && live >= 1)
                        }
                    };
                    if ready {
                        let restore = match recovering_since.take() {
                            Some(_) => {
                                let e = store.latest_complete();
                                report.restore_epochs.push(e);
                                e
                            }
                            // A resumed controller's "first" deployment
                            // is a recovery of the interrupted run.
                            None if resumed => {
                                let e = store.latest_complete();
                                report.recoveries += 1;
                                report.restore_epochs.push(e);
                                e
                            }
                            None => None,
                        };
                        generation += 1;
                        let placement = deploy(&qn, &plan, &cfg, generation, restore, &mut workers);
                        op_worker = placement.into_iter().map(|p| (p.op, p.worker)).collect();
                        latest.clear();
                        latest_gate.clear();
                        deployed = true;
                        last_ckpt = now;
                        outstanding = None;
                        acked.clear();
                    }
                }
            }
        }
    };

    // Shut the cluster down whatever happened; closing the writers
    // also unblocks any reader thread still parked on a live socket.
    for w in workers.iter_mut().filter(|w| w.alive) {
        let _ = send_msg(&mut w.writer, &WireMsg::Shutdown);
    }
    for w in workers.iter_mut() {
        let _ = w.writer.shutdown(Shutdown::Both);
    }
    stop.store(true, Ordering::SeqCst);
    let _ = ticker.join();
    let _ = accept.join();

    outcome.map(|()| {
        if let Some(path) = &cfg.result_file {
            if let Err(e) = std::fs::File::create(path)
                .and_then(|mut f| f.write_all(report.render().as_bytes()))
            {
                eprintln!("ms-controller: result file {path:?} not written: {e}");
            }
        }
        report
    })
}

/// One ledger record per operator for a just-closed epoch barrier.
/// Flow counters and checkpoint phases come from the operator's
/// freshest telemetry sample; backpressure gauges come from the
/// hosting worker's latest heartbeat; the barrier latency (token
/// broadcast → last `CkptDone`) is shared by every record of the
/// epoch. Append failures are reported but never fail the run.
struct BarrierClose<'a> {
    generation: u64,
    epoch: EpochId,
    barrier_us: u64,
    plan: &'a ShardPlan,
}

fn write_ledger_epoch(
    ledger: &mut LedgerWriter,
    close: &BarrierClose<'_>,
    latest: &HashMap<OperatorId, OperatorSample>,
    latest_gate: &HashMap<OperatorId, GateSample>,
    op_worker: &HashMap<OperatorId, String>,
    workers: &[Worker],
) {
    let mut ops: Vec<&OperatorId> = latest.keys().collect();
    ops.sort();
    for &op in ops {
        let s = &latest[&op];
        let gauges = op_worker
            .get(&op)
            .and_then(|name| workers.iter().find(|w| &w.name == name))
            .map(|w| w.gauges)
            .unwrap_or_default();
        let gate = latest_gate.get(&op).copied().unwrap_or_default();
        let record = LedgerRecord {
            generation: close.generation,
            epoch: close.epoch.0,
            op: op.0,
            logical: close.plan.logical_of(op).map_or(op.0, |l| l.0),
            state_bytes: s.state_bytes,
            ckpt_bytes: s.ckpt_bytes,
            delta: s.ckpt_is_delta,
            align_wait_us: s.align_wait_us,
            serialize_us: s.serialize_us,
            persist_us: s.persist_us,
            tuples_in: s.tuples_in,
            tuples_out: s.tuples_out,
            bytes_out: s.bytes_out,
            queued_tuples: gauges.queued_tuples,
            open_windows: gauges.open_windows,
            window_tuples: gauges.window_tuples,
            gate_accepted: gate.accepted_batches,
            gate_shed: gate.shed_batches,
            gate_wal_bytes: gate.wal_bytes,
            gate_ack_p50_us: gate.ack_p50_us,
            gate_ack_p99_us: gate.ack_p99_us,
            barrier_us: close.barrier_us,
        };
        if let Err(e) = ledger.append(&record) {
            eprintln!("ms-controller: ledger append failed: {e}");
            return;
        }
    }
}

/// Broadcasts a generation: sorted live workers, physical operators
/// placed by [`spread_shards`] (round-robin over the plan's flattened
/// groups — the classic `op i → workers[i mod n]` for unsharded
/// deployments, and consecutive shards on distinct workers when a
/// group fits the cluster), returning the placement for the caller's
/// operator→worker bookkeeping.
fn deploy(
    qn: &QueryNetwork,
    plan: &ShardPlan,
    cfg: &ControllerConfig,
    generation: u64,
    restore_epoch: Option<EpochId>,
    workers: &mut [Worker],
) -> Vec<OpPlacement> {
    let mut live: Vec<&mut Worker> = workers.iter_mut().filter(|w| w.alive).collect();
    live.sort_by(|a, b| a.name.cmp(&b.name));
    let spread = spread_shards(&plan.groups, live.len()).expect("deploy gated on live >= 1");
    let mut placement: Vec<OpPlacement> = spread
        .into_iter()
        .map(|(op, i)| {
            let w = &live[i];
            OpPlacement {
                op,
                worker: w.name.clone(),
                data_addr: w.data_addr.clone(),
            }
        })
        .collect();
    debug_assert_eq!(placement.len(), qn.len());
    // Gateway mode: every source becomes an ingestion gate, placed by
    // the reversed round-robin so gates and sinks land on different
    // workers whenever the cluster has more than one.
    let gates: Vec<GateSpec> = match &cfg.gate {
        Some(gc) => qn
            .sources()
            .into_iter()
            .map(|op| GateSpec { op, cfg: *gc })
            .collect(),
        None => Vec::new(),
    };
    if !gates.is_empty() {
        let gate_ops: Vec<OperatorId> = gates.iter().map(|g| g.op).collect();
        let placed = place_gates(&gate_ops, live.len()).expect("deploy gated on live >= 1");
        for (op, i) in placed {
            if let Some(p) = placement.iter_mut().find(|p| p.op == op) {
                p.worker = live[i].name.clone();
                p.data_addr = live[i].data_addr.clone();
            }
        }
    }
    for w in live.iter_mut() {
        w.has_ops = placement.iter().any(|p| p.worker == w.name);
    }
    let assignment = Assignment {
        generation,
        restore_epoch,
        n_ops: qn.len() as u32,
        edges: qn.edges().collect(),
        placement,
        source_limit: cfg.source_limit,
        source_delay_us: cfg.source_delay_us,
        keyed_state: cfg.keyed_state,
        sawtooth_window: cfg.sawtooth_window,
        groups: plan.groups.clone(),
        gates,
    };
    println!(
        "ms-controller: deploying generation {generation} to {} workers (restore: {})",
        live.len(),
        match restore_epoch {
            Some(e) => e.to_string(),
            None => "fresh".into(),
        }
    );
    for w in live {
        let _ = send_msg(&mut w.writer, &WireMsg::Assign(assignment.clone()));
    }
    assignment.placement
}
