//! SignalGuru (§II-B2, Fig. 4).
//!
//! SignalGuru predicts traffic-light transition times from
//! windshield-mounted iPhone cameras so drivers can cruise through
//! green lights. The DSPS version aggregates frames from many phones
//! across ten intersections. The motion-filter (`M`) operators
//! preserve all frames from a phone while its vehicle sits near an
//! intersection (10–40 s), making them the dynamic HAUs whose state
//! swings between ~200 MB and ~2 GB (Fig. 5c).
//!
//! Query network (55 operators): `S0..S3` phone aggregation sources →
//! `D0..D3` dispatchers → `C0..C11` color filters → `A0..A11` shape
//! filters → `M0..M11` motion filters → `V0..V3` voting → `G0..G3`
//! groups → `P0,P1` SVM predictors → `K`.

use ms_core::codec::{SnapshotReader, SnapshotWriter};
use ms_core::graph::QueryNetwork;
use ms_core::ids::{OperatorId, PortId};
use ms_core::operator::{Operator, OperatorContext, OperatorSnapshot};
use ms_core::time::SimDuration;
use ms_core::tuple::Tuple;
use ms_core::value::Value;
use ms_runtime::AppSpec;
use ms_sim::DetRng;

use crate::ops::SinkOp;
use crate::pool::Pool;
use crate::svm::LinearSvm;
use crate::vision::{color_filter, detect_phase, motion_score, shape_filter, synth_frame, Scene};

/// SignalGuru parameters.
#[derive(Clone, Copy, Debug)]
pub struct SignalGuruConfig {
    /// Frame attempt interval per phone-aggregation source.
    pub source_tick: SimDuration,
    /// Logical bytes per frame.
    pub frame_bytes: u64,
    /// Traffic-light cycle length (seconds).
    pub light_cycle_secs: u64,
    /// Signal offset between adjacent intersections, seconds (a
    /// coordinated "green wave": onsets nearly coincide, which is what
    /// lets the motion-filter pools empty together).
    pub offset_secs: u64,
}

impl Default for SignalGuruConfig {
    fn default() -> Self {
        SignalGuruConfig {
            source_tick: SimDuration::from_millis(40),
            frame_bytes: 1_200_000,
            light_cycle_secs: 30,
            offset_secs: 2,
        }
    }
}

const N_SOURCES: usize = 4;
const N_FILTER_CHAINS: usize = 12;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Source(u32),
    Dispatcher,
    Color,
    Shape,
    Motion(u32),
    Voting,
    Group,
    Predict,
    Sink,
}

/// The SignalGuru application.
pub struct SignalGuru {
    cfg: SignalGuruConfig,
    qn: QueryNetwork,
    roles: Vec<Role>,
}

impl SignalGuru {
    /// Builds SignalGuru with the given configuration.
    pub fn new(cfg: SignalGuruConfig) -> SignalGuru {
        let mut qn = QueryNetwork::new();
        let mut roles = Vec::new();
        let mut add = |qn: &mut QueryNetwork, name: String, role: Role| -> OperatorId {
            roles.push(role);
            qn.add_operator(name)
        };

        let sources: Vec<_> = (0..N_SOURCES)
            .map(|i| add(&mut qn, format!("S{i}"), Role::Source(i as u32)))
            .collect();
        let disps: Vec<_> = (0..N_SOURCES)
            .map(|i| add(&mut qn, format!("D{i}"), Role::Dispatcher))
            .collect();
        let colors: Vec<_> = (0..N_FILTER_CHAINS)
            .map(|i| add(&mut qn, format!("C{i}"), Role::Color))
            .collect();
        let shapes: Vec<_> = (0..N_FILTER_CHAINS)
            .map(|i| add(&mut qn, format!("A{i}"), Role::Shape))
            .collect();
        let motions: Vec<_> = (0..N_FILTER_CHAINS)
            .map(|i| add(&mut qn, format!("M{i}"), Role::Motion(i as u32)))
            .collect();
        let votes: Vec<_> = (0..4)
            .map(|i| add(&mut qn, format!("V{i}"), Role::Voting))
            .collect();
        let groups: Vec<_> = (0..4)
            .map(|i| add(&mut qn, format!("G{i}"), Role::Group))
            .collect();
        let preds: Vec<_> = (0..2)
            .map(|i| add(&mut qn, format!("P{i}"), Role::Predict))
            .collect();
        let sink = add(&mut qn, "K".to_string(), Role::Sink);

        // Three filter chains per source/dispatcher.
        for i in 0..N_SOURCES {
            qn.connect(sources[i], disps[i]).unwrap();
            for k in 0..3 {
                let j = i * 3 + k;
                qn.connect(disps[i], colors[j]).unwrap();
                qn.connect(colors[j], shapes[j]).unwrap();
                qn.connect(shapes[j], motions[j]).unwrap();
                qn.connect(motions[j], votes[i]).unwrap();
            }
            qn.connect(votes[i], groups[i]).unwrap();
            qn.connect(groups[i], preds[i / 2]).unwrap();
        }
        for &p in &preds {
            qn.connect(p, sink).unwrap();
        }
        debug_assert_eq!(qn.len(), 55);
        SignalGuru { cfg, qn, roles }
    }

    /// Default-configured SignalGuru.
    pub fn default_app() -> SignalGuru {
        SignalGuru::new(SignalGuruConfig::default())
    }
}

impl AppSpec for SignalGuru {
    fn name(&self) -> &str {
        "SignalGuru"
    }

    fn query_network(&self) -> QueryNetwork {
        self.qn.clone()
    }

    fn build_operator(&self, op: OperatorId, _rng: &mut DetRng) -> Box<dyn Operator> {
        match self.roles[op.index()] {
            Role::Source(i) => Box::new(PhoneSourceOp {
                intersection: i,
                emitted: 0,
                tick: self.cfg.source_tick,
                frame_bytes: self.cfg.frame_bytes,
                cycle: self.cfg.light_cycle_secs as f64,
                offset: (u64::from(i) * self.cfg.offset_secs) as f64,
            }),
            Role::Dispatcher => Box::new(DispatcherOp::default()),
            Role::Color => Box::new(ColorOp::default()),
            Role::Shape => Box::new(ShapeOp::default()),
            Role::Motion(j) => Box::new(MotionOp {
                cycle_secs: self.cfg.light_cycle_secs as f64,
                offset_secs: (u64::from(j) / 3 * self.cfg.offset_secs) as f64,
                ..MotionOp::default()
            }),
            Role::Voting => Box::new(VotingOp::default()),
            Role::Group => Box::new(GroupOp::default()),
            Role::Predict => Box::new(PredictOp::new()),
            Role::Sink => Box::new(SinkOp::default()),
        }
    }
}

// ---------------- operators ----------------

/// Phone-aggregation source: frames from the phones currently at one
/// intersection; the light phase follows a square wave.
struct PhoneSourceOp {
    intersection: u32,
    emitted: u64,
    tick: SimDuration,
    frame_bytes: u64,
    cycle: f64,
    offset: f64,
}

impl Operator for PhoneSourceOp {
    fn kind(&self) -> &'static str {
        "PhoneSource"
    }

    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _ctx: &mut dyn OperatorContext) {}

    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        self.emitted += 1;
        let t = ctx.now().as_secs_f64() + f64::from(self.intersection) * self.offset;
        let green = (t % self.cycle) < self.cycle / 2.0;
        let mut rng = DetRng::new(ctx.rand_u64());
        let motion = 0.1 + 0.3 * rng.f64();
        let frame = synth_frame(
            &mut rng,
            self.frame_bytes,
            Scene {
                people: 0.0,
                light_phase: if green { 1.0 } else { 0.0 },
                motion,
            },
        );
        ctx.emit_all(vec![frame, Value::Int(i64::from(self.intersection))]);
    }

    fn timer_interval(&self) -> Option<SimDuration> {
        Some(self.tick)
    }

    fn timer_cost(&self) -> SimDuration {
        SimDuration::from_millis(3)
    }

    fn state_size(&self) -> u64 {
        16
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.emitted);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 16,
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        self.emitted = SnapshotReader::new(&s.data).get_u64()?;
        Ok(())
    }
}

/// Dispatcher: round-robins frames over its three filter chains.
#[derive(Default)]
struct DispatcherOp {
    next: u64,
}

impl Operator for DispatcherOp {
    fn kind(&self) -> &'static str {
        "Dispatcher"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        let chain = (self.next % 3) as u32;
        self.next += 1;
        ctx.emit_fields(PortId(chain), t.fields);
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(15)
    }

    fn state_size(&self) -> u64 {
        8
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.next);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 8,
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        self.next = SnapshotReader::new(&s.data).get_u64()?;
        Ok(())
    }
}

macro_rules! stateless_filter {
    ($(#[$meta:meta])* $name:ident, $kind:literal, $service_ms:literal, $keep:expr) => {
        $(#[$meta])*
        #[derive(Default)]
        struct $name {
            processed: u64,
            dropped: u64,
        }

        impl Operator for $name {
            fn kind(&self) -> &'static str {
                $kind
            }

            fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
                self.processed += 1;
                let keep: fn(&[f32]) -> bool = $keep;
                let passes = t
                    .fields
                    .first()
                    .and_then(Value::as_blob)
                    .map(|(_, d)| keep(d))
                    .unwrap_or(false);
                if passes {
                    ctx.emit_all_fields(t.fields);
                } else {
                    self.dropped += 1;
                }
            }

            fn service_time(&self, _t: &Tuple) -> SimDuration {
                SimDuration::from_millis($service_ms)
            }

            fn state_size(&self) -> u64 {
                16
            }

            fn snapshot(&self) -> OperatorSnapshot {
                let mut w = SnapshotWriter::new();
                w.put_u64(self.processed).put_u64(self.dropped);
                OperatorSnapshot {
                    data: w.finish(),
                    logical_bytes: 16,
                }
            }

            fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
                let mut r = SnapshotReader::new(&s.data);
                self.processed = r.get_u64()?;
                self.dropped = r.get_u64()?;
                Ok(())
            }
        }
    };
}

stateless_filter!(
    /// Color filter: discards frames with no lit-signal colors.
    ColorOp,
    "ColorFilter",
    80,
    color_filter
);
stateless_filter!(
    /// Shape filter: discards frames whose bright region is not
    /// circular enough.
    ShapeOp,
    "ShapeFilter",
    100,
    shape_filter
);

/// Motion filter: preserves all frames from the vehicles waiting at
/// its intersection; emits phase detections; drops the stash when the
/// light turns green and the queue departs together. SignalGuru's
/// dynamic HAU (Fig. 5c) — the synchronized departures are what carve
/// the deep state-size minima application-aware checkpointing hunts.
#[derive(Default)]
struct MotionOp {
    pool: Pool,
    cycle_secs: f64,
    offset_secs: f64,
    last_green: bool,
    departures: u64,
}

/// Motion ops re-evaluate the light phase at this cadence.
const MOTION_TICK_SECS: f64 = 5.0;

impl Operator for MotionOp {
    fn kind(&self) -> &'static str {
        "MotionFilter"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        let Some(Value::Blob {
            logical_bytes,
            digest,
        }) = t.fields.first()
        else {
            return;
        };
        let motion = self
            .pool
            .items()
            .last()
            .map(|prev| {
                let prev_f: Vec<f32> = prev.features.iter().map(|&f| f as f32).collect();
                motion_score(&prev_f, digest)
            })
            .unwrap_or(0.5);
        let (phase, confidence) = detect_phase(digest, motion);
        self.pool.push(
            digest.iter().map(|&f| f64::from(f)).collect(),
            *logical_bytes,
        );
        let intersection = t.fields.get(1).and_then(Value::as_int).unwrap_or(0);
        ctx.emit_all(vec![
            Value::Blob {
                logical_bytes: 1_000,
                digest: vec![phase as f32, confidence as f32],
            },
            Value::Int(intersection),
        ]);
    }

    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        if self.cycle_secs <= 0.0 {
            return;
        }
        let t = ctx.now().as_secs_f64() + self.offset_secs;
        let green = (t % self.cycle_secs) < self.cycle_secs / 2.0;
        if green && !self.last_green {
            // Green onset: the waiting vehicles depart together; their
            // preserved frames are stale ("until the vehicle carrying
            // the iPhone device leaves the intersection").
            self.departures += 1;
            self.pool.retain_recent(2);
        }
        self.last_green = green;
    }

    fn timer_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(MOTION_TICK_SECS as u64))
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(180)
    }

    fn timer_cost(&self) -> SimDuration {
        SimDuration::from_millis(1)
    }

    fn state_size(&self) -> u64 {
        64 + self.pool.sampled_size()
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.departures);
        w.put_f64(self.cycle_secs).put_f64(self.offset_secs);
        w.put_u64(u64::from(self.last_green));
        self.pool.encode(&mut w);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: self.state_size(),
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.departures = r.get_u64()?;
        self.cycle_secs = r.get_f64()?;
        self.offset_secs = r.get_f64()?;
        self.last_green = r.get_u64()? != 0;
        self.pool = Pool::decode(&mut r)?;
        Ok(())
    }
}

/// Voting: majority vote over a window of phase detections ("selection
/// thru voting").
#[derive(Default)]
struct VotingOp {
    green_votes: u64,
    red_votes: u64,
    window: u64,
}

const VOTE_WINDOW: u64 = 5;

impl Operator for VotingOp {
    fn kind(&self) -> &'static str {
        "Voting"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        let Some(Value::Blob { digest, .. }) = t.fields.first() else {
            return;
        };
        let phase = digest.first().copied().unwrap_or(0.5);
        let confidence = digest.get(1).copied().unwrap_or(0.0);
        if confidence > 0.3 {
            if phase > 0.5 {
                self.green_votes += 1;
            } else {
                self.red_votes += 1;
            }
        }
        self.window += 1;
        if self.window >= VOTE_WINDOW {
            let verdict = if self.green_votes >= self.red_votes {
                1.0
            } else {
                0.0
            };
            let strength = (self.green_votes.max(self.red_votes)) as f32
                / (self.green_votes + self.red_votes).max(1) as f32;
            self.window = 0;
            self.green_votes = 0;
            self.red_votes = 0;
            let intersection = t.fields.get(1).and_then(Value::as_int).unwrap_or(0);
            ctx.emit_all(vec![
                Value::Blob {
                    logical_bytes: 1_000,
                    digest: vec![verdict, strength],
                },
                Value::Int(intersection),
            ]);
        }
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(5)
    }

    fn state_size(&self) -> u64 {
        24
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.green_votes)
            .put_u64(self.red_votes)
            .put_u64(self.window);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 24,
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.green_votes = r.get_u64()?;
        self.red_votes = r.get_u64()?;
        self.window = r.get_u64()?;
        Ok(())
    }
}

/// Group: tracks phase-transition timestamps per intersection and
/// emits transition-interval features.
#[derive(Default)]
struct GroupOp {
    last_phase: f64,
    last_change_at: f64,
    emitted: u64,
}

impl Operator for GroupOp {
    fn kind(&self) -> &'static str {
        "Group"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        let Some(Value::Blob { digest, .. }) = t.fields.first() else {
            return;
        };
        let phase = f64::from(digest.first().copied().unwrap_or(0.5));
        let now = ctx.now().as_secs_f64();
        if (phase - self.last_phase).abs() > 0.5 {
            let interval = now - self.last_change_at;
            self.last_change_at = now;
            self.last_phase = phase;
            self.emitted += 1;
            let intersection = t.fields.get(1).and_then(Value::as_int).unwrap_or(0);
            ctx.emit_all(vec![
                Value::Blob {
                    logical_bytes: 1_000,
                    digest: vec![interval as f32, phase as f32],
                },
                Value::Int(intersection),
            ]);
        }
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(5)
    }

    fn state_size(&self) -> u64 {
        24
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_f64(self.last_phase)
            .put_f64(self.last_change_at)
            .put_u64(self.emitted);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 24,
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.last_phase = r.get_f64()?;
        self.last_change_at = r.get_f64()?;
        self.emitted = r.get_u64()?;
        Ok(())
    }
}

/// SVM predictor: learns whether the next transition comes sooner or
/// later than the running median and forecasts the transition time.
struct PredictOp {
    model: LinearSvm,
    samples: Vec<(Vec<f64>, i8)>,
    median_interval: f64,
    predictions: u64,
}

impl PredictOp {
    fn new() -> PredictOp {
        PredictOp {
            model: LinearSvm::new(2),
            samples: Vec::new(),
            median_interval: 30.0,
            predictions: 0,
        }
    }
}

const SVM_RETRAIN: usize = 20;

impl Operator for PredictOp {
    fn kind(&self) -> &'static str {
        "SvmPredict"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        let Some(Value::Blob { digest, .. }) = t.fields.first() else {
            return;
        };
        let interval = f64::from(digest.first().copied().unwrap_or(30.0));
        let phase = f64::from(digest.get(1).copied().unwrap_or(0.0));
        self.median_interval = 0.95 * self.median_interval + 0.05 * interval;
        let label: i8 = if interval > self.median_interval {
            1
        } else {
            -1
        };
        self.samples.push((vec![interval, phase], label));
        if self.samples.len() >= SVM_RETRAIN {
            let (xs, ys): (Vec<_>, Vec<_>) = self.samples.drain(..).unzip();
            let mut rng = DetRng::new(ctx.rand_u64());
            self.model.train(&xs, &ys, 3, 0.05, &mut rng);
        }
        let longer = self.model.predict(&[interval, phase]);
        let forecast = self.median_interval * if longer > 0 { 1.2 } else { 0.8 };
        self.predictions += 1;
        ctx.emit_all(vec![Value::Blob {
            logical_bytes: 500,
            digest: vec![forecast as f32],
        }]);
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(20)
    }

    fn state_size(&self) -> u64 {
        (self.model.w.len() as u64 + 1) * 8 + self.samples.len() as u64 * 24 + 16
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let encoded = 45
            + 9 * self.model.w.len()
            + self
                .samples
                .iter()
                .map(|(x, _)| 18 + 9 * x.len())
                .sum::<usize>();
        let mut w = SnapshotWriter::with_capacity(encoded);
        w.put_u64(self.predictions).put_f64(self.median_interval);
        w.put_f64(self.model.b);
        w.put_u64(self.model.w.len() as u64);
        for v in &self.model.w {
            w.put_f64(*v);
        }
        w.put_u64(self.samples.len() as u64);
        for (x, y) in &self.samples {
            w.put_i64(i64::from(*y));
            w.put_u64(x.len() as u64);
            for v in x {
                w.put_f64(*v);
            }
        }
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: self.state_size(),
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.predictions = r.get_u64()?;
        self.median_interval = r.get_f64()?;
        self.model.b = r.get_f64()?;
        let n = r.get_u64()? as usize;
        self.model.w = (0..n)
            .map(|_| r.get_f64())
            .collect::<ms_core::Result<_>>()?;
        let k = r.get_u64()? as usize;
        self.samples.clear();
        for _ in 0..k {
            let y = r.get_i64()? as i8;
            let d = r.get_u64()? as usize;
            let x = (0..d)
                .map(|_| r.get_f64())
                .collect::<ms_core::Result<_>>()?;
            self.samples.push((x, y));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testctx::TestCtx;
    use ms_core::graph::{HauAssignment, HauGraph};
    use ms_core::time::SimTime;

    #[test]
    fn network_matches_paper_shape() {
        let app = SignalGuru::default_app();
        let qn = app.query_network();
        assert_eq!(qn.len(), 55);
        qn.validate().unwrap();
        assert_eq!(qn.sources().len(), N_SOURCES);
        assert_eq!(qn.sinks().len(), 1);
        let graph = HauGraph::derive(&qn, &HauAssignment::one_per_operator(&qn)).unwrap();
        assert_eq!(graph.len(), 55);
        // Each voting op fans in from three motion filters.
        let votes: Vec<OperatorId> = qn
            .operators()
            .filter(|&o| qn.meta(o).name.starts_with('V'))
            .collect();
        for v in votes {
            assert_eq!(qn.upstream(v).len(), 3);
        }
    }

    fn frame_tuple(seq: u64, green: bool, bytes: u64) -> Tuple {
        let mut rng = DetRng::new(seq + 100);
        let f = synth_frame(
            &mut rng,
            bytes,
            Scene {
                people: 0.0,
                light_phase: if green { 1.0 } else { 0.0 },
                motion: 0.1,
            },
        );
        Tuple::new(OperatorId(0), seq, SimTime::ZERO, vec![f, Value::Int(2)])
    }

    #[test]
    fn motion_filter_clears_at_green_onset() {
        let mut m = MotionOp {
            cycle_secs: 40.0,
            offset_secs: 0.0,
            ..MotionOp::default()
        };
        let mut ctx = TestCtx::new(1);
        for seq in 0..30 {
            m.on_tuple(PortId(0), frame_tuple(seq, true, 2_000_000), &mut ctx);
        }
        assert_eq!(m.pool.len(), 30);
        assert!(m.state_size() > 55_000_000, "state {}", m.state_size());
        assert_eq!(ctx.emitted.len(), 30, "one detection per frame");
        // Red phase tick (t = 25s into a 40 s cycle): nothing drops.
        ctx.now = ms_core::time::SimTime::from_secs(25);
        m.on_timer(&mut ctx);
        assert_eq!(m.pool.len(), 30);
        // Green onset (t = 41s): the queue departs together.
        ctx.now = ms_core::time::SimTime::from_secs(41);
        m.on_timer(&mut ctx);
        assert_eq!(m.pool.len(), 2);
        assert!(m.state_size() < 5_000_000);
        assert_eq!(m.departures, 1);
        // Staying green does not clear again.
        ctx.now = ms_core::time::SimTime::from_secs(46);
        m.on_timer(&mut ctx);
        assert_eq!(m.departures, 1);
    }

    #[test]
    fn voting_emits_majority() {
        let mut v = VotingOp::default();
        let mut ctx = TestCtx::new(1);
        for seq in 0..VOTE_WINDOW {
            let t = Tuple::new(
                OperatorId(0),
                seq,
                SimTime::ZERO,
                vec![
                    Value::Blob {
                        logical_bytes: 10,
                        digest: vec![if seq < 4 { 1.0 } else { 0.0 }, 0.9],
                    },
                    Value::Int(1),
                ],
            );
            v.on_tuple(PortId(0), t, &mut ctx);
        }
        assert_eq!(ctx.emitted.len(), 1);
        let d = ctx.emitted[0].1[0].as_blob().unwrap().1;
        assert_eq!(d[0], 1.0, "green majority");
        assert!(d[1] >= 0.8);
    }

    #[test]
    fn predictor_learns_and_snapshots() {
        let mut p = PredictOp::new();
        let mut ctx = TestCtx::new(1);
        for seq in 0..50 {
            let t = Tuple::new(
                OperatorId(0),
                seq,
                SimTime::ZERO,
                vec![
                    Value::Blob {
                        logical_bytes: 10,
                        digest: vec![20.0 + (seq % 20) as f32, (seq % 2) as f32],
                    },
                    Value::Int(0),
                ],
            );
            p.on_tuple(PortId(0), t, &mut ctx);
        }
        assert_eq!(p.predictions, 50);
        assert!(p.model.w.iter().any(|&w| w != 0.0), "model trained");
        let snap = p.snapshot();
        let mut fresh = PredictOp::new();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.model, p.model);
        assert_eq!(fresh.median_interval, p.median_interval);
        assert_eq!(fresh.samples, p.samples);
    }

    #[test]
    fn motion_snapshot_roundtrip() {
        let mut m = MotionOp {
            cycle_secs: 40.0,
            offset_secs: 4.0,
            last_green: true,
            ..MotionOp::default()
        };
        let mut ctx = TestCtx::new(1);
        for seq in 0..4 {
            m.on_tuple(PortId(0), frame_tuple(seq, false, 1000), &mut ctx);
        }
        let snap = m.snapshot();
        assert_eq!(snap.logical_bytes, m.state_size());
        let mut fresh = MotionOp::default();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.pool, m.pool);
        assert_eq!(fresh.cycle_secs, 40.0);
        assert_eq!(fresh.offset_secs, 4.0);
        assert!(fresh.last_green);
    }
}
