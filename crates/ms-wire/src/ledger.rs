//! The controller's run ledger: one JSONL record per (epoch,
//! operator), written next to the generation's checkpoint directory.
//!
//! The ledger is the cluster's durable telemetry trail — the offline
//! counterpart of [`WireMsg::Telemetry`]. Every time an epoch's
//! barrier closes (the last `CkptDone` arrives), the controller cuts
//! one [`LedgerRecord`] per operator from the freshest meter samples:
//! state size (the paper's Fig. 5 trace, and the series the ROADMAP's
//! `+aa` profiler will consume), checkpoint bytes with delta-vs-full
//! kind, the three-phase checkpoint breakdown (align-wait / serialize
//! / persist, Fig. 14), the hosting worker's backpressure gauges, and
//! the token-broadcast→last-ack barrier latency.
//!
//! Records are hand-encoded JSON objects, one per line — flat,
//! numeric, append-only — so the file survives controller restarts
//! (recovery generations append to the same ledger) and any JSON tool
//! can consume it. [`read_ledger`] and [`summarize`] are the
//! programmatic consumers; the `ms_ledger` bin wraps them for the
//! command line.
//!
//! [`WireMsg::Telemetry`]: crate::WireMsg::Telemetry

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use ms_core::error::{Error, Result};
use ms_core::metrics::{Breakdown, DurationStats};
use ms_core::time::SimDuration;

/// File name of the run ledger inside the controller's store
/// directory, next to `ckpt/` and `log/`.
pub const LEDGER_FILE: &str = "ledger.jsonl";

/// One (epoch, operator) row of the run ledger.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LedgerRecord {
    /// Deployment generation the epoch completed in.
    pub generation: u64,
    /// The completed (barrier-closed) epoch.
    pub epoch: u64,
    /// The (physical) operator this row describes.
    pub op: u32,
    /// The logical operator the physical instance belongs to. Equal to
    /// `op` for unsharded deployments; shards of one keyed operator
    /// share a `logical` and differ in `op`.
    pub logical: u32,
    /// Logical state size at the operator's last snapshot.
    pub state_bytes: u64,
    /// Encoded bytes of the operator's epoch checkpoint.
    pub ckpt_bytes: u64,
    /// Whether that checkpoint was a delta rather than a full.
    pub delta: bool,
    /// Token-alignment wait of the cut (µs). Zero for sources.
    pub align_wait_us: u64,
    /// State-serialization time (µs).
    pub serialize_us: u64,
    /// Stable-store write time (µs).
    pub persist_us: u64,
    /// Tuples the operator has consumed since its generation started.
    pub tuples_in: u64,
    /// Tuples the operator has emitted.
    pub tuples_out: u64,
    /// Payload bytes the operator has emitted.
    pub bytes_out: u64,
    /// Hosting worker's queued-input gauge at the barrier.
    pub queued_tuples: u64,
    /// Hosting worker's open-alignment-window gauge at the barrier.
    pub open_windows: u64,
    /// Hosting worker's window-buffered-tuple gauge at the barrier.
    pub window_tuples: u64,
    /// Ingestion-gateway rows only (zero elsewhere): batches admitted
    /// and acked `Accepted` since the generation started.
    pub gate_accepted: u64,
    /// Gateway rows only: batches shed at admission (acked `Busy`).
    pub gate_shed: u64,
    /// Gateway rows only: bytes appended to the preservation log.
    pub gate_wal_bytes: u64,
    /// Gateway rows only: median admission-to-ack latency (µs).
    pub gate_ack_p50_us: u64,
    /// Gateway rows only: p99 admission-to-ack latency (µs).
    pub gate_ack_p99_us: u64,
    /// Token broadcast → last `CkptDone` for the epoch (µs). The same
    /// value repeats on every row of the epoch.
    pub barrier_us: u64,
}

impl LedgerRecord {
    /// Encodes the record as one flat JSON object (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"generation\":{},\"epoch\":{},\"op\":{},\"logical\":{},",
                "\"state_bytes\":{},\"ckpt_bytes\":{},\"delta\":{},",
                "\"align_wait_us\":{},\"serialize_us\":{},\"persist_us\":{},",
                "\"tuples_in\":{},\"tuples_out\":{},\"bytes_out\":{},",
                "\"queued_tuples\":{},\"open_windows\":{},\"window_tuples\":{},",
                "\"gate_accepted\":{},\"gate_shed\":{},\"gate_wal_bytes\":{},",
                "\"gate_ack_p50_us\":{},\"gate_ack_p99_us\":{},",
                "\"barrier_us\":{}}}"
            ),
            self.generation,
            self.epoch,
            self.op,
            self.logical,
            self.state_bytes,
            self.ckpt_bytes,
            self.delta,
            self.align_wait_us,
            self.serialize_us,
            self.persist_us,
            self.tuples_in,
            self.tuples_out,
            self.bytes_out,
            self.queued_tuples,
            self.open_windows,
            self.window_tuples,
            self.gate_accepted,
            self.gate_shed,
            self.gate_wal_bytes,
            self.gate_ack_p50_us,
            self.gate_ack_p99_us,
            self.barrier_us,
        )
    }

    /// Parses one JSON line. Every schema field must be present;
    /// unknown fields are ignored (forward compatibility).
    pub fn from_json(line: &str) -> Result<LedgerRecord> {
        let s = line.trim();
        if !(s.starts_with('{') && s.ends_with('}')) {
            return Err(Error::Storage(format!(
                "ledger line is not a JSON object: {s:?}"
            )));
        }
        let op = u32::try_from(json_u64(s, "op")?)
            .map_err(|_| Error::Storage("ledger operator id out of range".into()))?;
        Ok(LedgerRecord {
            generation: json_u64(s, "generation")?,
            epoch: json_u64(s, "epoch")?,
            op,
            // Pre-sharding ledgers have no `logical` column; every
            // operator was its own logical operator then.
            logical: if s.contains("\"logical\":") {
                u32::try_from(json_u64(s, "logical")?)
                    .map_err(|_| Error::Storage("ledger logical id out of range".into()))?
            } else {
                op
            },
            state_bytes: json_u64(s, "state_bytes")?,
            ckpt_bytes: json_u64(s, "ckpt_bytes")?,
            delta: json_bool(s, "delta")?,
            align_wait_us: json_u64(s, "align_wait_us")?,
            serialize_us: json_u64(s, "serialize_us")?,
            persist_us: json_u64(s, "persist_us")?,
            tuples_in: json_u64(s, "tuples_in")?,
            tuples_out: json_u64(s, "tuples_out")?,
            bytes_out: json_u64(s, "bytes_out")?,
            queued_tuples: json_u64(s, "queued_tuples")?,
            open_windows: json_u64(s, "open_windows")?,
            window_tuples: json_u64(s, "window_tuples")?,
            // Pre-gateway ledgers have no gate columns; every operator
            // was an engine HAU then.
            gate_accepted: json_u64_or_zero(s, "gate_accepted")?,
            gate_shed: json_u64_or_zero(s, "gate_shed")?,
            gate_wal_bytes: json_u64_or_zero(s, "gate_wal_bytes")?,
            gate_ack_p50_us: json_u64_or_zero(s, "gate_ack_p50_us")?,
            gate_ack_p99_us: json_u64_or_zero(s, "gate_ack_p99_us")?,
            barrier_us: json_u64(s, "barrier_us")?,
        })
    }

    /// The row's checkpoint phases as a labelled [`Breakdown`]
    /// (Fig. 14's shape).
    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::new();
        b.add("align_wait", SimDuration::from_micros(self.align_wait_us));
        b.add("serialize", SimDuration::from_micros(self.serialize_us));
        b.add("persist", SimDuration::from_micros(self.persist_us));
        b
    }
}

/// One cadence/recovery decision of the controller's telemetry plane,
/// written to the same `ledger.jsonl` as the per-(epoch, operator)
/// rows but tagged `"kind":"decision"` so the two record types share
/// one append-ordered durable stream. Epoch-row consumers
/// ([`read_ledger`]) skip decision lines; [`read_decisions`] reads
/// only them.
///
/// A decision line is written when the live application-aware plane
/// initiates a checkpoint (`reason` = `local_minimum` / `period_end`),
/// when the adaptive cadence layer moves the checkpoint period
/// (`widen` / `narrow` / `hold`), and when a recovery completes
/// (`recovery`, with the measured failure-to-barrier time in
/// `recovery_us`). Fields that don't apply to a given reason are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Deployment generation the decision was taken in.
    pub generation: u64,
    /// The epoch the decision concerns (the barrier it initiated, or
    /// the barrier whose signals it was computed from).
    pub epoch: u64,
    /// Reason code: `timer`, `local_minimum`, `period_end`, `widen`,
    /// `narrow`, `hold`, `recovery`.
    pub reason: String,
    /// Aggregate live state size input to the decision (bytes).
    pub state_bytes: u64,
    /// Checkpoint bytes of the epoch the decision was computed from.
    pub ckpt_bytes: u64,
    /// Barrier latency of that epoch (µs).
    pub barrier_us: u64,
    /// The cadence layer's estimated worst-case recovery time (µs):
    /// checkpoint restore plus the replay window.
    pub est_recovery_us: u64,
    /// The configured recovery-time budget (µs); zero when no budget.
    pub budget_us: u64,
    /// Checkpoint period in force before the decision (µs).
    pub period_us_before: u64,
    /// Checkpoint period in force after the decision (µs).
    pub period_us_after: u64,
    /// Measured failure-detection → first-post-restore-barrier time
    /// (µs); only on `recovery` rows.
    pub recovery_us: u64,
}

impl DecisionRecord {
    /// Encodes the record as one flat JSON object (no newline).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"kind\":\"decision\",\"generation\":{},\"epoch\":{},",
                "\"reason\":\"{}\",\"state_bytes\":{},\"ckpt_bytes\":{},",
                "\"barrier_us\":{},\"est_recovery_us\":{},\"budget_us\":{},",
                "\"period_us_before\":{},\"period_us_after\":{},",
                "\"recovery_us\":{}}}"
            ),
            self.generation,
            self.epoch,
            self.reason,
            self.state_bytes,
            self.ckpt_bytes,
            self.barrier_us,
            self.est_recovery_us,
            self.budget_us,
            self.period_us_before,
            self.period_us_after,
            self.recovery_us,
        )
    }

    /// Parses one decision JSON line (must carry the
    /// `"kind":"decision"` tag).
    pub fn from_json(line: &str) -> Result<DecisionRecord> {
        let s = line.trim();
        if !(s.starts_with('{') && s.ends_with('}')) {
            return Err(Error::Storage(format!(
                "decision line is not a JSON object: {s:?}"
            )));
        }
        if json_str(s, "kind")? != "decision" {
            return Err(Error::Storage("not a decision record".into()));
        }
        Ok(DecisionRecord {
            generation: json_u64(s, "generation")?,
            epoch: json_u64(s, "epoch")?,
            reason: json_str(s, "reason")?.to_string(),
            state_bytes: json_u64(s, "state_bytes")?,
            ckpt_bytes: json_u64(s, "ckpt_bytes")?,
            barrier_us: json_u64(s, "barrier_us")?,
            est_recovery_us: json_u64(s, "est_recovery_us")?,
            budget_us: json_u64(s, "budget_us")?,
            period_us_before: json_u64(s, "period_us_before")?,
            period_us_after: json_u64(s, "period_us_after")?,
            recovery_us: json_u64(s, "recovery_us")?,
        })
    }

    /// One-line human rendering, shared by `ms_ledger --follow` and
    /// the decision section of the summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "decision gen={} epoch={} reason={}",
            self.generation, self.epoch, self.reason
        );
        if self.state_bytes > 0 {
            out.push_str(&format!(" state={}B", self.state_bytes));
        }
        if self.period_us_before != self.period_us_after {
            out.push_str(&format!(
                " period {:.0}ms->{:.0}ms",
                ms(self.period_us_before),
                ms(self.period_us_after)
            ));
        } else if self.period_us_after > 0 {
            out.push_str(&format!(" period {:.0}ms", ms(self.period_us_after)));
        }
        if self.est_recovery_us > 0 {
            out.push_str(&format!(" est_recovery={:.1}ms", ms(self.est_recovery_us)));
        }
        if self.budget_us > 0 {
            out.push_str(&format!(" budget={:.0}ms", ms(self.budget_us)));
        }
        if self.recovery_us > 0 {
            out.push_str(&format!(" recovered_in={:.1}ms", ms(self.recovery_us)));
        }
        out
    }
}

/// Whether a raw ledger line is a decision record rather than an
/// (epoch, operator) row.
fn is_decision_line(line: &str) -> bool {
    line.contains("\"kind\":\"decision\"")
}

/// Reads only the [`DecisionRecord`]s of a ledger file, in file order,
/// with the same torn-final-line tolerance as [`read_ledger`].
pub fn read_decisions(path: &Path) -> Result<Vec<DecisionRecord>> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| Error::Storage(format!("read ledger {}: {e}", path.display())))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut decisions = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !is_decision_line(line) {
            continue;
        }
        match DecisionRecord::from_json(line) {
            Ok(d) => decisions.push(d),
            Err(e) if i + 1 == lines.len() => {
                eprintln!(
                    "[ledger] skipping torn trailing line of {}: {e}",
                    path.display()
                );
            }
            Err(e) => return Err(e),
        }
    }
    Ok(decisions)
}

fn json_str<'a>(s: &'a str, key: &str) -> Result<&'a str> {
    let v = json_value(s, key)?;
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| Error::Storage(format!("ledger field {key:?} is not a string")))
}

fn json_value<'a>(s: &'a str, key: &str) -> Result<&'a str> {
    let pat = format!("\"{key}\":");
    let start = s
        .find(&pat)
        .ok_or_else(|| Error::Storage(format!("ledger record missing field {key:?}")))?
        + pat.len();
    let rest = &s[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

fn json_u64(s: &str, key: &str) -> Result<u64> {
    json_value(s, key)?
        .parse()
        .map_err(|_| Error::Storage(format!("ledger field {key:?} is not an integer")))
}

fn json_u64_or_zero(s: &str, key: &str) -> Result<u64> {
    if s.contains(&format!("\"{key}\":")) {
        json_u64(s, key)
    } else {
        Ok(0)
    }
}

fn json_bool(s: &str, key: &str) -> Result<bool> {
    match json_value(s, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(Error::Storage(format!(
            "ledger field {key:?} is not a bool: {other:?}"
        ))),
    }
}

/// Append-mode writer for a run ledger. The controller opens one per
/// run; recovery generations keep appending to the same file, so a
/// ledger spans worker failures.
pub struct LedgerWriter {
    out: File,
}

impl LedgerWriter {
    /// Opens (or creates) the ledger at `path` for appending.
    ///
    /// A torn trailing line left by a crashed predecessor (a row is one
    /// `write_all`, so only the final line can tear, and a torn line
    /// never got its newline) is truncated away first: appending after
    /// it would bury the tear as unparseable *interior* corruption.
    pub fn open(path: &Path) -> Result<LedgerWriter> {
        let out = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::Storage(format!("open ledger {}: {e}", path.display())))?;
        if let Ok(bytes) = std::fs::read(path) {
            if !bytes.is_empty() && bytes[bytes.len() - 1] != b'\n' {
                let clean = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                eprintln!(
                    "[ledger] truncating torn trailing line of {} ({} bytes)",
                    path.display(),
                    bytes.len() - clean
                );
                out.set_len(clean as u64).map_err(|e| {
                    Error::Storage(format!("repair ledger {}: {e}", path.display()))
                })?;
            }
        }
        Ok(LedgerWriter { out })
    }

    /// Appends one record as one line and flushes it — a ledger row is
    /// on disk before the next epoch's tokens go out. The whole line
    /// (newline included) goes down in a single `write_all`, so a
    /// crash mid-append can tear at most the final line of the file —
    /// the exact case [`read_ledger`] tolerates — never interleave or
    /// split an interior one.
    pub fn append(&mut self, rec: &LedgerRecord) -> Result<()> {
        let mut line = rec.to_json();
        line.push('\n');
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.flush())
            .map_err(|e| Error::Storage(format!("append ledger record: {e}")))
    }

    /// Appends one [`DecisionRecord`] line, with the same
    /// single-`write_all` tear discipline as [`LedgerWriter::append`].
    pub fn append_decision(&mut self, rec: &DecisionRecord) -> Result<()> {
        let mut line = rec.to_json();
        line.push('\n');
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.flush())
            .map_err(|e| Error::Storage(format!("append ledger decision: {e}")))
    }
}

/// Reads and parses the records of a ledger file, in file order.
///
/// A malformed *final* line is skipped with a warning: the writer
/// appends each row in one `write_all`, so a controller crash can tear
/// the last line and nothing else — rejecting the whole ledger for it
/// would make every post-crash summary (and the restarted controller's
/// generation resume) fail exactly when they matter most. A malformed
/// *interior* line still fails the parse: that is corruption, not a
/// torn append.
pub fn read_ledger(path: &Path) -> Result<Vec<LedgerRecord>> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| Error::Storage(format!("read ledger {}: {e}", path.display())))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut records = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        // Decision records share the file but not the schema; they
        // have their own reader ([`read_decisions`]).
        if is_decision_line(line) {
            continue;
        }
        match LedgerRecord::from_json(line) {
            Ok(rec) => records.push(rec),
            Err(e) if i + 1 == lines.len() => {
                eprintln!(
                    "[ledger] skipping torn trailing line of {}: {e}",
                    path.display()
                );
            }
            Err(e) => return Err(e),
        }
    }
    Ok(records)
}

fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

/// Incremental reader behind `ms_ledger --follow`: tails a (possibly
/// still growing) ledger file and turns newly appended lines into
/// human-readable output lines — one summary line per *completed*
/// epoch (all rows of an epoch are appended before the first row of
/// the next, so a new epoch id closes the previous one), plus every
/// decision record as it lands.
///
/// Torn trailing lines are handled the way [`read_ledger`] handles
/// them, but live: only newline-terminated input is parsed, so a
/// mid-append tail is simply held back until the writer finishes the
/// line. A malformed *complete* line is still loud — that is interior
/// corruption, exactly as in the batch reader.
#[derive(Debug, Default)]
pub struct LedgerFollower {
    /// File offset up to which input has been consumed.
    offset: u64,
    /// Carry for a read that ended mid-line (not yet parseable).
    partial: String,
    /// Epoch currently being accumulated, with its rows so far.
    current: Option<(u64, Vec<LedgerRecord>)>,
    /// Running barrier-latency distribution across followed epochs.
    barrier: DurationStats,
}

impl LedgerFollower {
    /// A follower that starts at the beginning of the file.
    pub fn new() -> LedgerFollower {
        LedgerFollower::default()
    }

    /// Reads whatever the writer appended since the last poll and
    /// returns the output lines it completes. An absent file is not
    /// an error (the controller may not have opened the ledger yet);
    /// it just yields nothing.
    pub fn poll(&mut self, path: &Path) -> Result<Vec<String>> {
        let mut f = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(Error::Storage(format!(
                    "follow ledger {}: {e}",
                    path.display()
                )))
            }
        };
        let len = f
            .metadata()
            .map_err(|e| Error::Storage(format!("follow ledger {}: {e}", path.display())))?
            .len();
        if len < self.offset {
            // The writer truncated a torn tail on reopen; our carry
            // (if any) was part of what got cut. Re-read from the
            // last newline we fully consumed.
            self.offset = self.offset.saturating_sub(self.partial.len() as u64);
            self.partial.clear();
            if len < self.offset {
                self.offset = 0;
                self.current = None;
            }
        }
        use std::io::Seek;
        f.seek(std::io::SeekFrom::Start(self.offset))
            .map_err(|e| Error::Storage(format!("follow ledger {}: {e}", path.display())))?;
        let mut fresh = String::new();
        f.read_to_string(&mut fresh)
            .map_err(|e| Error::Storage(format!("follow ledger {}: {e}", path.display())))?;
        self.offset += fresh.len() as u64;
        self.partial.push_str(&fresh);

        let mut out = Vec::new();
        // Only newline-terminated lines are complete; the remainder
        // stays in the carry until the writer finishes it.
        while let Some(nl) = self.partial.find('\n') {
            let line: String = self.partial.drain(..=nl).collect();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if is_decision_line(line) {
                out.push(DecisionRecord::from_json(line)?.render());
                continue;
            }
            let rec = LedgerRecord::from_json(line)?;
            if matches!(&self.current, Some((epoch, _)) if *epoch != rec.epoch) {
                out.extend(self.flush());
            }
            match &mut self.current {
                Some((_, rows)) => rows.push(rec),
                None => self.current = Some((rec.epoch, vec![rec])),
            }
        }
        Ok(out)
    }

    /// Renders and drops the epoch currently being accumulated, if
    /// any. `poll` calls this when a new epoch opens; callers use it
    /// at end of stream so the final epoch isn't lost.
    pub fn flush(&mut self) -> Vec<String> {
        let Some((epoch, rows)) = self.current.take() else {
            return Vec::new();
        };
        let gen = rows.iter().map(|r| r.generation).max().unwrap_or(0);
        let state: u64 = rows.iter().map(|r| r.state_bytes).sum();
        let ckpt: u64 = rows.iter().map(|r| r.ckpt_bytes).sum();
        let barrier = rows.iter().map(|r| r.barrier_us).max().unwrap_or(0);
        self.barrier.record(SimDuration::from_micros(barrier));
        let grower = rows
            .iter()
            .max_by_key(|r| r.state_bytes)
            .map(|r| format!("  top op{}={}B", r.op, r.state_bytes))
            .unwrap_or_default();
        let accepted: u64 = rows.iter().map(|r| r.gate_accepted).sum();
        let shed: u64 = rows.iter().map(|r| r.gate_shed).sum();
        let gate = if accepted > 0 || shed > 0 {
            format!("  gate acc={accepted} shed={shed}")
        } else {
            String::new()
        };
        vec![format!(
            "epoch {epoch:>4}  gen {gen}  ops {:>2}  state {state:>9}B  ckpt {ckpt:>8}B  \
             barrier {:>7.1}ms  p99 {:>7.1}ms{grower}{gate}",
            rows.len(),
            ms(barrier),
            ms(self.barrier.p99().as_micros()),
        )]
    }
}

/// Renders a human-readable summary of ledger records: a per-epoch
/// table (state/checkpoint bytes, phase critical paths, barrier
/// latency), the top-`top_n` operators by state growth, and
/// barrier-latency stats. Shared by the `ms_ledger` bin and the
/// `wire_cluster` example.
pub fn summarize(records: &[LedgerRecord], top_n: usize) -> String {
    use std::collections::BTreeMap;

    let mut out = String::new();
    if records.is_empty() {
        out.push_str("run ledger: empty\n");
        return out;
    }
    // Group rows per epoch (epochs are unique across generations).
    let mut epochs: BTreeMap<u64, Vec<&LedgerRecord>> = BTreeMap::new();
    for r in records {
        epochs.entry(r.epoch).or_default().push(r);
    }
    let generations: std::collections::BTreeSet<u64> =
        records.iter().map(|r| r.generation).collect();
    out.push_str(&format!(
        "run ledger: {} records, {} epochs, {} generation(s)\n",
        records.len(),
        epochs.len(),
        generations.len()
    ));
    out.push_str(
        "epoch  gen  ops  state_B    ckpt_B   delta  align_ms  serial_ms  persist_ms  barrier_ms\n",
    );
    for (epoch, rows) in &epochs {
        let gen = rows.iter().map(|r| r.generation).max().unwrap_or(0);
        let state: u64 = rows.iter().map(|r| r.state_bytes).sum();
        let ckpt: u64 = rows.iter().map(|r| r.ckpt_bytes).sum();
        let deltas = rows.iter().filter(|r| r.delta).count();
        // Phase columns report the slowest operator — the phase's
        // critical path, which is what bounds the epoch.
        let align = rows.iter().map(|r| r.align_wait_us).max().unwrap_or(0);
        let serial = rows.iter().map(|r| r.serialize_us).max().unwrap_or(0);
        let persist = rows.iter().map(|r| r.persist_us).max().unwrap_or(0);
        let barrier = rows.iter().map(|r| r.barrier_us).max().unwrap_or(0);
        out.push_str(&format!(
            "{epoch:>5}  {gen:>3}  {:>3}  {state:>8}  {ckpt:>8}  {deltas:>5}  {:>8.1}  {:>9.1}  {:>10.1}  {:>10.1}\n",
            rows.len(),
            ms(align),
            ms(serial),
            ms(persist),
            ms(barrier),
        ));
    }

    // Top-N state growers: per operator, first→last state-size gauge.
    let mut span: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for r in records {
        span.entry(r.op)
            .and_modify(|(_, last)| *last = r.state_bytes)
            .or_insert((r.state_bytes, r.state_bytes));
    }
    let mut growth: Vec<(u32, u64, u64, i64)> = span
        .into_iter()
        .map(|(op, (first, last))| (op, first, last, last as i64 - first as i64))
        .collect();
    growth.sort_by_key(|&(_, _, _, g)| std::cmp::Reverse(g));
    out.push_str(&format!("top {} state growers:\n", top_n.min(growth.len())));
    for (op, first, last, g) in growth.into_iter().take(top_n) {
        out.push_str(&format!("  op{op}: {first} -> {last} B ({g:+} B)\n"));
    }

    // Barrier latency across epochs (each epoch counted once).
    let mut barrier = DurationStats::new();
    for rows in epochs.values() {
        let us = rows.iter().map(|r| r.barrier_us).max().unwrap_or(0);
        barrier.record(SimDuration::from_micros(us));
    }
    out.push_str(&format!(
        "barrier latency: n={} mean={:.1}ms min={:.1}ms p50={:.1}ms p95={:.1}ms p99={:.1}ms max={:.1}ms\n",
        barrier.count(),
        ms(barrier.mean().as_micros()),
        ms(barrier.min().as_micros()),
        ms(barrier.p50().as_micros()),
        ms(barrier.p95().as_micros()),
        ms(barrier.p99().as_micros()),
        ms(barrier.max().as_micros()),
    ));

    // Ingestion gateways, when the run had any: the counters are
    // cumulative, so each gate's freshest row is its total.
    let mut gate_last: BTreeMap<u32, &LedgerRecord> = BTreeMap::new();
    for r in records {
        if r.gate_accepted > 0 || r.gate_shed > 0 {
            gate_last.insert(r.op, r);
        }
    }
    if !gate_last.is_empty() {
        let accepted: u64 = gate_last.values().map(|r| r.gate_accepted).sum();
        let shed: u64 = gate_last.values().map(|r| r.gate_shed).sum();
        let wal: u64 = gate_last.values().map(|r| r.gate_wal_bytes).sum();
        let p99 = gate_last
            .values()
            .map(|r| r.gate_ack_p99_us)
            .max()
            .unwrap_or(0);
        out.push_str(&format!(
            "gateways: {} gate(s), batches accepted={accepted} shed={shed}, wal_B={wal}, ack_p99={:.1}ms\n",
            gate_last.len(),
            ms(p99),
        ));
    }
    out
}

/// Renders the sharding view of a ledger: records grouped by *logical*
/// operator, with the per-shard state-byte balance of each group at
/// its freshest epoch. The skew column is `max/min` over the group's
/// final per-instance state sizes — 1.00 is a perfect spread, `inf`
/// means at least one shard never accumulated state. Sharded groups
/// also list their instances so a hot shard can be named. This is the
/// `ms_ledger --by-shard` view and the balance check the scale test
/// asserts on.
pub fn by_shard_summary(records: &[LedgerRecord]) -> String {
    use std::collections::BTreeMap;

    let mut out = String::new();
    if records.is_empty() {
        out.push_str("run ledger: empty\n");
        return out;
    }
    // Freshest row per physical instance (file order is epoch order,
    // and recovery generations only append).
    let mut last: BTreeMap<u32, &LedgerRecord> = BTreeMap::new();
    for r in records {
        last.insert(r.op, r);
    }
    // Physical instances grouped by logical operator.
    let mut groups: BTreeMap<u32, Vec<&LedgerRecord>> = BTreeMap::new();
    for r in last.values() {
        groups.entry(r.logical).or_default().push(r);
    }
    let sharded = groups.values().filter(|g| g.len() > 1).count();
    out.push_str(&format!(
        "shard view: {} logical operator(s), {} physical instance(s), {} sharded group(s)\n",
        groups.len(),
        last.len(),
        sharded,
    ));
    out.push_str("logical  shards  state_B_total  min_B  max_B  skew  tuples_in\n");
    for (logical, rows) in &groups {
        let total: u64 = rows.iter().map(|r| r.state_bytes).sum();
        let min = rows.iter().map(|r| r.state_bytes).min().unwrap_or(0);
        let max = rows.iter().map(|r| r.state_bytes).max().unwrap_or(0);
        let tuples: u64 = rows.iter().map(|r| r.tuples_in).sum();
        let skew = if min == 0 {
            if max == 0 {
                "1.00".to_string()
            } else {
                "inf".to_string()
            }
        } else {
            format!("{:.2}", max as f64 / min as f64)
        };
        out.push_str(&format!(
            "{logical:>7}  {:>6}  {total:>13}  {min:>5}  {max:>5}  {skew:>4}  {tuples:>9}\n",
            rows.len(),
        ));
        if rows.len() > 1 {
            for r in rows {
                out.push_str(&format!(
                    "         op{:<4} state={} B  ckpt={} B  in={}\n",
                    r.op, r.state_bytes, r.ckpt_bytes, r.tuples_in
                ));
            }
        }
    }
    out
}

/// The worst `max/min` per-shard state skew across a ledger's sharded
/// groups at their freshest epoch: 1.0 is a perfect spread,
/// [`f64::INFINITY`] means a shard never accumulated state, `None`
/// means nothing is sharded. The scale test's balance assertion.
pub fn worst_shard_skew(records: &[LedgerRecord]) -> Option<f64> {
    use std::collections::BTreeMap;
    let mut last: BTreeMap<u32, &LedgerRecord> = BTreeMap::new();
    for r in records {
        last.insert(r.op, r);
    }
    let mut groups: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for r in last.values() {
        groups.entry(r.logical).or_default().push(r.state_bytes);
    }
    let mut worst: Option<f64> = None;
    for sizes in groups.values().filter(|g| g.len() > 1) {
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        let skew = match (min, max) {
            (0, 0) => 1.0,
            (0, _) => f64::INFINITY,
            _ => max as f64 / min as f64,
        };
        if worst.is_none_or(|w| skew > w) {
            worst = Some(skew);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64, op: u32) -> LedgerRecord {
        LedgerRecord {
            generation: 1 + epoch / 4,
            epoch,
            op,
            logical: op,
            state_bytes: 1024 * (epoch + 1),
            ckpt_bytes: 128 * (op as u64 + 1),
            delta: epoch > 1,
            align_wait_us: 40 * op as u64,
            serialize_us: 350,
            persist_us: 900,
            tuples_in: 10_000 * epoch,
            tuples_out: 9_000 * epoch,
            bytes_out: 72_000 * epoch,
            queued_tuples: 3,
            open_windows: 1,
            window_tuples: 17,
            gate_accepted: if op == 0 { 5 * epoch } else { 0 },
            gate_shed: if op == 0 { epoch } else { 0 },
            gate_wal_bytes: if op == 0 { 640 * epoch } else { 0 },
            gate_ack_p50_us: if op == 0 { 80 } else { 0 },
            gate_ack_p99_us: if op == 0 { 410 } else { 0 },
            barrier_us: 4_200 + epoch,
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        for epoch in 0..6 {
            for op in 0..3 {
                let rec = sample(epoch, op);
                let parsed = LedgerRecord::from_json(&rec.to_json()).unwrap();
                assert_eq!(parsed, rec);
            }
        }
        // Extremes survive.
        let rec = LedgerRecord {
            state_bytes: u64::MAX,
            ..LedgerRecord::default()
        };
        assert_eq!(LedgerRecord::from_json(&rec.to_json()).unwrap(), rec);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(LedgerRecord::from_json("").is_err());
        assert!(LedgerRecord::from_json("not json").is_err());
        assert!(LedgerRecord::from_json("{\"generation\":1}").is_err());
        let bad_type = sample(1, 0)
            .to_json()
            .replace("\"delta\":false", "\"delta\":7");
        assert!(LedgerRecord::from_json(&bad_type).is_err());
        // Unknown extra fields are tolerated.
        let extended = sample(1, 0)
            .to_json()
            .replace("\"barrier_us\"", "\"future_field\":9,\"barrier_us\"");
        assert_eq!(LedgerRecord::from_json(&extended).unwrap(), sample(1, 0));
    }

    #[test]
    fn writer_appends_and_reader_reads_back() {
        let dir = std::env::temp_dir().join(format!("ms_ledger_rw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LEDGER_FILE);
        let _ = std::fs::remove_file(&path);
        let records: Vec<LedgerRecord> = (1..=3)
            .flat_map(|e| (0..3).map(move |op| sample(e, op)))
            .collect();
        {
            let mut w = LedgerWriter::open(&path).unwrap();
            for r in &records[..6] {
                w.append(r).unwrap();
            }
        }
        // Reopening appends — a recovery generation extends the file.
        {
            let mut w = LedgerWriter::open(&path).unwrap();
            for r in &records[6..] {
                w.append(r).unwrap();
            }
        }
        assert_eq!(read_ledger(&path).unwrap(), records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_skipped_and_still_summarizes() {
        let dir = std::env::temp_dir().join(format!("ms_ledger_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LEDGER_FILE);
        let _ = std::fs::remove_file(&path);
        let records: Vec<LedgerRecord> = (1..=3).map(|e| sample(e, 0)).collect();
        {
            let mut w = LedgerWriter::open(&path).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
        }
        // Hand-tear the last line mid-record, as a controller crash
        // mid-append would.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn = &text[..text.len() - 25];
        assert!(!torn.ends_with('\n'), "tear must land mid-line");
        std::fs::write(&path, torn).unwrap();

        let read = read_ledger(&path).expect("torn trailing line must not fail the parse");
        assert_eq!(read, records[..2], "intact prefix survives");
        let report = summarize(&read, 3);
        assert!(
            report.contains("2 epochs"),
            "summary still renders: {report}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_a_torn_ledger_repairs_the_tail_before_appending() {
        // A restarted controller appends to the crashed one's file; if
        // the tear survived the reopen, the next append would turn it
        // into interior corruption and fail every later full parse.
        let dir = std::env::temp_dir().join(format!("ms_ledger_reopen_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LEDGER_FILE);
        let _ = std::fs::remove_file(&path);
        {
            let mut w = LedgerWriter::open(&path).unwrap();
            w.append(&sample(1, 0)).unwrap();
            w.append(&sample(2, 0)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();

        let mut w = LedgerWriter::open(&path).unwrap();
        w.append(&sample(3, 1)).unwrap();
        let read = read_ledger(&path).expect("repaired ledger must parse end to end");
        assert_eq!(read, vec![sample(1, 0), sample(3, 1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_interior_line_still_fails_the_parse() {
        let dir = std::env::temp_dir().join(format!("ms_ledger_interior_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LEDGER_FILE);
        let _ = std::fs::remove_file(&path);
        let a = sample(1, 0).to_json();
        let b = sample(2, 0).to_json();
        // An interior line torn *with* its newline intact is not a torn
        // append — it is corruption, and must stay loud.
        std::fs::write(&path, format!("{}\n{b}\n", &a[..a.len() - 10])).unwrap();
        assert!(read_ledger(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_line_without_logical_parses_as_its_own_logical() {
        let mut rec = sample(2, 7);
        rec.logical = 7;
        let legacy = rec.to_json().replace("\"logical\":7,", "");
        let parsed = LedgerRecord::from_json(&legacy).unwrap();
        assert_eq!(parsed, rec);
        // A present-but-malformed logical field is still an error.
        let bad = rec.to_json().replace("\"logical\":7", "\"logical\":x");
        assert!(LedgerRecord::from_json(&bad).is_err());
    }

    #[test]
    fn legacy_line_without_gate_columns_parses_as_zeros() {
        let mut rec = sample(2, 0);
        let legacy = rec.to_json().replace(
            &format!(
                "\"gate_accepted\":{},\"gate_shed\":{},\"gate_wal_bytes\":{},\
                     \"gate_ack_p50_us\":{},\"gate_ack_p99_us\":{},",
                rec.gate_accepted,
                rec.gate_shed,
                rec.gate_wal_bytes,
                rec.gate_ack_p50_us,
                rec.gate_ack_p99_us
            ),
            "",
        );
        assert!(!legacy.contains("gate_"), "{legacy}");
        rec.gate_accepted = 0;
        rec.gate_shed = 0;
        rec.gate_wal_bytes = 0;
        rec.gate_ack_p50_us = 0;
        rec.gate_ack_p99_us = 0;
        assert_eq!(LedgerRecord::from_json(&legacy).unwrap(), rec);
        // A present-but-malformed gate field is still an error.
        let bad = sample(2, 0)
            .to_json()
            .replace("\"gate_shed\":2", "\"gate_shed\":x");
        assert!(LedgerRecord::from_json(&bad).is_err());
    }

    fn decision(epoch: u64, reason: &str) -> DecisionRecord {
        DecisionRecord {
            generation: 1,
            epoch,
            reason: reason.to_string(),
            state_bytes: 4096 * epoch,
            ckpt_bytes: 512 * epoch,
            barrier_us: 900,
            est_recovery_us: 150_000,
            budget_us: 1_000_000,
            period_us_before: 120_000,
            period_us_after: if reason == "widen" { 150_000 } else { 120_000 },
            recovery_us: if reason == "recovery" { 73_000 } else { 0 },
        }
    }

    #[test]
    fn decision_record_roundtrips_through_json() {
        for reason in ["timer", "local_minimum", "period_end", "widen", "recovery"] {
            let d = decision(3, reason);
            assert_eq!(DecisionRecord::from_json(&d.to_json()).unwrap(), d);
        }
        // Epoch rows are not decisions and vice versa.
        assert!(DecisionRecord::from_json(&sample(1, 0).to_json()).is_err());
        assert!(LedgerRecord::from_json(&decision(1, "timer").to_json()).is_err());
    }

    #[test]
    fn decisions_and_epoch_rows_share_one_file() {
        let dir = std::env::temp_dir().join(format!("ms_ledger_mixed_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LEDGER_FILE);
        let _ = std::fs::remove_file(&path);
        {
            let mut w = LedgerWriter::open(&path).unwrap();
            w.append_decision(&decision(1, "local_minimum")).unwrap();
            w.append(&sample(1, 0)).unwrap();
            w.append(&sample(1, 1)).unwrap();
            w.append_decision(&decision(1, "widen")).unwrap();
            w.append(&sample(2, 0)).unwrap();
        }
        // Each reader sees only its record type, both in file order.
        assert_eq!(
            read_ledger(&path).unwrap(),
            vec![sample(1, 0), sample(1, 1), sample(2, 0)]
        );
        assert_eq!(
            read_decisions(&path).unwrap(),
            vec![decision(1, "local_minimum"), decision(1, "widen")]
        );
        // The legacy summarizer is oblivious to the decision lines.
        let text = summarize(&read_ledger(&path).unwrap(), 3);
        assert!(text.contains("3 records, 2 epochs"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_decision_is_skipped_by_both_readers() {
        let dir = std::env::temp_dir().join(format!("ms_ledger_torn_dec_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LEDGER_FILE);
        let _ = std::fs::remove_file(&path);
        {
            let mut w = LedgerWriter::open(&path).unwrap();
            w.append(&sample(1, 0)).unwrap();
            w.append_decision(&decision(1, "narrow")).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 15]).unwrap();
        assert_eq!(read_ledger(&path).unwrap(), vec![sample(1, 0)]);
        assert_eq!(read_decisions(&path).unwrap(), Vec::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follower_streams_epoch_summaries_and_decisions() {
        let dir = std::env::temp_dir().join(format!("ms_ledger_follow_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LEDGER_FILE);
        let _ = std::fs::remove_file(&path);
        let mut f = LedgerFollower::new();
        // Nothing to read before the controller creates the file.
        assert!(f.poll(&path).unwrap().is_empty());

        let mut w = LedgerWriter::open(&path).unwrap();
        w.append(&sample(1, 0)).unwrap();
        w.append(&sample(1, 1)).unwrap();
        // Epoch 1 is still open: no summary yet.
        assert!(f.poll(&path).unwrap().is_empty());
        // A decision line streams immediately, ahead of the summary.
        w.append_decision(&decision(1, "local_minimum")).unwrap();
        let lines = f.poll(&path).unwrap();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("reason=local_minimum"), "{lines:?}");
        // The first row of epoch 2 closes epoch 1.
        w.append(&sample(2, 0)).unwrap();
        let lines = f.poll(&path).unwrap();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].starts_with("epoch    1"), "{lines:?}");
        assert!(lines[0].contains("ops  2"), "{lines:?}");
        // End of stream: flush renders the still-open epoch 2.
        let tail = f.flush();
        assert_eq!(tail.len(), 1, "{tail:?}");
        assert!(tail[0].starts_with("epoch    2"), "{tail:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn follower_holds_back_torn_tail_until_completed() {
        use std::io::Write as _;
        let dir =
            std::env::temp_dir().join(format!("ms_ledger_follow_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LEDGER_FILE);
        let _ = std::fs::remove_file(&path);
        let mut f = LedgerFollower::new();
        let line_a = sample(1, 0).to_json();
        let line_b = sample(2, 0).to_json();
        // First write ends mid-line, as a crashed or mid-append writer
        // would leave it.
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        file.write_all(format!("{line_a}\n").as_bytes()).unwrap();
        file.write_all(&line_b.as_bytes()[..line_b.len() - 20])
            .unwrap();
        file.flush().unwrap();
        // The complete line is consumed (held as the open epoch); the
        // torn tail is neither parsed nor fatal.
        assert!(f.poll(&path).unwrap().is_empty());
        // The writer finishes the line: now epoch 1 closes.
        file.write_all(format!("{}\n", &line_b[line_b.len() - 20..]).as_bytes())
            .unwrap();
        file.flush().unwrap();
        let lines = f.poll(&path).unwrap();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].starts_with("epoch    1"), "{lines:?}");
        assert_eq!(f.flush().len(), 1, "epoch 2 open at end of stream");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two shards of logical op 1 plus singleton source/sink; the
    /// freshest epoch decides the balance.
    fn sharded_records() -> Vec<LedgerRecord> {
        let mut records = Vec::new();
        for epoch in 1..=2u64 {
            for (op, logical, state) in [(0, 0, 16), (1, 1, 300), (2, 1, 100), (3, 3, 64)] {
                let mut r = sample(epoch, op);
                r.logical = logical;
                r.state_bytes = state * epoch;
                records.push(r);
            }
        }
        records
    }

    #[test]
    fn by_shard_view_groups_by_logical_and_reports_skew() {
        let text = by_shard_summary(&sharded_records());
        assert!(
            text.contains("3 logical operator(s), 4 physical instance(s), 1 sharded group(s)"),
            "{text}"
        );
        // Logical 1 at epoch 2: shards hold 600 and 200 bytes → 3.00.
        assert!(text.contains("3.00"), "{text}");
        // Sharded groups list their instances.
        assert!(text.contains("op1"), "{text}");
        assert!(text.contains("op2"), "{text}");
        assert_eq!(by_shard_summary(&[]), "run ledger: empty\n");
    }

    #[test]
    fn worst_skew_tracks_freshest_epoch() {
        let records = sharded_records();
        assert_eq!(worst_shard_skew(&records), Some(3.0));
        // Unsharded ledgers have no skew to report.
        let flat: Vec<LedgerRecord> = (0..3).map(|op| sample(1, op)).collect();
        assert_eq!(worst_shard_skew(&flat), None);
        // A shard with zero state is infinite skew.
        let mut zeroed = records.clone();
        for r in zeroed.iter_mut().filter(|r| r.op == 2) {
            r.state_bytes = 0;
        }
        assert_eq!(worst_shard_skew(&zeroed), Some(f64::INFINITY));
    }

    #[test]
    fn summary_covers_epochs_growers_and_barrier() {
        let records: Vec<LedgerRecord> = (1..=4)
            .flat_map(|e| (0..3).map(move |op| sample(e, op)))
            .collect();
        let text = summarize(&records, 2);
        assert!(
            text.contains("12 records, 4 epochs, 2 generation(s)"),
            "{text}"
        );
        assert!(text.contains("top 2 state growers"), "{text}");
        assert!(text.contains("barrier latency: n=4"), "{text}");
        // Op 0 carries gateway counters; the freshest epoch (4) wins.
        assert!(
            text.contains("gateways: 1 gate(s), batches accepted=20 shed=4"),
            "{text}"
        );
        // Every epoch appears as a table row.
        for epoch in 1..=4 {
            assert!(
                text.lines()
                    .any(|l| l.trim_start().starts_with(&format!("{epoch}  "))),
                "epoch {epoch} missing:\n{text}"
            );
        }
        assert_eq!(summarize(&[], 3), "run ledger: empty\n");
    }
}
