//! The virtual-time event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ms_core::time::{SimDuration, SimTime};

/// A priority queue of `(time, event)` pairs with a monotone clock.
///
/// Determinism: ties at equal virtual time are broken by insertion
/// order (a monotone sequence number), so two runs with the same inputs
/// dispatch identically.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time: the timestamp of the last popped event (or
    /// the last explicit advance).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time. Scheduling in the past
    /// panics in debug builds and is clamped to `now` in release.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past ({at:?} < {:?})",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(Reverse(Entry {
            time: at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to
    /// its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// The timestamp of the earliest queued event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Advances the clock without dispatching (used to close out a
    /// bounded run). Never moves backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_times() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(t, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn pop_advances_clock() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(SimTime::from_secs(7), 7);
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(7));
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 0);
        q.pop();
        q.schedule_in(SimDuration::from_secs(5), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(15)));
    }

    #[test]
    fn advance_never_goes_backwards() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.advance_to(SimTime::from_secs(10));
        q.advance_to(SimTime::from_secs(5));
        assert_eq!(q.now(), SimTime::from_secs(10));
    }
}
