//! Engine configuration.

use ms_core::config::{CheckpointConfig, SchemeKind};
use ms_core::ids::NodeId;
use ms_core::time::{SimDuration, SimTime};
use ms_net::NetConfig;
use ms_storage::StorageConfig;

use crate::aware::AwareConfig;

/// Which nodes a planned failure takes down.
#[derive(Clone, Debug)]
pub enum FailTarget {
    /// Every compute node hosting an HAU — the paper's worst case
    /// (§IV-C).
    AllComputeNodes,
    /// A specific set of nodes.
    Nodes(Vec<NodeId>),
}

/// A scheduled failure injection.
#[derive(Clone, Debug)]
pub struct FailurePlan {
    /// Absolute virtual time of the failure.
    pub at: SimTime,
    /// Scope.
    pub target: FailTarget,
}

/// Full engine configuration. Defaults reproduce the paper's EC2
/// deployment: 55 HAU nodes + 1 storage/controller node, two-core
/// 2.3 GHz instances, 1 Gbps Ethernet (see DESIGN.md §2 for the
/// calibration of the storage-bandwidth figures).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Fault-tolerance scheme under test.
    pub scheme: SchemeKind,
    /// Checkpoint cadence.
    pub ckpt: CheckpointConfig,
    /// Network cost model.
    pub net: NetConfig,
    /// Storage cost model.
    pub storage: StorageConfig,
    /// Master random seed.
    pub seed: u64,
    /// Warm-up window (also the application-aware profiling window).
    pub warmup: SimDuration,
    /// Measurement window (the paper uses 10 minutes).
    pub measure: SimDuration,
    /// State-size sampling cadence (Fig. 5 traces, aa controller).
    pub sample_interval: SimDuration,
    /// State serialization rate, bytes/s ("other" phase of Fig. 14).
    pub serialize_bw: u64,
    /// State deserialization rate, bytes/s (recovery phase 3).
    pub deserialize_bw: u64,
    /// Fixed cost of forking the checkpoint child process.
    pub fork_fixed: SimDuration,
    /// Per-byte cost of fork (page-table setup), seconds per byte.
    pub fork_per_byte: f64,
    /// Parent slowdown while a COW child is live (§III-B): fraction
    /// added to service times (page copy-on-write traffic).
    pub cow_overhead: f64,
    /// Per-byte rate at which a baseline HAU saves its output tuples
    /// for input preservation, bytes/s (buffer copy + serialization;
    /// the per-hop input-preservation tax of §II-B3). Charged as
    /// `preserve_overhead + bytes / preserve_cpu_bw` per tuple.
    pub preserve_cpu_bw: u64,
    /// Fixed per-tuple overhead of the intermediate-hop save (buffer
    /// bookkeeping, small-write syscalls).
    pub preserve_overhead: SimDuration,
    /// Append bandwidth seen by one source HAU writing its preserved
    /// tuples to the shared storage (GFS-style pipelined streaming
    /// append), bytes/s. Charged inline per source ("the source HAU
    /// saves these tuples in stable storage before sending them out")
    /// as `append_overhead + bytes / source_log_bw`.
    pub source_log_bw: u64,
    /// Fixed per-tuple overhead of the source append (both schemes'
    /// source-side saving pays this).
    pub append_overhead: SimDuration,
    /// Recovery phase 1: reloading one HAU's operators.
    pub op_load_time: SimDuration,
    /// Recovery phase 4: controller reconnection cost per HAU.
    pub reconnect_per_hau: SimDuration,
    /// Failure-detection latency (controller ping timeout).
    pub detect_delay: SimDuration,
    /// Global backpressure window: sources pause while at least this
    /// many logical *bytes* of data tuples are queued inside the
    /// application (a safety net above the per-channel caps).
    pub inflight_cap: u64,
    /// Per-channel receiver-buffer bound in logical bytes (bounded
    /// stream buffers + TCP flow control): a sender whose target
    /// channel is at the cap stalls until the receiver drains — this
    /// hop-by-hop backpressure is what lets one suspended HAU starve
    /// the pipeline (the baseline's checkpoint disruption).
    pub channel_cap: u64,
    /// If non-empty, checkpoints fire exactly at these absolute times
    /// instead of periodically (Fig. 15 single-checkpoint runs and the
    /// Fig. 14/16 Oracle).
    pub forced_checkpoints: Vec<SimTime>,
    /// Optional failure injection.
    pub failure: Option<FailurePlan>,
    /// Application-aware tuning.
    pub aware: AwareConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            scheme: SchemeKind::MsSrcAp,
            ckpt: CheckpointConfig::default(),
            net: NetConfig::default(),
            storage: StorageConfig::default(),
            seed: 42,
            warmup: SimDuration::from_secs(60),
            measure: SimDuration::from_secs(600),
            sample_interval: SimDuration::from_secs(2),
            serialize_bw: 50_000_000,
            deserialize_bw: 100_000_000,
            fork_fixed: SimDuration::from_millis(30),
            fork_per_byte: 1.0e-9,
            cow_overhead: 0.08,
            preserve_cpu_bw: 30_000_000,
            preserve_overhead: SimDuration::from_millis(3),
            source_log_bw: 60_000_000,
            append_overhead: SimDuration::from_millis(1),
            op_load_time: SimDuration::from_secs(1),
            reconnect_per_hau: SimDuration::from_millis(30),
            detect_delay: SimDuration::from_secs(2),
            inflight_cap: 512_000_000,
            channel_cap: 4_000_000,
            forced_checkpoints: Vec::new(),
            failure: None,
            aware: AwareConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Convenience: a config for scheme `s` with `n` checkpoints in the
    /// 10-minute measurement window (the Fig. 12/13 sweep knob).
    pub fn sweep(s: SchemeKind, n_checkpoints: u32) -> EngineConfig {
        EngineConfig {
            scheme: s,
            ckpt: CheckpointConfig::n_in_window(n_checkpoints, SimDuration::from_secs(600)),
            ..EngineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sets_period() {
        let c = EngineConfig::sweep(SchemeKind::MsSrc, 4);
        assert_eq!(c.ckpt.period, SimDuration::from_secs(150));
        assert!(EngineConfig::sweep(SchemeKind::MsSrc, 0).ckpt.disabled());
    }
}
