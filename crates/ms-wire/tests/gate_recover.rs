//! End-to-end exactly-once through the ingestion gateway across a
//! SIGKILL of the worker hosting it.
//!
//! Five real producer processes (threads speaking the TCP protocol)
//! push batches at a `--gate-producers` cluster: four well-behaved
//! stop-and-wait producers and one hostile producer whose single batch
//! always exceeds the admission budget. Reference run: no failure.
//! Failure run: the worker hosting the gateway is SIGKILLed once two
//! application checkpoints are complete, mid-stream; producers ride
//! out the outage by re-reading the published gate address and
//! retrying un-acked batches on fresh connections. The sink's final
//! state must be byte-identical to the reference run: every acked
//! batch exactly once, the shed batch provably absent.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ms_core::codec::{frame, FrameDecoder, SnapshotReader};
use ms_core::gate::GateMsg;
use ms_wire::{read_ledger, LEDGER_FILE};

const PRODUCERS: u64 = 4;
const BATCHES: u64 = 80;
const EVENTS_PER_BATCH: u64 = 16;
const KEYS: u64 = 8;
/// Inter-batch pacing: keeps the stream alive long enough for the
/// mid-stream kill to land before the producers finish.
const PACE: Duration = Duration::from_millis(25);
const PRODUCER_DEADLINE: Duration = Duration::from_secs(120);

/// Admission budget per checkpoint window. Normal traffic stays far
/// below it; the oversize batch alone exceeds it.
const BUDGET_BYTES: u64 = 65_536;
const OVERSIZE_PRODUCER: u64 = 999;
/// 8192 events * 16 bytes = 131072 > BUDGET_BYTES: shed even into an
/// empty window.
const OVERSIZE_EVENTS: u64 = 8192;
/// A value so distinctive that a single admitted oversize event would
/// blow the exact-sum assertion.
const OVERSIZE_VALUE: i64 = 1_000_003;

/// The deterministic event value of producer `p`, batch `b`, slot `j`.
fn value(p: u64, b: u64, j: u64) -> i64 {
    (p * 100_000 + b * 100 + j) as i64
}

/// One batch's events: 16 slots cycling over 8 keys, so pre-aggregation
/// folds every batch to exactly [`KEYS`] tuples.
fn batch_events(p: u64, b: u64) -> Vec<(u64, i64)> {
    (0..EVENTS_PER_BATCH)
        .map(|j| (j % KEYS, value(p, b, j)))
        .collect()
}

/// Kills every still-running child on drop so a failing assert never
/// leaks processes.
struct Cluster(Vec<Child>);

impl Cluster {
    fn push(&mut self, c: Child) -> usize {
        self.0.push(c);
        self.0.len() - 1
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn controller(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ms-controller"));
    cmd.args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--addr-file".as_ref(), dir.join("addr").as_os_str()])
        .args(["--result-file".as_ref(), dir.join("result").as_os_str()])
        .args(["--workers", "2", "--shape", "chain3"])
        .args(["--gate-producers", "5"]) // 4 normal + 1 oversize
        .args(["--gate-budget-bytes", &BUDGET_BYTES.to_string()])
        .args(["--gate-retry-ms", "25"])
        .args(["--ckpt-ms", "120", "--hb-timeout-ms", "500"])
        .args(["--respawn-wait-ms", "3000", "--deadline-secs", "90"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    cmd
}

fn worker(dir: &Path, name: &str) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ms-worker"));
    cmd.args(["--name", name])
        .args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--controller-file".as_ref(), dir.join("addr").as_os_str()])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    cmd
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms_wire_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_exit(child: &mut Child, budget: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + budget;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "process did not exit within {budget:?}"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

/// Highest *complete* application checkpoint epoch in the store (all
/// three chain operators — the gateway included — renamed their file
/// into place).
fn max_complete_epoch(store: &Path) -> u64 {
    let mut per_epoch = std::collections::HashMap::new();
    let Ok(entries) = fs::read_dir(store.join("ckpt")) else {
        return 0;
    };
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if let Some(epoch) = name
            .strip_prefix('e')
            .and_then(|r| r.split_once("_op"))
            .and_then(|(e, _)| e.parse::<u64>().ok())
        {
            *per_epoch.entry(epoch).or_insert(0usize) += 1;
        }
    }
    per_epoch
        .iter()
        .filter(|(_, &n)| n >= 3)
        .map(|(&e, _)| e)
        .max()
        .unwrap_or(0)
}

/// `(recoveries line, sink lines)` from a result file.
fn parse_result(path: &Path) -> (String, Vec<String>) {
    let text = fs::read_to_string(path).unwrap();
    let mut lines = text.lines();
    let recoveries = lines.next().unwrap().to_string();
    (recoveries, lines.map(str::to_string).collect())
}

/// Decodes a `sink op{N} {hex}` line into the Summer's `(sum, count)`.
fn decode_sink(line: &str) -> (i64, u64) {
    let hex = line.rsplit(' ').next().unwrap();
    let bytes: Vec<u8> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect();
    let mut r = SnapshotReader::new(&bytes);
    (r.get_i64().unwrap(), r.get_u64().unwrap())
}

/// One producer-side connection: framed stop-and-wait over TCP with a
/// read timeout, so a killed gateway surfaces as a dead exchange
/// instead of a hang.
struct GateConn {
    sock: TcpStream,
    dec: FrameDecoder,
}

impl GateConn {
    fn send(&mut self, msg: &GateMsg) -> std::io::Result<()> {
        self.sock.write_all(&frame(&msg.encode()))
    }

    /// One reply, or `None` when the connection is dead (reset, EOF,
    /// or silent past the read timeout) — the caller reconnects.
    fn recv(&mut self) -> Option<GateMsg> {
        loop {
            match self.dec.next_frame() {
                Ok(Some(p)) => return GateMsg::decode(&p).ok(),
                Ok(None) => {}
                Err(_) => return None,
            }
            let mut buf = [0u8; 4096];
            match self.sock.read(&mut buf) {
                Ok(0) | Err(_) => return None,
                Ok(n) => self.dec.feed(&buf[..n]),
            }
        }
    }
}

/// Connects (or reconnects) to the gateway, re-reading the published
/// address on every attempt — after a recovery the replacement gate
/// binds a fresh port and rewrites the file.
fn connect_gate(addr_file: &Path, producer: u64, deadline: Instant) -> GateConn {
    loop {
        assert!(
            Instant::now() < deadline,
            "producer {producer} could not reach the gateway in time"
        );
        if let Ok(addr) = fs::read_to_string(addr_file) {
            let addr = addr.trim();
            if !addr.is_empty() {
                if let Ok(sock) = TcpStream::connect(addr) {
                    sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                    let _ = sock.set_nodelay(true);
                    let mut conn = GateConn {
                        sock,
                        dec: FrameDecoder::new(),
                    };
                    if conn.send(&GateMsg::Hello { producer }).is_ok() {
                        return conn;
                    }
                }
            }
        }
        thread::sleep(Duration::from_millis(50));
    }
}

/// One stop-and-wait exchange, resending across reconnects until the
/// gateway answers. Resends are safe by construction: the gateway
/// dedups on batch id, so a batch whose ack was lost to the crash is
/// re-acked without being re-admitted.
fn exchange(
    conn: &mut GateConn,
    addr_file: &Path,
    producer: u64,
    deadline: Instant,
    msg: &GateMsg,
) -> GateMsg {
    loop {
        assert!(
            Instant::now() < deadline,
            "producer {producer} got no answer in time"
        );
        if conn.send(msg).is_err() {
            *conn = connect_gate(addr_file, producer, deadline);
            continue;
        }
        match conn.recv() {
            Some(reply) => return reply,
            None => *conn = connect_gate(addr_file, producer, deadline),
        }
    }
}

/// A well-behaved producer: `BATCHES` strictly increasing batches,
/// each retried until `Accepted`, then `Fin` retried until `FinOk`.
fn run_producer(addr_file: PathBuf, producer: u64, finished: Arc<AtomicUsize>) {
    let deadline = Instant::now() + PRODUCER_DEADLINE;
    let mut conn = connect_gate(&addr_file, producer, deadline);
    for b in 1..=BATCHES {
        let msg = GateMsg::Batch {
            batch: b,
            events: batch_events(producer, b),
        };
        loop {
            match exchange(&mut conn, &addr_file, producer, deadline, &msg) {
                GateMsg::Accepted { batch } if batch == b => break,
                GateMsg::Busy { retry_after_ms, .. } => {
                    thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 100)));
                }
                other => panic!("producer {producer} batch {b}: unexpected reply {other:?}"),
            }
        }
        thread::sleep(PACE);
    }
    match exchange(
        &mut conn,
        &addr_file,
        producer,
        deadline,
        &GateMsg::Fin { producer },
    ) {
        GateMsg::FinOk => {}
        other => panic!("producer {producer} fin: unexpected reply {other:?}"),
    }
    finished.fetch_add(1, Ordering::SeqCst);
}

/// The hostile producer: one batch that always exceeds the admission
/// budget, offered over and over (across the kill too) — it must be
/// shed with `Busy` every single time, before and after recovery. It
/// `Fin`s last so its shed loop keeps pressure on the gate for the
/// whole run; a `Fin` acked at any point would survive rollbacks
/// regardless (the fin WAL marker — see `chaos_matrix`).
fn run_oversize(addr_file: PathBuf, finished: Arc<AtomicUsize>) {
    let producer = OVERSIZE_PRODUCER;
    let deadline = Instant::now() + PRODUCER_DEADLINE;
    let msg = GateMsg::Batch {
        batch: 1,
        events: (0..OVERSIZE_EVENTS)
            .map(|j| (j % KEYS, OVERSIZE_VALUE))
            .collect(),
    };
    let mut conn = connect_gate(&addr_file, producer, deadline);
    let mut sheds = 0u64;
    while finished.load(Ordering::SeqCst) < PRODUCERS as usize {
        assert!(
            Instant::now() < deadline,
            "oversize producer outlived its deadline"
        );
        match exchange(&mut conn, &addr_file, producer, deadline, &msg) {
            GateMsg::Busy { retry_after_ms, .. } => {
                sheds += 1;
                thread::sleep(Duration::from_millis(retry_after_ms.clamp(5, 100)));
            }
            GateMsg::Accepted { .. } => panic!("oversize batch admitted — budget not enforced"),
            other => panic!("oversize producer: unexpected reply {other:?}"),
        }
    }
    assert!(sheds > 0, "oversize batch was never offered");
    match exchange(
        &mut conn,
        &addr_file,
        producer,
        deadline,
        &GateMsg::Fin { producer },
    ) {
        GateMsg::FinOk => {}
        other => panic!("oversize fin: unexpected reply {other:?}"),
    }
}

/// Runs one full gateway cluster (controller + 2 workers + 5 producer
/// threads) and returns `(recoveries line, sink lines)`. With
/// `kill_gate_host`, SIGKILLs the worker hosting the gateway once two
/// application checkpoints are complete and spawns a spare.
fn run_gate_cluster(tag: &str, kill_gate_host: bool) -> (String, Vec<String>) {
    let dir = fresh_dir(tag);
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&dir).spawn().unwrap());
    cluster.push(worker(&dir, "wa").spawn().unwrap());
    // Gate placement reverses the round-robin: with two workers the
    // gateway (op0) lands on wb, away from the sink on wa — killing wb
    // kills the gate's host without destroying the sink.
    let victim = cluster.push(worker(&dir, "wb").spawn().unwrap());

    let addr_file = dir.join("store").join("gate_op0.addr");
    let finished = Arc::new(AtomicUsize::new(0));
    let mut producers = Vec::new();
    for p in 1..=PRODUCERS {
        let af = addr_file.clone();
        let fin = finished.clone();
        producers.push(thread::spawn(move || run_producer(af, p, fin)));
    }
    {
        let af = addr_file.clone();
        let fin = finished.clone();
        producers.push(thread::spawn(move || run_oversize(af, fin)));
    }

    if kill_gate_host {
        let deadline = Instant::now() + Duration::from_secs(40);
        while max_complete_epoch(&dir.join("store")) < 2 {
            assert!(
                Instant::now() < deadline,
                "no complete checkpoint appeared in time"
            );
            thread::sleep(Duration::from_millis(20));
        }
        assert!(
            !dir.join("result").exists(),
            "stream finished before the kill; raise BATCHES"
        );
        cluster.0[victim].kill().unwrap(); // SIGKILL on unix
        let _ = cluster.0[victim].wait();
        cluster.push(worker(&dir, "wc").spawn().unwrap());
    }

    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(110));
    assert!(status.success(), "controller failed: {status:?}");
    for h in producers {
        h.join().expect("producer thread panicked");
    }

    // The run ledger carries the gateway's telemetry on the gate op's
    // rows — admissions, sheds — and zeros everywhere else.
    let records = read_ledger(&dir.join("store").join(LEDGER_FILE)).expect("run ledger must parse");
    let gate_max = |f: fn(&ms_wire::LedgerRecord) -> u64| {
        records
            .iter()
            .filter(|r| r.op == 0)
            .map(f)
            .max()
            .unwrap_or(0)
    };
    assert!(
        gate_max(|r| r.gate_accepted) > 0,
        "ledger never recorded gateway admissions"
    );
    assert!(
        gate_max(|r| r.gate_shed) > 0,
        "oversize shedding never reached the ledger"
    );
    assert!(
        records
            .iter()
            .filter(|r| r.op != 0)
            .all(|r| r.gate_accepted == 0 && r.gate_shed == 0),
        "non-gateway rows must carry zero gate columns"
    );

    let result = parse_result(&dir.join("result"));
    drop(cluster);
    let _ = fs::remove_dir_all(&dir);
    result
}

#[test]
fn sigkill_of_gate_host_loses_no_acked_batch() {
    // --- Reference run: no failure. ---
    let (recoveries, ref_sinks) = run_gate_cluster("gate_ref", false);
    assert_eq!(recoveries, "recoveries=0");
    assert_eq!(ref_sinks.len(), 1);

    // --- Failure run: SIGKILL the gateway's worker mid-stream. ---
    let (recoveries, sinks) = run_gate_cluster("gate_kill", true);
    assert_eq!(recoveries, "recoveries=1");

    // Byte-identical to the unfailed run: every acked batch exactly
    // once, nothing lost, nothing duplicated.
    assert_eq!(sinks, ref_sinks, "recovered sink differs from unfailed run");

    let (sum, count) = decode_sink(&sinks[0]);
    let mut expected = 0i64;
    for p in 1..=PRODUCERS {
        for b in 1..=BATCHES {
            for j in 0..EVENTS_PER_BATCH {
                // The chain's Doubler doubles every value on the way
                // to the Summer sink.
                expected += 2 * value(p, b, j);
            }
        }
    }
    assert_eq!(
        sum, expected,
        "acked events lost or duplicated — or the shed oversize batch leaked through"
    );
    // One tuple per distinct key per batch proves pre-aggregation ran
    // at the gate, and exactly once each proves the dedup held across
    // the SIGKILL.
    assert_eq!(count, PRODUCERS * BATCHES * KEYS);
}
