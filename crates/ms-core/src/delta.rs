//! Incremental (delta) checkpoint state: canonical key→bytes tables,
//! per-epoch change sets, and the fold that rebuilds a full snapshot
//! from a base plus a delta chain.
//!
//! The paper's checkpoint cost is dominated by state volume (§IV shows
//! checkpoint duration scaling linearly with state size), yet most
//! epochs mutate only a small fraction of a large operator's keys. A
//! delta-capable operator keeps its state in a canonical *table* —
//! sorted `u64` keys mapping to opaque value bytes — and per epoch
//! persists only the keys written or removed since the previous
//! capture ([`StateDelta`]), with a periodic full snapshot as the
//! chain's base (the rebase policy lives in the stores).
//!
//! Byte-identity is the contract that makes recovery from a chain
//! indistinguishable from recovery from a full snapshot: a full
//! snapshot is *defined* as [`encode_table`] of the table, which
//! serializes entries in ascending key order, so
//! `fold(base, deltas) == snapshot_at_last_epoch` holds exactly — not
//! just semantically — and the property test in this module pins it.
//!
//! Encoding reuses the tagged snapshot codec with exact pre-sizing:
//! a table entry is one tagged `u64` key plus one tagged byte string
//! ([`encoded_entry_bytes`]), and the table is a counted sequence of
//! entries ([`encoded_table_bytes`]), so writers allocate once.

use std::collections::{BTreeMap, BTreeSet};

use crate::codec::{SnapshotReader, SnapshotWriter};
use crate::error::Result;

/// The changes one epoch made to a canonical state table, relative to
/// the previous capture (the delta's *base*).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StateDelta {
    /// Keys written since the base, with their new value bytes, in
    /// ascending key order.
    pub changed: Vec<(u64, Vec<u8>)>,
    /// Keys removed since the base, in ascending order. Removing a key
    /// absent from the folded base is a no-op.
    pub removed: Vec<u64>,
    /// The operator's logical state size at capture time (what a full
    /// snapshot's `logical_bytes` would have been).
    pub logical_bytes: u64,
}

impl StateDelta {
    /// Encoded size of this delta's payload (changed table + removed
    /// list + logical size), for exact pre-sizing.
    pub fn encoded_bytes(&self) -> usize {
        // logical_bytes + counted changed entries + counted removed keys.
        9 + encoded_table_bytes(self.changed.iter().map(|(_, v)| v.len()))
            + 9
            + 9 * self.removed.len()
    }

    /// Writes the delta payload (logical size, changed entries,
    /// removed keys) into `w`.
    pub fn encode_into(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.logical_bytes);
        w.put_seq(self.changed.iter(), |w, (k, v)| {
            w.put_u64(*k).put_bytes(v);
        });
        w.put_seq(self.removed.iter(), |w, k| {
            w.put_u64(*k);
        });
    }

    /// Reads a delta payload written by [`StateDelta::encode_into`].
    pub fn decode_from(r: &mut SnapshotReader<'_>) -> Result<StateDelta> {
        let logical_bytes = r.get_u64()?;
        let changed = r.get_seq(|r| Ok((r.get_u64()?, r.get_bytes()?)))?;
        let removed = r.get_seq(|r| r.get_u64())?;
        Ok(StateDelta {
            changed,
            removed,
            logical_bytes,
        })
    }
}

/// Encoded size of one table entry: a tagged `u64` key (9 bytes) plus
/// a tagged byte string (9 + len).
pub fn encoded_entry_bytes(value_len: usize) -> usize {
    18 + value_len
}

/// Encoded size of a whole table: the counted sequence header plus
/// every entry. Exact — [`encode_table`] produces precisely this many
/// bytes.
pub fn encoded_table_bytes(value_lens: impl Iterator<Item = usize>) -> usize {
    9 + value_lens.map(encoded_entry_bytes).sum::<usize>()
}

/// Serializes a table canonically: a counted sequence of
/// `(key, value bytes)` entries in ascending key order (`BTreeMap`
/// iteration order). This *is* the full-snapshot byte format of every
/// delta-capable operator.
pub fn encode_table(table: &BTreeMap<u64, Vec<u8>>) -> Vec<u8> {
    let mut w = SnapshotWriter::with_capacity(encoded_table_bytes(table.values().map(Vec::len)));
    w.put_seq(table.iter(), |w, (k, v)| {
        w.put_u64(*k).put_bytes(v);
    });
    w.finish()
}

/// Decodes a canonical table written by [`encode_table`].
pub fn decode_table(buf: &[u8]) -> Result<BTreeMap<u64, Vec<u8>>> {
    let mut r = SnapshotReader::new(buf);
    let entries = r.get_seq(|r| Ok((r.get_u64()?, r.get_bytes()?)))?;
    Ok(entries.into_iter().collect())
}

/// Applies one delta to a decoded table in place.
pub fn apply_delta(table: &mut BTreeMap<u64, Vec<u8>>, delta: &StateDelta) {
    for (k, v) in &delta.changed {
        table.insert(*k, v.clone());
    }
    for k in &delta.removed {
        table.remove(k);
    }
}

/// Folds a delta chain onto a full-snapshot base: decodes `base`,
/// applies every delta oldest-first, and re-encodes canonically. The
/// result is byte-identical to the full snapshot the operator would
/// have produced at the last delta's epoch.
pub fn fold(base: &[u8], deltas: &[StateDelta]) -> Result<Vec<u8>> {
    let mut table = decode_table(base)?;
    for d in deltas {
        apply_delta(&mut table, d);
    }
    Ok(encode_table(&table))
}

/// A dirty-tracking canonical state table — the building block for
/// delta-capable operators. Mutations mark keys; [`DeltaTable::take_delta`]
/// drains the marks into a [`StateDelta`]; [`DeltaTable::snapshot`]
/// serializes the full table in the canonical format the fold rebuilds.
#[derive(Clone, Debug, Default)]
pub struct DeltaTable {
    entries: BTreeMap<u64, Vec<u8>>,
    dirty: BTreeSet<u64>,
    removed: BTreeSet<u64>,
}

impl PartialEq for DeltaTable {
    /// Tables compare by content only: dirty marks are capture-cycle
    /// bookkeeping, not state (a restored table is clean).
    fn eq(&self, other: &DeltaTable) -> bool {
        self.entries == other.entries
    }
}

impl DeltaTable {
    /// Creates an empty, clean table.
    pub fn new() -> DeltaTable {
        DeltaTable::default()
    }

    /// Rebuilds a table from canonical snapshot bytes. The result is
    /// clean: the snapshot is by definition the last durable capture.
    pub fn restore(buf: &[u8]) -> Result<DeltaTable> {
        Ok(DeltaTable {
            entries: decode_table(buf)?,
            dirty: BTreeSet::new(),
            removed: BTreeSet::new(),
        })
    }

    /// Value bytes for a key.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.entries.get(&key).map(Vec::as_slice)
    }

    /// Inserts or overwrites a key, marking it dirty.
    pub fn insert(&mut self, key: u64, value: Vec<u8>) {
        self.removed.remove(&key);
        self.dirty.insert(key);
        self.entries.insert(key, value);
    }

    /// Removes a key, recording the removal for the next delta.
    pub fn remove(&mut self, key: u64) -> Option<Vec<u8>> {
        let prev = self.entries.remove(&key);
        self.dirty.remove(&key);
        // Recorded even if the key was never present here: removing an
        // absent key is a no-op when the chain is folded.
        self.removed.insert(key);
        prev
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of keys the next [`DeltaTable::take_delta`] would carry.
    pub fn pending_changes(&self) -> usize {
        self.dirty.len() + self.removed.len()
    }

    /// Iterates live entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.entries.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Sum of value lengths (a cheap logical-size building block).
    pub fn value_bytes(&self) -> u64 {
        self.entries.values().map(|v| v.len() as u64).sum()
    }

    /// Exact size of [`DeltaTable::snapshot`]'s output.
    pub fn encoded_bytes(&self) -> usize {
        encoded_table_bytes(self.entries.values().map(Vec::len))
    }

    /// Serializes the full table canonically (see [`encode_table`]).
    pub fn snapshot(&self) -> Vec<u8> {
        encode_table(&self.entries)
    }

    /// Drains the dirty/removed marks into a [`StateDelta`] relative
    /// to the previous capture; the table is clean afterwards.
    pub fn take_delta(&mut self, logical_bytes: u64) -> StateDelta {
        let changed = std::mem::take(&mut self.dirty)
            .into_iter()
            .filter_map(|k| self.entries.get(&k).map(|v| (k, v.clone())))
            .collect();
        let removed = std::mem::take(&mut self.removed).into_iter().collect();
        StateDelta {
            changed,
            removed,
            logical_bytes,
        }
    }

    /// Clears the dirty/removed marks without producing a delta (used
    /// when a capture falls back to a full snapshot: the snapshot
    /// already covers everything).
    pub fn mark_clean(&mut self) {
        self.dirty.clear();
        self.removed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(tag: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| ((tag as usize + i) % 251) as u8).collect()
    }

    #[test]
    fn table_roundtrip_is_canonical() {
        let mut t = DeltaTable::new();
        t.insert(5, val(5, 10));
        t.insert(1, val(1, 3));
        t.insert(9, val(9, 0));
        let bytes = t.snapshot();
        assert_eq!(bytes.len(), t.encoded_bytes());
        let back = DeltaTable::restore(&bytes).unwrap();
        assert_eq!(back, t);
        // Insertion order cannot matter: same content, same bytes.
        let mut u = DeltaTable::new();
        u.insert(9, val(9, 0));
        u.insert(5, val(5, 10));
        u.insert(1, val(1, 3));
        assert_eq!(u.snapshot(), bytes);
    }

    #[test]
    fn delta_payload_roundtrips_with_exact_size() {
        let d = StateDelta {
            changed: vec![(2, val(2, 7)), (4, val(4, 1))],
            removed: vec![3, 8],
            logical_bytes: 123,
        };
        let mut w = SnapshotWriter::with_capacity(d.encoded_bytes());
        d.encode_into(&mut w);
        let bytes = w.finish();
        assert_eq!(bytes.len(), d.encoded_bytes());
        let back = StateDelta::decode_from(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn fold_matches_full_snapshot() {
        let mut t = DeltaTable::new();
        for k in 0..20u64 {
            t.insert(k, val(k, (k % 5) as usize));
        }
        let base = t.snapshot();
        t.mark_clean();
        let mut deltas = Vec::new();
        // Epoch 1: overwrite a few, remove one.
        t.insert(3, val(33, 9));
        t.insert(19, val(40, 2));
        t.remove(7);
        deltas.push(t.take_delta(0));
        // Epoch 2: re-insert the removed key, remove an absent key.
        t.insert(7, val(77, 4));
        t.remove(100);
        deltas.push(t.take_delta(0));
        let folded = fold(&base, &deltas).unwrap();
        assert_eq!(folded, t.snapshot());
    }

    #[test]
    fn take_delta_drains_marks() {
        let mut t = DeltaTable::new();
        t.insert(1, vec![1]);
        t.remove(2);
        assert_eq!(t.pending_changes(), 2);
        let d = t.take_delta(5);
        assert_eq!(d.changed, vec![(1, vec![1])]);
        assert_eq!(d.removed, vec![2]);
        assert_eq!(d.logical_bytes, 5);
        assert_eq!(t.pending_changes(), 0);
        assert_eq!(
            t.take_delta(5),
            StateDelta {
                logical_bytes: 5,
                ..StateDelta::default()
            }
        );
    }

    #[test]
    fn insert_after_remove_is_a_change_not_a_removal() {
        let mut t = DeltaTable::new();
        t.insert(4, vec![9]);
        t.mark_clean();
        t.remove(4);
        t.insert(4, vec![8]);
        let d = t.take_delta(0);
        assert_eq!(d.changed, vec![(4, vec![8])]);
        assert!(d.removed.is_empty());
    }

    #[test]
    fn dirty_key_later_removed_is_a_removal_only() {
        let mut t = DeltaTable::new();
        t.insert(6, vec![1]);
        t.remove(6);
        let d = t.take_delta(0);
        assert!(d.changed.is_empty());
        assert_eq!(d.removed, vec![6]);
    }

    #[test]
    fn hostile_table_bytes_error_not_panic() {
        assert!(decode_table(&[0xFF; 16]).is_err());
        assert!(DeltaTable::restore(b"junk").is_err());
    }
}
