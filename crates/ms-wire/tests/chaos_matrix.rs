//! The correlated-failure chaos matrix: six scenarios, each a real
//! multi-process cluster with a deterministic fault injected, each
//! held to one gold bar — the sink's final state is **byte-identical**
//! to an unfailed run, and the run ledger stays epoch-contiguous
//! inside every generation.
//!
//! | scenario | fault | detector exercised |
//! |---|---|---|
//! | double worker kill | SIGKILL both workers in the same instant | heartbeat timeout, correlated |
//! | kill during checkpoint | SIGKILL while an application checkpoint is mid-flight (slow-disk persister widens the window) | heartbeat timeout + tmp/rename idempotence |
//! | controller + worker | SIGKILL controller and a worker together, restart on the same store | controller resume (ledger + epoch watermark) |
//! | severed edge | `MS_FAULT_PLAN` kills one edge's frames, generation-scoped | barrier-stall rollback, partition heals on redeploy |
//! | flaky slow disk | `MS_FAULT_STORE` latency + every-Nth transient write failures | `RetryStore` absorption — zero rollbacks |
//! | gate-host kill | SIGKILL the gateway worker under live producers, one producer already `Fin`ed and gone | fin WAL marker replay + batch dedup |
//!
//! The five chain-shaped scenarios share one reference run (same
//! graph, same limit — byte-comparable by construction); the gateway
//! scenario drives its own.

mod chaos_support;

use std::fs;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use chaos_support::*;

/// The unfailed chain3 run every chain scenario diffs against: run
/// once per test binary, shared across scenarios (they use identical
/// graph knobs, so their sink bytes must match it exactly).
static REFERENCE: OnceLock<Vec<String>> = OnceLock::new();

fn reference_sinks() -> &'static [String] {
    REFERENCE.get_or_init(|| {
        let dir = fresh_dir("ref");
        let mut cluster = Cluster(Vec::new());
        let ctl = cluster.push(controller(&dir, &CtrlOpts::default()).spawn().unwrap());
        cluster.push(worker(&dir, "wa", &[]).spawn().unwrap());
        cluster.push(worker(&dir, "wb", &[]).spawn().unwrap());
        let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(80));
        assert!(status.success(), "reference controller failed: {status:?}");
        let (rec, sinks) = parse_result(&dir.join("result"));
        assert_eq!(recoveries(&rec), 0);
        assert_eq!(sinks.len(), 1);
        let (sum, count) = decode_sink(&sinks[0]);
        assert_eq!((sum, count), chain_expected());
        check_ledger(&dir.join("store"), CHAIN_OPS, 1, None);
        drop(cluster);
        let _ = fs::remove_dir_all(&dir);
        sinks
    })
}

/// Blocks until at least `n` complete application checkpoints exist,
/// and asserts the stream has not already finished — a kill landing
/// after completion tests nothing.
fn wait_checkpoints_mid_stream(dir: &std::path::Path, n: u64) {
    let store = dir.join("store");
    wait_until("complete checkpoint", Duration::from_secs(40), || {
        max_complete_epoch(&store, CHAIN_OPS) >= n
    });
    assert!(
        !dir.join("result").exists(),
        "stream finished before the fault; raise --limit"
    );
}

/// Scenario 1 — correlated worker loss: both workers of the cluster
/// SIGKILLed in the same instant (the rack-level failure the paper's
/// commodity-DC argument leads with), two spares take the bench.
#[test]
fn double_worker_sigkill_recovers_to_identical_answer() {
    let refs = reference_sinks();
    let dir = fresh_dir("dblkill");
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&dir, &CtrlOpts::default()).spawn().unwrap());
    let wa = cluster.push(worker(&dir, "wa", &[]).spawn().unwrap());
    let wb = cluster.push(worker(&dir, "wb", &[]).spawn().unwrap());

    wait_checkpoints_mid_stream(&dir, 2);
    for victim in [wa, wb] {
        cluster.0[victim].kill().unwrap(); // SIGKILL on unix
    }
    for victim in [wa, wb] {
        let _ = cluster.0[victim].wait();
    }
    cluster.push(worker(&dir, "wc", &[]).spawn().unwrap());
    cluster.push(worker(&dir, "wd", &[]).spawn().unwrap());

    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(80));
    assert!(status.success(), "recovery controller failed: {status:?}");
    let (rec, sinks) = parse_result(&dir.join("result"));
    // One rollback if both deaths land in the same detection tick; a
    // second if a straggler redeploy caught a half-dead bench.
    assert!(recoveries(&rec) >= 1, "no recovery recorded: {rec}");
    assert_eq!(sinks, refs, "recovered sink differs from unfailed run");
    check_ledger(&dir.join("store"), CHAIN_OPS, 2, None);

    drop(cluster);
    let _ = fs::remove_dir_all(&dir);
}

/// Scenario 2 — kill mid-checkpoint: a slow-disk persister
/// (`MS_FAULT_STORE` checkpoint latency) holds each application
/// checkpoint open for hundreds of milliseconds, and the SIGKILL lands
/// while one is verifiably in flight — some but not all of the
/// epoch's files renamed into place. Recovery must treat the torn
/// epoch as incomplete and restore the previous complete one.
#[test]
fn sigkill_during_active_checkpoint_recovers() {
    let refs = reference_sinks();
    let dir = fresh_dir("midckpt");
    let slow = [("MS_FAULT_STORE", "slow_ckpt_us=40000")];
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&dir, &CtrlOpts::default()).spawn().unwrap());
    cluster.push(worker(&dir, "wa", &slow).spawn().unwrap());
    let victim = cluster.push(worker(&dir, "wb", &slow).spawn().unwrap());

    wait_checkpoints_mid_stream(&dir, 2);
    let store = dir.join("store");
    wait_until("checkpoint in flight", Duration::from_secs(40), || {
        partial_epoch(&store, CHAIN_OPS).is_some()
    });
    let torn = partial_epoch(&store, CHAIN_OPS);
    cluster.0[victim].kill().unwrap();
    let _ = cluster.0[victim].wait();
    cluster.push(worker(&dir, "wc", &slow).spawn().unwrap());

    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(80));
    assert!(status.success(), "recovery controller failed: {status:?}");
    let (rec, sinks) = parse_result(&dir.join("result"));
    assert!(recoveries(&rec) >= 1, "no recovery recorded: {rec}");
    assert_eq!(
        sinks, refs,
        "kill during epoch {torn:?} broke exactly-once: sink differs from unfailed run"
    );
    check_ledger(&store, CHAIN_OPS, 2, None);

    drop(cluster);
    let _ = fs::remove_dir_all(&dir);
}

/// Scenario 3 — control-plane + data-plane double fault: SIGKILL the
/// controller and a worker in the same instant, then restart a fresh
/// controller (and bench) on the same store. The new controller must
/// resume — generation numbering past the ledger's last record, epoch
/// numbering past every checkpoint any incarnation started, first
/// deployment restoring from the latest complete checkpoint — and the
/// ledger, torn mid-append by the first controller's death, must
/// repair at reopen and stay contiguous across both incarnations.
#[test]
fn controller_and_worker_double_fault_resumes_on_same_store() {
    let refs = reference_sinks();
    let dir = fresh_dir("dblfault");
    let mut cluster = Cluster(Vec::new());
    let ctl1 = cluster.push(controller(&dir, &CtrlOpts::default()).spawn().unwrap());
    let wa = cluster.push(worker(&dir, "wa", &[]).spawn().unwrap());
    let wb = cluster.push(worker(&dir, "wb", &[]).spawn().unwrap());

    wait_checkpoints_mid_stream(&dir, 2);
    cluster.0[ctl1].kill().unwrap();
    cluster.0[wb].kill().unwrap();
    let _ = cluster.0[ctl1].wait();
    let _ = cluster.0[wb].wait();
    // The survivor exits on its own when the control connection dies.
    wait_exit(&mut cluster.0[wa], Duration::from_secs(15));

    // Fresh incarnation on the same store. The stale address file must
    // go first: a worker that read it before the new controller
    // publishes would chase a dead port.
    fs::remove_file(dir.join("addr")).unwrap();
    let ctl2 = cluster.push(controller(&dir, &CtrlOpts::default()).spawn().unwrap());
    cluster.push(worker(&dir, "wc", &[]).spawn().unwrap());
    cluster.push(worker(&dir, "wd", &[]).spawn().unwrap());

    let status = wait_exit(&mut cluster.0[ctl2], Duration::from_secs(80));
    assert!(status.success(), "resumed controller failed: {status:?}");
    let (rec, sinks) = parse_result(&dir.join("result"));
    assert!(
        recoveries(&rec) >= 1,
        "resumed controller did not count the interrupted run: {rec}"
    );
    assert_eq!(sinks, refs, "resumed run differs from unfailed run");
    // Two generations minimum: the first controller's and the resumed
    // one's — with contiguous epochs inside each.
    check_ledger(&dir.join("store"), CHAIN_OPS, 2, None);

    drop(cluster);
    let _ = fs::remove_dir_all(&dir);
}

/// Scenario 4 — network partition that heals: `MS_FAULT_PLAN` severs
/// the op1→op2 edge after 40 frames, scoped to `gen<=1`. Every
/// process stays alive, so heartbeat detection never fires — only the
/// barrier-stall detector can see the partition. The rollback bumps
/// the generation, which is exactly what heals the edge.
#[test]
fn severed_edge_partition_heals_after_generation_bump() {
    let refs = reference_sinks();
    let dir = fresh_dir("partition");
    let plan = [("MS_FAULT_PLAN", "seed=11;sever:1->2:after=40,gen<=1")];
    let opts = CtrlOpts {
        barrier_stall_ms: 1500,
        ..CtrlOpts::default()
    };
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&dir, &opts).spawn().unwrap());
    cluster.push(worker(&dir, "wa", &plan).spawn().unwrap());
    cluster.push(worker(&dir, "wb", &plan).spawn().unwrap());

    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(80));
    assert!(
        status.success(),
        "partitioned controller failed: {status:?}"
    );
    let (rec, sinks) = parse_result(&dir.join("result"));
    assert!(
        recoveries(&rec) >= 1,
        "the barrier-stall detector never fired: {rec}"
    );
    assert_eq!(sinks, refs, "healed run differs from unfailed run");
    // Generation 1 never closes a barrier (the severed edge eats its
    // tokens), so the ledger may start at generation 2 — but whatever
    // generations it has must be contiguous inside.
    let records = check_ledger(&dir.join("store"), CHAIN_OPS, 1, None);
    assert!(
        records.iter().all(|r| r.generation >= 2),
        "generation 1 closed a barrier across a severed edge"
    );

    drop(cluster);
    let _ = fs::remove_dir_all(&dir);
}

/// Scenario 5 — flaky, slow disk under load: every write pays latency
/// and every 7th write fails transiently. The `RetryStore` must
/// absorb all of it — the run finishes with *zero* rollbacks, because
/// a flaky disk is not a failed worker.
#[test]
fn flaky_slow_disk_is_absorbed_without_recovery() {
    let refs = reference_sinks();
    let dir = fresh_dir("flakydisk");
    let flaky = [(
        "MS_FAULT_STORE",
        "slow_us=200;slow_ckpt_us=3000;fail_every=7",
    )];
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&dir, &CtrlOpts::default()).spawn().unwrap());
    cluster.push(worker(&dir, "wa", &flaky).spawn().unwrap());
    cluster.push(worker(&dir, "wb", &flaky).spawn().unwrap());

    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(80));
    assert!(status.success(), "flaky-disk controller failed: {status:?}");
    let (rec, sinks) = parse_result(&dir.join("result"));
    assert_eq!(
        recoveries(&rec),
        0,
        "transient disk faults escalated to a rollback — retry layer not absorbing"
    );
    assert_eq!(sinks, refs, "flaky-disk run differs from unfailed run");
    check_ledger(&dir.join("store"), CHAIN_OPS, 1, None);

    drop(cluster);
    let _ = fs::remove_dir_all(&dir);
}

/// Gateway scenario knobs: producer 1 finishes early (its `Fin` is
/// released just before the kill), producers 2 and 3 stream through
/// the outage.
const GATE_PRODUCERS: u64 = 3;
const EARLY_BATCHES: u64 = 8;
const LATE_BATCHES: u64 = 60;

/// One full gateway cluster; with `kill_gate_host`, releases producer
/// 1's `Fin`, waits for its `FinOk`, then immediately SIGKILLs the
/// gateway's worker — so the fin's only durable home is the WAL
/// marker appended before the ack.
fn run_gate_cluster(tag: &str, kill_gate_host: bool) -> (u64, Vec<String>) {
    let dir = fresh_dir(tag);
    let opts = CtrlOpts {
        gate_producers: GATE_PRODUCERS,
        ..CtrlOpts::default()
    };
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&dir, &opts).spawn().unwrap());
    cluster.push(worker(&dir, "wa", &[]).spawn().unwrap());
    // Gate placement reverses the round-robin: the gateway (op0) lands
    // on wb, away from the sink on wa.
    let victim = cluster.push(worker(&dir, "wb", &[]).spawn().unwrap());

    let addr_file = dir.join("store").join("gate_op0.addr");
    let fin_gate = Arc::new(AtomicBool::new(false));
    let finished = Arc::new(AtomicUsize::new(0));
    let mut producers = Vec::new();
    for (p, batches, pace_ms, gated) in [
        (1, EARLY_BATCHES, 5, true),
        (2, LATE_BATCHES, 25, false),
        (3, LATE_BATCHES, 25, false),
    ] {
        let af = addr_file.clone();
        let fin = finished.clone();
        let gate = gated.then(|| fin_gate.clone());
        producers.push(thread::spawn(move || {
            run_producer(af, p, batches, Duration::from_millis(pace_ms), gate, fin)
        }));
    }

    let store = dir.join("store");
    wait_until("complete checkpoint", Duration::from_secs(40), || {
        max_complete_epoch(&store, CHAIN_OPS) >= 2
    });
    // Release the early producer's Fin only now, so its WAL marker
    // almost surely postdates the checkpoint the recovery restores.
    fin_gate.store(true, Ordering::SeqCst);
    wait_until("early producer FinOk", Duration::from_secs(30), || {
        finished.load(Ordering::SeqCst) >= 1
    });
    if kill_gate_host {
        assert!(
            !dir.join("result").exists(),
            "stream finished before the kill; raise LATE_BATCHES"
        );
        cluster.0[victim].kill().unwrap();
        let _ = cluster.0[victim].wait();
        cluster.push(worker(&dir, "wc", &[]).spawn().unwrap());
    }

    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(110));
    assert!(status.success(), "gate controller failed: {status:?}");
    for h in producers {
        h.join().expect("producer thread panicked");
    }
    check_ledger(
        &store,
        CHAIN_OPS,
        if kill_gate_host { 2 } else { 1 },
        Some(0),
    );
    let (rec, sinks) = parse_result(&dir.join("result"));
    drop(cluster);
    let _ = fs::remove_dir_all(&dir);
    (recoveries(&rec), sinks)
}

/// Scenario 6 — gateway-host kill under live producers. Producer 1 got
/// its `FinOk` and exited for good moments before the SIGKILL; under
/// the old "fin lives only in the dedup snapshot" design the recovered
/// gate would wait forever for a producer that never returns
/// (regression for the DESIGN.md liveness caveat). Producers 2 and 3
/// ride out the outage retrying un-acked batches; every acked batch
/// lands exactly once.
#[test]
fn gate_host_sigkill_under_live_producers_preserves_fins() {
    let (rec, ref_sinks) = run_gate_cluster("gate_ref", false);
    assert_eq!(rec, 0);
    assert_eq!(ref_sinks.len(), 1);

    let (rec, sinks) = run_gate_cluster("gate_kill", true);
    assert!(rec >= 1, "gate-host kill recorded no recovery");
    assert_eq!(sinks, ref_sinks, "recovered sink differs from unfailed run");

    let (sum, count) = decode_sink(&sinks[0]);
    let mut expected = 0i64;
    for (p, batches) in [(1, EARLY_BATCHES), (2, LATE_BATCHES), (3, LATE_BATCHES)] {
        for b in 1..=batches {
            for j in 0..EVENTS_PER_BATCH {
                // The chain's Doubler doubles every value on the way
                // to the Summer sink.
                expected += 2 * value(p, b, j);
            }
        }
    }
    assert_eq!(sum, expected, "acked events lost or duplicated");
    // One tuple per distinct key per batch: pre-aggregation ran at the
    // gate and the batch dedup held across the SIGKILL.
    assert_eq!(count, (EARLY_BATCHES + 2 * LATE_BATCHES) * KEYS);
}
