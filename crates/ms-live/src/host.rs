//! The operator-host layer: one HAU of the MS-src token protocol,
//! independent of *what carries its streams* and *what thread runs it*.
//!
//! A host owns a [`ms_core::operator::Operator`], a set of input
//! streams of [`HostMsg`], a set of [`OutputRoute`]s (one per logical
//! consumer, each either a single edge or a hash-sharded group of
//! edges), and (for sources) a [`SourceCmd`] channel from the
//! controller. The in-process runtime ([`crate::LiveRuntime`]) wires
//! hosts directly to each other with crossbeam channels and runs
//! [`run_host`] on one thread per HAU; the TCP runtime (`ms-wire`)
//! drives the same protocol through [`InteriorCore`] — the thread-free
//! interior state machine — from a small fixed apply pool fed by an
//! event loop. Either way the protocol logic — source preservation
//! before send, token alignment on fan-in, individual checkpoints
//! handed to a [`Persister`] — is this module's, unduplicated.
//!
//! # The alignment window (MS-src+ap)
//!
//! Interior hosts cut their checkpoint with a *non-blocking* alignment
//! window. Once an input has delivered its token for epoch `e`,
//! further tuples from that input are **buffered, never applied**,
//! until tokens for `e` have arrived on every live input. At that
//! point the host:
//!
//! 1. captures its state with [`Operator::snapshot_deferred`] — an
//!    O(handles) capture; serialization happens on the persister
//!    thread (the live stand-in for the forked COW child of §III-B),
//! 2. persists the buffered tuples as the **in-flight portion** of the
//!    checkpoint, together with per-input replay thresholds,
//! 3. forwards the token and only then applies the buffered tuples.
//!
//! Alignment state is kept per epoch (a deque of windows), so a fast
//! input may deliver the token for `e+1` while `e` is still aligning
//! without corrupting either cut. Recovery applies the persisted
//! in-flight tuples before reading any channel, and drops replayed
//! tuples below the recorded thresholds — each tuple is applied
//! exactly once even though upstream replay regenerates the captured
//! channel state.
//!
//! # Sharded producers and `persist_in_flight`
//!
//! The in-flight replay filter compares *sequence numbers*, which are
//! per-producer emission counters. That is sound exactly when a
//! producer regenerates the same tuples with the same sequence numbers
//! after a rollback — true for sources and for single-input interiors
//! (their input order is the edge order, which TCP and the channels
//! preserve), but **not** for fan-in producers, whose interleaving
//! across inputs is timing-dependent. A host whose upstream includes a
//! fan-in producer therefore runs with
//! [`HostWiring::persist_in_flight`] off: the cut records its replay
//! thresholds *before* folding the buffered tuples in and persists an
//! empty in-flight set, so the buffered tuples are simply regenerated
//! and re-delivered after a rollback — sequence-agnostic, at the cost
//! of a slightly larger replay. Deployments wired entirely from
//! deterministic producers (every pre-existing shape) keep the flag on
//! and their checkpoint bytes are unchanged.
//!
//! Invariant: a host with a `cmd` channel is a *source* and must have
//! no inputs; a host without one is interior (or a sink) and must have
//! at least one input.

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Select, Sender};
use ms_core::error::{Error, Result};
use ms_core::ids::{EpochId, OperatorId, PortId};
use ms_core::metrics::{BackpressureMeter, OperatorMeter};
use ms_core::operator::{DeferredSnapshot, Operator, OperatorContext, SnapshotPayload};
use ms_core::shard::shard_of;
use ms_core::time::SimTime;
use ms_core::tuple::{Fields, Tuple};

use crate::storage::{CkptState, CkptWrite, StableStore};

/// What travels on a live stream between two hosts.
#[derive(Debug)]
pub enum HostMsg {
    /// A data tuple.
    Data(Tuple),
    /// A run of data tuples delivered as one unit. Semantically
    /// identical to sending each tuple as [`HostMsg::Data`] in order —
    /// every tuple keeps its own `seq`, so replay and dedup are
    /// unchanged — but the batch crosses channels, inboxes, and the
    /// wire as a single message/frame. Shared so a fan-out edge can
    /// hand the same batch to several consumers without copying.
    DataBatch(Arc<[Tuple]>),
    /// A checkpoint token for the given epoch.
    Token(EpochId),
    /// End of stream: the upstream host drained and exited.
    Eos,
}

/// Controller commands delivered to source hosts.
#[derive(Debug, Clone, Copy)]
pub enum SourceCmd {
    /// Snapshot now, mark the stream boundary, emit a token.
    Checkpoint(EpochId),
    /// Finish generating and close the stream (graceful).
    Stop,
}

/// One persistence work item: an individual checkpoint on its way to
/// stable storage. The snapshot may still be deferred — the persister
/// thread resolves (serializes) it off the hot path.
pub struct PersistItem {
    /// Checkpoint epoch.
    pub epoch: EpochId,
    /// The operator the checkpoint belongs to.
    pub op: OperatorId,
    /// The state capture (possibly unserialized).
    pub snapshot: DeferredSnapshot,
    /// For a [`DeferredSnapshot::Delta`] capture, the epoch of the
    /// previous capture the delta builds on. Must be `Some` for delta
    /// captures — the persister refuses a delta without a base rather
    /// than persist an unfoldable chain link.
    pub base: Option<EpochId>,
    /// Next emission sequence at the boundary.
    pub next_seq: u64,
    /// The in-flight portion of the cut (input port, tuple).
    pub in_flight: Vec<(u32, Tuple)>,
    /// Per-input replay thresholds at the cut.
    pub resume_seq: Vec<u64>,
    /// Token-alignment wait for this cut (window opened → cut), µs.
    /// Zero for sources, which never align.
    pub align_us: u64,
    /// Per-operator meter the persister reports checkpoint bytes and
    /// phase timings into once the write lands. `None` disables
    /// telemetry for this item.
    pub meter: Option<Arc<OperatorMeter>>,
}

/// Called by the persister after each checkpoint write attempt with
/// the store's verdict: `Ok(complete)` or the storage error.
pub type DurableHook = Box<dyn Fn(EpochId, OperatorId, &Result<bool>) + Send>;

/// The background persister thread — the live stand-in for the forked
/// COW child of §III-B. Hosts hand it [`PersistItem`]s over a channel
/// and keep processing; it resolves deferred snapshots (the expensive
/// serialization) and writes them to the [`StableStore`]. Dropping
/// the `Persister` closes the channel and joins the thread, so every
/// queued checkpoint is durable before the owner proceeds.
pub struct Persister {
    handle: Option<JoinHandle<()>>,
    tx: Option<Sender<PersistItem>>,
}

impl Persister {
    /// Spawns the persister thread over a stable store.
    pub fn spawn(store: Arc<dyn StableStore>) -> Persister {
        Persister::spawn_with(store, None)
    }

    /// Spawns the persister with a hook invoked after every write —
    /// the TCP worker uses it to ack durable checkpoints to the
    /// controller (`CkptDone`), closing the epoch barrier.
    pub fn spawn_with(store: Arc<dyn StableStore>, on_durable: Option<DurableHook>) -> Persister {
        let (tx, rx) = unbounded::<PersistItem>();
        let handle = std::thread::spawn(move || {
            while let Ok(item) = rx.recv() {
                // Serialize phase: resolving the deferred capture is
                // where the expensive encoding happens.
                let serialize_start = Instant::now();
                let state = match (item.snapshot.resolve(), item.base) {
                    (SnapshotPayload::Full(s), _) => Ok(CkptState::Full(s)),
                    (SnapshotPayload::Delta(delta), Some(base)) => {
                        Ok(CkptState::Delta { base, delta })
                    }
                    (SnapshotPayload::Delta(_), None) => Err(Error::Storage(format!(
                        "delta capture {}/{} submitted without a base epoch",
                        item.epoch, item.op
                    ))),
                };
                let serialize_us = serialize_start.elapsed().as_micros() as u64;
                let encoded = match &state {
                    Ok(CkptState::Full(s)) => Some((s.data.len() as u64, false)),
                    Ok(CkptState::Delta { delta, .. }) => {
                        Some((delta.encoded_bytes() as u64, true))
                    }
                    Err(_) => None,
                };
                let persist_start = Instant::now();
                let outcome = state.and_then(|state| {
                    store.put_checkpoint(
                        item.epoch,
                        item.op,
                        CkptWrite {
                            state,
                            next_seq: item.next_seq,
                            in_flight: item.in_flight,
                            resume_seq: item.resume_seq,
                        },
                    )
                });
                if let Err(e) = &outcome {
                    eprintln!(
                        "persister: checkpoint {}/{} not persisted: {e}",
                        item.epoch, item.op
                    );
                } else if let (Some(m), Some((bytes, delta))) = (&item.meter, encoded) {
                    m.record_checkpoint(
                        item.epoch.0,
                        bytes,
                        delta,
                        item.align_us,
                        serialize_us,
                        persist_start.elapsed().as_micros() as u64,
                    );
                }
                if let Some(hook) = &on_durable {
                    hook(item.epoch, item.op, &outcome);
                }
            }
        });
        Persister {
            handle: Some(handle),
            tx: Some(tx),
        }
    }

    /// A sender handle for hosts to submit checkpoints on.
    pub fn sender(&self) -> Sender<PersistItem> {
        self.tx.as_ref().expect("persister running").clone()
    }
}

impl Drop for Persister {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---------------- output routing ----------------

/// Extracts the routing key from a tuple — the same function on every
/// producer of a sharded consumer, so one key always lands on one
/// shard.
pub type RouteKeyFn = Arc<dyn Fn(&Tuple) -> u64 + Send + Sync>;

/// One transmit edge a host can push a [`HostMsg`] down: a crossbeam
/// channel to a co-located host, or (in `ms-wire`) an apply-pool inbox
/// or a buffered egress socket. Returns `false` when the consumer is
/// gone for good — the host stops emitting, exactly as it does today
/// when a channel send fails.
pub trait EdgeTx: Send {
    /// Pushes one message; `false` = consumer gone.
    fn send(&self, msg: HostMsg) -> bool;
}

impl EdgeTx for Sender<HostMsg> {
    fn send(&self, msg: HostMsg) -> bool {
        Sender::send(self, msg).is_ok()
    }
}

impl EdgeTx for Box<dyn EdgeTx> {
    fn send(&self, msg: HostMsg) -> bool {
        (**self).send(msg)
    }
}

/// Where one *logical* out-edge delivers: either a single physical
/// edge, or the full shard group of a key-partitioned consumer. Data
/// tuples go to exactly one target (the key's shard); tokens and EOS
/// are broadcast to every target, because each shard instance aligns
/// and checkpoints as a first-class HAU.
pub struct OutputRoute {
    targets: Vec<Box<dyn EdgeTx>>,
    key: Option<RouteKeyFn>,
}

impl OutputRoute {
    /// A plain one-edge route (the unsharded wiring).
    pub fn single(tx: impl EdgeTx + 'static) -> OutputRoute {
        OutputRoute {
            targets: vec![Box::new(tx)],
            key: None,
        }
    }

    /// A hash-sharded route over a consumer's instance group, shard
    /// order. `key` must be deterministic in the tuple alone.
    pub fn sharded(targets: Vec<Box<dyn EdgeTx>>, key: RouteKeyFn) -> OutputRoute {
        debug_assert!(!targets.is_empty(), "a route needs at least one target");
        OutputRoute {
            targets,
            key: Some(key),
        }
    }

    /// Number of physical edges behind this route.
    pub fn width(&self) -> usize {
        self.targets.len()
    }

    /// Delivers a data tuple to the key's shard (or the only target).
    /// `false` = that consumer is gone.
    pub fn data(&self, t: Tuple) -> bool {
        let idx = match &self.key {
            Some(key) if self.targets.len() > 1 => shard_of(key(&t), self.targets.len()),
            _ => 0,
        };
        self.targets[idx].send(HostMsg::Data(t))
    }

    /// Delivers a run of data tuples as [`HostMsg::DataBatch`]es —
    /// one message per *shard*, not per tuple. An unsharded route gets
    /// the whole run in one message; a sharded route partitions the
    /// run by key first (relative order within each shard preserved)
    /// and sends each shard its own batch. Returns `false` if any
    /// receiving shard is gone.
    pub fn data_batch(&self, tuples: &[Tuple]) -> bool {
        if tuples.is_empty() {
            return true;
        }
        match &self.key {
            Some(key) if self.targets.len() > 1 => {
                let mut shards: Vec<Vec<Tuple>> = Vec::new();
                shards.resize_with(self.targets.len(), Vec::new);
                for t in tuples {
                    shards[shard_of(key(t), self.targets.len())].push(t.clone());
                }
                let mut ok = true;
                for (idx, shard) in shards.into_iter().enumerate() {
                    if shard.is_empty() {
                        continue;
                    }
                    ok &= self.targets[idx].send(HostMsg::DataBatch(shard.into()));
                }
                ok
            }
            _ => {
                let batch: Arc<[Tuple]> = tuples.iter().cloned().collect();
                self.targets[0].send(HostMsg::DataBatch(batch))
            }
        }
    }

    /// Broadcasts a checkpoint token to every shard instance.
    pub fn token(&self, epoch: EpochId) {
        for tx in &self.targets {
            let _ = tx.send(HostMsg::Token(epoch));
        }
    }

    /// Broadcasts end-of-stream to every shard instance.
    pub fn eos(&self) {
        for tx in &self.targets {
            let _ = tx.send(HostMsg::Eos);
        }
    }
}

/// Everything a host needs to run one HAU.
pub struct HostWiring {
    /// The operator's id (stamped on emitted tuples).
    pub op_id: OperatorId,
    /// The operator itself.
    pub op: Box<dyn Operator>,
    /// One receiver per input port, in port order. Empty for sources.
    pub inputs: Vec<Receiver<HostMsg>>,
    /// One route per *logical* output port, in port order. A sharded
    /// consumer is one route over its whole instance group, so the
    /// operator's fanout (what `emit_all` sees) stays the logical one.
    pub outputs: Vec<OutputRoute>,
    /// Controller command channel — present iff this is a source.
    pub cmd: Option<Receiver<SourceCmd>>,
    /// First emission sequence (restored from a checkpoint, else 0).
    pub restored_seq: u64,
    /// Preserved tuples to resend before generating (recovery).
    pub replay: Vec<Tuple>,
    /// Restored per-input replay thresholds: a tuple arriving on input
    /// `i` with `seq < resume_seq[i]` was already accounted for by the
    /// restored cut (applied or captured in-flight) and is dropped.
    /// Empty means no filtering (fresh start).
    pub resume_seq: Vec<u64>,
    /// The restored cut's in-flight tuples, applied before any channel
    /// input is read.
    pub in_flight: Vec<(u32, Tuple)>,
    /// If true, an exhausted source closes its stream on its own
    /// (first silent tick ⇒ Eos) instead of waiting for an explicit
    /// [`SourceCmd::Stop`]. The in-process runtime keeps this `false`
    /// (its `finish()` drives the stop); the TCP runtime sets it so a
    /// finite stream drains without a controller round-trip.
    pub auto_stop: bool,
    /// Epoch of the checkpoint this host was restored from, if any.
    /// Seeds incremental capture: a delta-capable operator's first
    /// delta after recovery chains on the restored epoch (whose
    /// snapshot is exactly the state `restore` loaded). `None` on a
    /// fresh start — the first capture is always full.
    pub last_durable: Option<EpochId>,
    /// Whether a cut persists its buffered tuples as the checkpoint's
    /// in-flight portion (see the module docs). On — the historical
    /// behavior — requires every upstream producer to regenerate
    /// identical sequence numbers after a rollback; a host downstream
    /// of a fan-in producer must run with it off.
    pub persist_in_flight: bool,
    /// Backpressure gauges this host keeps current while it runs —
    /// input-queue depth and alignment-window occupancy. `None`
    /// disables metering (tests, benches).
    pub meter: Option<Arc<BackpressureMeter>>,
    /// Per-operator flow/checkpoint meter (tuples in/out, bytes,
    /// state-size gauge, checkpoint phases). Updated on the hot path
    /// with relaxed atomics; `None` disables telemetry.
    pub telemetry: Option<Arc<OperatorMeter>>,
}

/// How a host ended: the operator with its final state, plus the first
/// stable-storage error if one stopped the stream early.
pub struct HostExit {
    /// The operator's id.
    pub op_id: OperatorId,
    /// The operator with its final state.
    pub op: Box<dyn Operator>,
    /// `Some` if the host stopped on a storage failure rather than a
    /// drained stream.
    pub error: Option<Error>,
}

/// Collects emissions inside a host.
struct LiveCtx {
    op: OperatorId,
    fanout: usize,
    emissions: Vec<(PortId, Fields)>,
    seed: u64,
}

impl OperatorContext for LiveCtx {
    fn emit_fields(&mut self, port: PortId, fields: Fields) {
        self.emissions.push((port, fields));
    }
    fn emit_all_fields(&mut self, fields: Fields) {
        for p in 0..self.fanout {
            self.emissions.push((PortId(p as u32), fields.clone()));
        }
    }
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
    fn self_id(&self) -> OperatorId {
        self.op
    }
    fn rand_f64(&mut self) -> f64 {
        (self.rand_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn rand_u64(&mut self) -> u64 {
        self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.seed
    }
}

/// Chooses the capture mode for one checkpoint: an incremental delta
/// chained on the previous capture when the operator supports it *and*
/// a previous capture exists, else a full snapshot. Returns the
/// capture plus the base epoch it builds on (`None` for fulls).
fn capture(
    op: &mut dyn Operator,
    last_captured: Option<EpochId>,
) -> (DeferredSnapshot, Option<EpochId>) {
    if let Some(base) = last_captured {
        if let Some(d) = op.snapshot_delta() {
            return (d, Some(base));
        }
    }
    (op.snapshot_deferred(), None)
}

/// One outstanding epoch in the alignment window of an interior host.
struct Window {
    epoch: EpochId,
    /// Which inputs have delivered this epoch's token.
    tokens: Vec<bool>,
    /// Tuples that arrived on a tokened input while this epoch was the
    /// youngest window covering that input — the in-flight portion of
    /// the cut.
    buffered: Vec<(u32, Tuple)>,
    /// When the first token opened this window — the cut's align-wait
    /// (the paper's "token collection" checkpoint phase) is measured
    /// from here.
    opened: Instant,
}

/// Stamps, meters, optionally preserves and routes a batch of
/// emissions. `Ok(true)`: keep going; `Ok(false)`: a consumer is gone;
/// `Err`: the preservation append failed.
fn route_emissions(
    op_id: OperatorId,
    outputs: &[OutputRoute],
    telemetry: &Option<Arc<OperatorMeter>>,
    next_seq: &mut u64,
    emissions: Vec<(PortId, Fields)>,
    preserve: Option<&Arc<dyn StableStore>>,
) -> Result<bool> {
    // Emission metering is batched: one pair of relaxed adds per call,
    // not per tuple.
    let mut emitted = 0u64;
    let mut emitted_bytes = 0u64;
    for (port, fields) in emissions {
        let t = Tuple::new(op_id, *next_seq, SimTime::ZERO, fields);
        *next_seq += 1;
        if telemetry.is_some() {
            emitted += 1;
            emitted_bytes += t.payload_bytes();
        }
        if let Some(store) = preserve {
            // Source preservation: stable storage *before* sending.
            store.append_log(op_id, t.clone())?;
        }
        if let Some(route) = outputs.get(port.index()) {
            if !route.data(t) {
                return Ok(false);
            }
        }
    }
    if let Some(m) = telemetry {
        if emitted > 0 {
            m.add_tuples_out(emitted, emitted_bytes);
        }
    }
    Ok(true)
}

/// The interior/sink half of the host protocol as a plain state
/// machine: feed it messages with [`InteriorCore::on_msg`] from
/// whatever execution engine owns the streams — a blocking
/// channel-select thread ([`run_host`]) or `ms-wire`'s apply pool —
/// and it runs token alignment, cuts checkpoints, and routes
/// downstream exactly as the threaded host always has.
pub struct InteriorCore {
    op_id: OperatorId,
    op: Box<dyn Operator>,
    outputs: Vec<OutputRoute>,
    n_in: usize,
    next_seq: u64,
    cut_seq: Vec<u64>,
    eos: Vec<bool>,
    windows: VecDeque<Window>,
    last_captured: Option<EpochId>,
    persist: Sender<PersistItem>,
    persist_in_flight: bool,
    meter: Option<Arc<BackpressureMeter>>,
    telemetry: Option<Arc<OperatorMeter>>,
    /// Applied-tuple counter driving the periodic state-gauge sample
    /// in [`InteriorCore::apply`].
    applied: u64,
    error: Option<Error>,
    done: bool,
}

/// How many applied tuples between state-size gauge samples. The
/// gauge used to be written only at checkpoint cuts, so heartbeats
/// between epochs reported the *previous* epoch's size — useless to
/// the live `+aa` profiler, which needs to see intra-epoch movement.
/// `state_size()` is a maintained counter for every built-in operator
/// (e.g. `DeltaTable::value_bytes`), so sampling every 32 tuples costs
/// one relaxed atomic store amortized 1/32 per tuple.
const STATE_GAUGE_SAMPLE_EVERY: u64 = 32;

impl InteriorCore {
    /// Builds the state machine from interior wiring (`cmd` must be
    /// `None`) and applies the restored cut's in-flight tuples — they
    /// were already inside this HAU at the cut, so they run before any
    /// stream input. May finish the host immediately (restored replay
    /// into a gone consumer); check [`InteriorCore::is_done`].
    pub fn new(mut w: HostWiring, persist: Sender<PersistItem>) -> InteriorCore {
        debug_assert!(w.cmd.is_none(), "a source host cannot run as InteriorCore");
        let n_in = w.inputs.len();
        debug_assert!(n_in > 0, "an interior host has at least one input");
        let cut_seq = if w.resume_seq.len() == n_in {
            w.resume_seq.clone()
        } else {
            vec![0; n_in]
        };
        let mut core = InteriorCore {
            op_id: w.op_id,
            op: w.op,
            outputs: w.outputs,
            n_in,
            next_seq: w.restored_seq,
            cut_seq,
            eos: vec![false; n_in],
            windows: VecDeque::new(),
            last_captured: w.last_durable,
            persist,
            persist_in_flight: w.persist_in_flight,
            meter: w.meter,
            telemetry: w.telemetry,
            applied: 0,
            error: None,
            done: false,
        };
        for (port, t) in std::mem::take(&mut w.in_flight) {
            if !core.apply(port, t) {
                core.done = true;
                break;
            }
        }
        core
    }

    /// Whether the host has finished (all inputs at EOS, a consumer
    /// gone, or a storage error). Once done, further messages are
    /// ignored.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether input `i` has delivered EOS.
    pub fn input_eos(&self, i: usize) -> bool {
        self.eos[i]
    }

    /// Publishes backpressure gauges: the driver supplies the queued
    /// input depth (it owns the queues); window occupancy comes from
    /// the alignment state here. No-op without a meter.
    pub fn publish_backpressure(&self, queued_inputs: u64) {
        if let Some(m) = &self.meter {
            m.set_queue_depth(queued_inputs);
            m.set_window_occupancy(
                self.windows.len() as u64,
                self.windows
                    .iter()
                    .map(|win| win.buffered.len())
                    .sum::<usize>() as u64,
            );
        }
    }

    /// Feeds one message from input `input`; returns `false` once the
    /// host is done and the driver should stop delivering.
    pub fn on_msg(&mut self, input: usize, msg: HostMsg) -> bool {
        if self.done {
            return false;
        }
        match msg {
            HostMsg::Data(t) => {
                // Replay filter: below the threshold means the restored
                // cut already accounted for this tuple.
                if t.seq < self.cut_seq[input] {
                    return true;
                }
                // Inside an alignment window for this input? Buffer
                // into the *youngest* window whose token this input has
                // delivered — the tuple arrived after that token.
                if let Some(win) = self.windows.iter_mut().rev().find(|win| win.tokens[input]) {
                    win.buffered.push((input as u32, t));
                    return true;
                }
                self.cut_seq[input] = t.seq + 1;
                if !self.apply(input as u32, t) {
                    self.done = true;
                }
            }
            HostMsg::DataBatch(batch) => {
                // A batch is exactly its tuples in order: each one runs
                // the full Data path (replay filter, window buffering,
                // apply) so alignment and recovery semantics cannot
                // drift from the per-tuple wire.
                for t in batch.iter() {
                    if !self.on_msg(input, HostMsg::Data(t.clone())) {
                        break;
                    }
                }
            }
            HostMsg::Token(epoch) => {
                if let Some(win) = self.windows.iter_mut().find(|win| win.epoch == epoch) {
                    win.tokens[input] = true;
                } else {
                    // Tokens ride each edge in epoch order, so a fresh
                    // epoch opens a new window at the back; the sorted
                    // insert is defensive.
                    let at = self.windows.partition_point(|win| win.epoch < epoch);
                    let mut tokens = vec![false; self.n_in];
                    tokens[input] = true;
                    self.windows.insert(
                        at,
                        Window {
                            epoch,
                            tokens,
                            buffered: Vec::new(),
                            opened: Instant::now(),
                        },
                    );
                }
                self.cut_ready_windows();
            }
            HostMsg::Eos => {
                self.eos[input] = true;
                self.cut_ready_windows();
                if self.eos.iter().all(|&e| e) {
                    self.done = true;
                }
            }
        }
        !self.done
    }

    /// Consumes the host: broadcasts EOS downstream and returns the
    /// exit record with the operator's final state.
    pub fn finish(mut self) -> HostExit {
        self.done = true;
        for route in &self.outputs {
            route.eos();
        }
        HostExit {
            op_id: self.op_id,
            op: self.op,
            error: self.error,
        }
    }

    fn apply(&mut self, port: u32, t: Tuple) -> bool {
        if let Some(m) = &self.telemetry {
            m.add_tuples_in(1);
            self.applied += 1;
            if self.applied % STATE_GAUGE_SAMPLE_EVERY == 0 {
                m.set_state_bytes(self.op.state_size());
            }
        }
        let mut ctx = LiveCtx {
            op: self.op_id,
            fanout: self.outputs.len(),
            emissions: Vec::new(),
            seed: t.seq ^ 0xA5A5_A5A5,
        };
        self.op.on_tuple(PortId(port), t, &mut ctx);
        match route_emissions(
            self.op_id,
            &self.outputs,
            &self.telemetry,
            &mut self.next_seq,
            ctx.emissions,
            None,
        ) {
            Ok(keep) => keep,
            Err(e) => {
                self.error = Some(e);
                false
            }
        }
    }

    /// Cuts every leading window whose tokens (or EOS) are complete.
    fn cut_ready_windows(&mut self) {
        while let Some(front) = self.windows.front() {
            if !(0..self.n_in).all(|i| front.tokens[i] || self.eos[i]) {
                break;
            }
            let win = self.windows.pop_front().expect("front window");
            let align_us = win.opened.elapsed().as_micros() as u64;
            let (in_flight, resume_seq) = if self.persist_in_flight {
                // Fold the in-flight portion into the replay thresholds
                // *before* recording them: the captured tuples count as
                // accounted-for by this cut.
                for (i, t) in &win.buffered {
                    let s = &mut self.cut_seq[*i as usize];
                    *s = (*s).max(t.seq + 1);
                }
                (win.buffered.clone(), self.cut_seq.clone())
            } else {
                // Sequence-agnostic cut (fan-in producers upstream):
                // thresholds recorded pre-fold, no in-flight persisted
                // — a rollback regenerates the buffered tuples and they
                // pass the threshold afresh.
                (Vec::new(), self.cut_seq.clone())
            };
            if let Some(m) = &self.telemetry {
                m.set_state_bytes(self.op.state_size());
            }
            let (snapshot, base) = capture(self.op.as_mut(), self.last_captured);
            self.last_captured = Some(win.epoch);
            let _ = self.persist.send(PersistItem {
                epoch: win.epoch,
                op: self.op_id,
                snapshot,
                base,
                next_seq: self.next_seq,
                in_flight,
                resume_seq,
                align_us,
                meter: self.telemetry.clone(),
            });
            for route in &self.outputs {
                route.token(win.epoch);
            }
            // The buffered tuples were only deferred for the cut:
            // apply them now, ahead of anything still in the streams.
            for (i, t) in win.buffered {
                if !self.persist_in_flight {
                    let s = &mut self.cut_seq[i as usize];
                    *s = (*s).max(t.seq + 1);
                }
                if !self.apply(i, t) {
                    self.done = true;
                    return;
                }
            }
        }
    }
}

/// Runs one HAU to completion on the current thread; returns a
/// [`HostExit`] with the operator (and its final state) for inspection
/// by the owner.
///
/// Sources: drain commands, tick the operator, preserve every emitted
/// tuple in the stable store *before* sending it (§III-A source
/// preservation), mark + snapshot + emit a token on
/// [`SourceCmd::Checkpoint`]. Interior/sink hosts: non-blocking
/// token alignment — see the module docs.
pub fn run_host(
    mut w: HostWiring,
    store: Arc<dyn StableStore>,
    persist: Sender<PersistItem>,
) -> HostExit {
    let fanout = w.outputs.len();
    let mut next_seq = w.restored_seq;
    let mut error: Option<Error> = None;

    if let Some(cmd) = w.cmd.take() {
        debug_assert!(w.inputs.is_empty(), "a source host has no inputs");
        // Replay preserved tuples first (recovery catch-up), then
        // fast-forward the operator through the replayed interval so
        // it does not regenerate the same data (the preserved log IS
        // that data — post-failure, a real sensor source could not
        // regenerate it). Live sources emit one tuple per tick.
        //
        // Replay goes through the routes, not a broadcast: a sharded
        // consumer must see each replayed tuple on the same shard the
        // original delivery used, which the deterministic hash
        // guarantees.
        let replayed = w.replay.len() as u64;
        for t in w.replay.drain(..) {
            for route in &w.outputs {
                let _ = route.data(t.clone());
            }
        }
        for _ in 0..replayed {
            let mut discard = LiveCtx {
                op: w.op_id,
                fanout,
                emissions: Vec::new(),
                seed: 0,
            };
            w.op.on_timer(&mut discard);
        }
        next_seq += replayed;
        let mut stopping = false;
        // Epoch of this host's previous capture — the base for an
        // incremental capture. Seeded from the restored checkpoint.
        let mut last_captured = w.last_durable;
        let mut take_checkpoint =
            |op: &mut dyn Operator, epoch: EpochId, next_seq: u64| -> Result<()> {
                // The mark is durable before the checkpoint is even
                // enqueued: an epoch that looks complete on disk always
                // has its replay boundary.
                store.mark_epoch(w.op_id, epoch, next_seq)?;
                if let Some(m) = &w.telemetry {
                    m.set_state_bytes(op.state_size());
                }
                let (snapshot, base) = capture(op, last_captured);
                last_captured = Some(epoch);
                let _ = persist.send(PersistItem {
                    epoch,
                    op: w.op_id,
                    snapshot,
                    base,
                    next_seq,
                    in_flight: Vec::new(),
                    resume_seq: Vec::new(),
                    align_us: 0,
                    meter: w.telemetry.clone(),
                });
                for route in &w.outputs {
                    route.token(epoch);
                }
                Ok(())
            };
        'source: loop {
            // Drain pending controller commands. Stop is graceful: the
            // source finishes its data before the stream closes.
            while let Ok(c) = cmd.try_recv() {
                match c {
                    SourceCmd::Checkpoint(epoch) => {
                        if let Err(e) = take_checkpoint(w.op.as_mut(), epoch, next_seq) {
                            error = Some(e);
                            break 'source;
                        }
                    }
                    SourceCmd::Stop => stopping = true,
                }
            }
            let mut ctx = LiveCtx {
                op: w.op_id,
                fanout,
                emissions: Vec::new(),
                seed: 0x5DEECE66D ^ w.op_id.0 as u64,
            };
            w.op.on_timer(&mut ctx);
            if ctx.emissions.is_empty() {
                // Exhausted source (convention: a silent tick means
                // the source is done) — close the stream, or wait for
                // Stop/Checkpoint if the controller drives shutdown.
                if stopping || w.auto_stop {
                    break;
                }
                match cmd.recv() {
                    Ok(SourceCmd::Checkpoint(epoch)) => {
                        if let Err(e) = take_checkpoint(w.op.as_mut(), epoch, next_seq) {
                            error = Some(e);
                            break;
                        }
                    }
                    _ => break,
                }
            } else {
                match route_emissions(
                    w.op_id,
                    &w.outputs,
                    &w.telemetry,
                    &mut next_seq,
                    ctx.emissions,
                    Some(&store),
                ) {
                    Ok(true) => {}
                    Ok(false) => break,
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
        }
        for route in &w.outputs {
            route.eos();
        }
        return HostExit {
            op_id: w.op_id,
            op: w.op,
            error,
        };
    }

    // Interior/sink thread: the InteriorCore state machine driven by a
    // blocking channel select. Receiver clones don't hold the channel
    // open (senders do), so the core consuming the wiring is harmless.
    let inputs = w.inputs.clone();
    let mut core = InteriorCore::new(w, persist);
    while !core.is_done() {
        core.publish_backpressure(inputs.iter().map(Receiver::len).sum::<usize>() as u64);
        let readable: Vec<usize> = (0..inputs.len()).filter(|&i| !core.input_eos(i)).collect();
        if readable.is_empty() {
            break;
        }
        let mut sel = Select::new();
        for &i in &readable {
            sel.recv(&inputs[i]);
        }
        let oper = sel.select();
        let idx = readable[oper.index()];
        let msg = match oper.recv(&inputs[idx]) {
            Ok(msg) => msg,
            // A dropped sender is an implicit EOS (teardown).
            Err(_) => HostMsg::Eos,
        };
        core.on_msg(idx, msg);
    }
    core.finish()
}
