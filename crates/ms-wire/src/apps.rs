//! Demo application for the TCP cluster: a wall-clock-throttled
//! counting source plus a structural operator factory.
//!
//! The cluster binaries need an application whose stream lasts long
//! enough, in *real* time, that a worker can be SIGKILLed mid-stream.
//! [`ThrottledCountSource`] is `ms-live`'s `CountSource` with a
//! per-tuple delay; interior operators double, sinks sum — so the
//! sink's final `(sum, count)` is a closed-form function of the graph
//! and the source limit, and any lost or duplicated tuple shows up in
//! the recovered answer.
//!
//! [`build_operator`] is structural: an operator with no upstream is a
//! source, one with no downstream is a sink, everything else doubles.
//! Every worker derives the same operator set from the transmitted
//! graph alone — no code shipping, mirroring the paper's precompiled
//! operator binaries (§III-C).

use std::time::Duration;

use ms_core::error::{Error, Result};
use ms_core::graph::QueryNetwork;
use ms_core::ids::{OperatorId, PortId};
use ms_core::operator::{Operator, OperatorContext, OperatorSnapshot};
use ms_core::tuple::Tuple;
use ms_core::value::Value;
use ms_live::{Doubler, Summer};

/// A source that emits `0, 1, 2, …` up to a limit, sleeping a fixed
/// delay before each emission so a finite stream spans seconds of
/// wall-clock time. Deterministic: a restarted instance regenerates
/// the identical sequence, which is what lets the preservation log
/// dedup a from-scratch restart.
#[derive(Debug)]
pub struct ThrottledCountSource {
    limit: u64,
    emitted: u64,
    delay: Duration,
}

impl ThrottledCountSource {
    /// Creates a source emitting `limit` tuples, `delay` apart.
    pub fn new(limit: u64, delay: Duration) -> ThrottledCountSource {
        ThrottledCountSource {
            limit,
            emitted: 0,
            delay,
        }
    }
}

impl Operator for ThrottledCountSource {
    fn kind(&self) -> &'static str {
        "ThrottledCountSource"
    }

    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _ctx: &mut dyn OperatorContext) {}

    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        if self.emitted < self.limit {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            ctx.emit_all(vec![Value::Int(self.emitted as i64)]);
            self.emitted += 1;
        }
    }

    fn state_size(&self) -> u64 {
        16
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = ms_core::codec::SnapshotWriter::new();
        // The delay is deployment config (it rides the Assignment),
        // not operator state.
        w.put_u64(self.limit).put_u64(self.emitted);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 16,
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> Result<()> {
        let mut r = ms_core::codec::SnapshotReader::new(&s.data);
        self.limit = r.get_u64()?;
        self.emitted = r.get_u64()?;
        Ok(())
    }
}

/// Builds the demo query network for a shape name: `chainN` (N ≥ 2
/// operators in a line) or `diamond` (the paper's five-operator
/// walkthrough graph, Figs. 6–7).
pub fn demo_network(shape: &str) -> Result<QueryNetwork> {
    let mut qn = QueryNetwork::new();
    if shape == "diamond" {
        let s = qn.add_operator("source");
        let a = qn.add_operator("split");
        let b = qn.add_operator("left");
        let c = qn.add_operator("right");
        let k = qn.add_operator("sink");
        qn.connect(s, a)?;
        qn.connect(a, b)?;
        qn.connect(a, c)?;
        qn.connect(b, k)?;
        qn.connect(c, k)?;
    } else if let Some(n) = shape
        .strip_prefix("chain")
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n < 2 {
            return Err(Error::Graph(format!("chain needs ≥ 2 operators, got {n}")));
        }
        let ops: Vec<OperatorId> = (0..n).map(|i| qn.add_operator(format!("op{i}"))).collect();
        for pair in ops.windows(2) {
            qn.connect(pair[0], pair[1])?;
        }
    } else {
        return Err(Error::Graph(format!(
            "unknown demo shape {shape:?} (want chainN or diamond)"
        )));
    }
    qn.validate()?;
    Ok(qn)
}

/// Structural operator factory: source / interior / sink by topology.
pub fn build_operator(
    qn: &QueryNetwork,
    op: OperatorId,
    source_limit: u64,
    source_delay_us: u64,
) -> Box<dyn Operator> {
    if qn.upstream(op).is_empty() {
        Box::new(ThrottledCountSource::new(
            source_limit,
            Duration::from_micros(source_delay_us),
        ))
    } else if qn.downstream(op).is_empty() {
        Box::new(Summer::default())
    } else {
        Box::new(Doubler::default())
    }
}

/// The sink answer a failure-free `chainN` run must produce: every
/// tuple `0..limit` doubled once per interior operator.
pub fn expected_chain_sum(n_ops: usize, limit: u64) -> i64 {
    let base: i64 = (0..limit as i64).sum();
    base << (n_ops.saturating_sub(2) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::time::SimTime;
    use ms_core::tuple::Fields;

    struct Ctx {
        emitted: Vec<Fields>,
    }

    impl OperatorContext for Ctx {
        fn emit_fields(&mut self, _port: PortId, fields: Fields) {
            self.emitted.push(fields);
        }
        fn emit_all_fields(&mut self, fields: Fields) {
            self.emitted.push(fields);
        }
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn self_id(&self) -> OperatorId {
            OperatorId(0)
        }
        fn rand_f64(&mut self) -> f64 {
            0.5
        }
        fn rand_u64(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn shapes_build_and_validate() {
        let chain = demo_network("chain3").unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.sources().len(), 1);
        assert_eq!(chain.sinks().len(), 1);
        let diamond = demo_network("diamond").unwrap();
        assert_eq!(diamond.len(), 5);
        assert_eq!(diamond.upstream(OperatorId(4)).len(), 2);
        assert!(demo_network("chain1").is_err());
        assert!(demo_network("ring").is_err());
    }

    #[test]
    fn factory_is_structural() {
        let qn = demo_network("chain3").unwrap();
        assert_eq!(
            build_operator(&qn, OperatorId(0), 10, 0).kind(),
            "ThrottledCountSource"
        );
        assert_eq!(build_operator(&qn, OperatorId(1), 10, 0).kind(), "Doubler");
        assert_eq!(build_operator(&qn, OperatorId(2), 10, 0).kind(), "Summer");
    }

    #[test]
    fn throttled_source_snapshot_roundtrip() {
        let mut src = ThrottledCountSource::new(100, Duration::ZERO);
        let mut ctx = Ctx {
            emitted: Vec::new(),
        };
        for _ in 0..7 {
            src.on_timer(&mut ctx);
        }
        assert_eq!(ctx.emitted.len(), 7);
        let snap = src.snapshot();
        let mut fresh = ThrottledCountSource::new(100, Duration::ZERO);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.emitted, 7);
        assert_eq!(fresh.limit, 100);
    }

    #[test]
    fn chain_sum_closed_form() {
        // chain3, limit 4: (0+1+2+3) doubled once = 12.
        assert_eq!(expected_chain_sum(3, 4), 12);
        // chain4 doubles twice.
        assert_eq!(expected_chain_sum(4, 4), 24);
        assert_eq!(expected_chain_sum(2, 4), 6);
    }
}
