//! FIFO bandwidth devices.

use ms_core::time::{transfer_time, SimDuration, SimTime};

/// A device that serializes accesses FIFO at a fixed bandwidth — the
/// single queueing model shared by the storage node's disk array and
/// each compute node's local disk. Contention emerges naturally: when
/// 55 HAUs checkpoint at once (MS-src+ap), their writes queue here and
/// the slowest individual checkpoint observes the full backlog, exactly
/// the effect Fig. 14 measures.
#[derive(Clone, Debug)]
pub struct BwDevice {
    bandwidth: u64,
    overhead: SimDuration,
    busy_until: SimTime,
    bytes_total: u64,
    accesses: u64,
}

impl BwDevice {
    /// Creates a device with the given bandwidth (bytes/second) and
    /// fixed per-access overhead.
    pub fn new(bandwidth: u64, overhead: SimDuration) -> BwDevice {
        BwDevice {
            bandwidth,
            overhead,
            busy_until: SimTime::ZERO,
            bytes_total: 0,
            accesses: 0,
        }
    }

    /// Enqueues an access of `bytes` at `now`; returns
    /// `(start, completion)`.
    pub fn access(&mut self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let done = start + self.overhead + transfer_time(bytes, self.bandwidth);
        self.busy_until = done;
        self.bytes_total += bytes;
        self.accesses += 1;
        (start, done)
    }

    /// Completion time only (common case).
    pub fn access_done(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.access(now, bytes).1
    }

    /// The instant the device drains its current queue.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Resets queue state (device replaced after a node restart).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> BwDevice {
        // 1 MB/s, 1 ms overhead.
        BwDevice::new(1_000_000, SimDuration::from_millis(1))
    }

    #[test]
    fn single_access_cost() {
        let mut d = dev();
        let (start, done) = d.access(SimTime::ZERO, 500_000);
        assert_eq!(start, SimTime::ZERO);
        // 1 ms overhead + 0.5 s transfer.
        assert_eq!(done, SimTime::from_micros(501_000));
    }

    #[test]
    fn fifo_queueing() {
        let mut d = dev();
        let first = d.access_done(SimTime::ZERO, 1_000_000);
        let (start2, done2) = d.access(SimTime::ZERO, 1_000_000);
        assert_eq!(start2, first);
        assert!(done2 > first);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut d = dev();
        d.access(SimTime::ZERO, 1_000_000);
        // Arriving long after the queue drained starts immediately.
        let (start, _) = d.access(SimTime::from_secs(100), 1);
        assert_eq!(start, SimTime::from_secs(100));
    }

    #[test]
    fn counters() {
        let mut d = dev();
        d.access(SimTime::ZERO, 100);
        d.access(SimTime::ZERO, 200);
        assert_eq!(d.bytes_total(), 300);
        assert_eq!(d.accesses(), 2);
    }
}
