//! Cluster worker daemon. See `ms-wire`'s crate docs for the
//! localhost walkthrough.

use std::path::PathBuf;
use std::time::Duration;

use ms_wire::{run_worker, ControllerAddr, WorkerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: ms-worker --name NAME --store DIR \
         (--controller ADDR | --controller-file FILE) [--hb-ms N] \
         [--log-cap-bytes N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| -> Option<String> {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let (Some(name), Some(store_dir)) = (get("--name"), get("--store")) else {
        usage()
    };
    let controller = match (get("--controller"), get("--controller-file")) {
        (Some(addr), None) => ControllerAddr::Addr(addr),
        (None, Some(path)) => ControllerAddr::File(PathBuf::from(path)),
        _ => usage(),
    };
    let hb = get("--hb-ms").map_or(50, |v| v.parse().unwrap_or_else(|_| usage()));
    let log_cap = get("--log-cap-bytes").map(|v| v.parse().unwrap_or_else(|_| usage()));
    let cfg = WorkerConfig {
        name: name.clone(),
        controller,
        store_dir: PathBuf::from(store_dir),
        heartbeat_interval: Duration::from_millis(hb),
        log_cap_bytes: log_cap,
    };
    if let Err(e) = run_worker(cfg) {
        eprintln!("ms-worker[{name}]: error: {e}");
        std::process::exit(1);
    }
    println!("ms-worker[{name}]: clean exit");
}
