//! Fig. 13 — normalized latency vs. number of checkpoints.
//!
//! Same sweep as Fig. 12; prints mean end-to-end latency normalized to
//! the baseline at zero checkpoints.

use ms_bench::runner::{cell, sweep_app, APPS};
use ms_core::config::SchemeKind;

fn main() {
    let ns: Vec<u32> = (0..=8).collect();
    println!("Fig. 13: normalized latency vs checkpoints in 10 minutes\n");
    for app in APPS {
        let cells = sweep_app(app, &ns, 42);
        let base0 = cell(&cells, SchemeKind::Baseline, 0)
            .expect("baseline cell")
            .latency;
        println!("--- {app} (normalized to baseline @ 0 checkpoints) ---");
        print!("{:<14}", "scheme \\ n");
        for n in &ns {
            print!(" {n:>6}");
        }
        println!();
        for scheme in SchemeKind::ALL {
            print!("{:<14}", scheme.label());
            for n in &ns {
                let c = cell(&cells, scheme, *n).expect("cell");
                print!(" {:>6.2}", c.latency / base0);
            }
            println!();
        }
        let ms0 = cell(&cells, SchemeKind::MsSrc, 0).unwrap().latency;
        println!(
            "source preservation @0 ckpts: latency x{:.2} (paper: -9% on average => x0.91)",
            ms0 / base0
        );
        let aa3 = cell(&cells, SchemeKind::MsSrcApAa, 3).unwrap().latency;
        let b3 = cell(&cells, SchemeKind::Baseline, 3).unwrap().latency;
        println!(
            "MS-src+ap+aa vs baseline @3 ckpts: x{:.2} (paper: -57% => x0.43)\n",
            aa3 / b3
        );
    }
}
