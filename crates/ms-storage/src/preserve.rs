//! Tuple preservation.
//!
//! Two flavours, matching the paper's comparison (§I.1, §II-B3):
//!
//! * **Source preservation** ([`SourceLog`]) — Meteor Shower: only
//!   source HAUs preserve output tuples, written to stable storage
//!   *before* they are sent downstream, so they survive even a source
//!   failure. On recovery the sources replay everything after the most
//!   recent complete checkpoint.
//! * **Input preservation** ([`InputPreservationBuffer`]) — baseline:
//!   *every* HAU retains its output tuples in a bounded in-memory
//!   buffer (50 MB) that dumps to local disk when full; tuples are
//!   discarded when the downstream neighbour confirms it checkpointed
//!   them.

use std::collections::VecDeque;

use ms_core::ids::EpochId;
use ms_core::state::StateSize;
use ms_core::tuple::Tuple;

/// Default capacity of the baseline's in-memory preservation buffer.
pub const DEFAULT_BUFFER_CAP: u64 = 50_000_000;

/// A source HAU's preserved-output log (source preservation).
#[derive(Clone, Debug, Default)]
pub struct SourceLog {
    tuples: VecDeque<Tuple>,
    /// `(epoch, first sequence number AFTER the epoch's token)`:
    /// everything from that sequence on must be replayed when
    /// recovering to `epoch`.
    marks: Vec<(EpochId, u64)>,
    bytes: u64,
}

impl SourceLog {
    /// Creates an empty log.
    pub fn new() -> SourceLog {
        SourceLog::default()
    }

    /// Appends an emitted tuple (charged to stable storage by the
    /// caller). Sequence numbers must be non-decreasing.
    pub fn append(&mut self, t: Tuple) {
        debug_assert!(
            self.tuples.back().is_none_or(|b| b.seq <= t.seq),
            "source log must be appended in sequence order"
        );
        self.bytes += t.state_size();
        self.tuples.push_back(t);
    }

    /// Records that the epoch's token was emitted after sequence
    /// numbers below `next_seq` — the stream boundary for this source.
    pub fn mark_epoch(&mut self, epoch: EpochId, next_seq: u64) {
        debug_assert!(
            self.marks
                .last()
                .is_none_or(|&(e, s)| e < epoch && s <= next_seq),
            "epoch marks must be monotone"
        );
        self.marks.push((epoch, next_seq));
    }

    /// The tuples that must be replayed to recover from `epoch`
    /// (everything at or after the epoch's boundary).
    pub fn replay_from(&self, epoch: EpochId) -> Vec<Tuple> {
        let from_seq = self
            .marks
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|&(_, s)| s);
        match from_seq {
            // Epoch unknown: replay everything we hold (recovering to
            // the initial state).
            None => self.tuples.iter().cloned().collect(),
            Some(s) => self.tuples.iter().filter(|t| t.seq >= s).cloned().collect(),
        }
    }

    /// Discards tuples no longer needed once `epoch` is a complete
    /// application checkpoint. Returns the logical bytes freed.
    pub fn trim_to(&mut self, epoch: EpochId) -> u64 {
        let Some(&(_, from_seq)) = self.marks.iter().find(|(e, _)| *e == epoch) else {
            return 0;
        };
        let mut freed = 0;
        while let Some(front) = self.tuples.front() {
            if front.seq < from_seq {
                freed += front.state_size();
                self.tuples.pop_front();
            } else {
                break;
            }
        }
        self.bytes -= freed;
        self.marks.retain(|&(e, _)| e >= epoch);
        freed
    }

    /// Rolls the log back to the boundary of `epoch` (recovery): the
    /// restored source will regenerate sequence numbers from that
    /// boundary, so the stale tail (and any later epoch marks) must go
    /// or appends would run backwards.
    pub fn truncate_to_mark(&mut self, epoch: EpochId) -> u64 {
        let from_seq = self
            .marks
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|&(_, s)| s)
            .unwrap_or(0);
        let mut freed = 0;
        while let Some(back) = self.tuples.back() {
            if back.seq >= from_seq {
                freed += back.state_size();
                self.tuples.pop_back();
            } else {
                break;
            }
        }
        self.bytes -= freed;
        self.marks.retain(|&(e, _)| e <= epoch);
        freed
    }

    /// Logical bytes currently preserved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of preserved tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if nothing is preserved.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// What the caller must do after pushing into an
/// [`InputPreservationBuffer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillAction {
    /// The tuple fit in memory.
    None,
    /// The memory buffer overflowed: `bytes` must be written to the
    /// local disk (charge the disk cost model).
    ToDisk {
        /// Bytes dumped to disk.
        bytes: u64,
    },
}

/// A baseline HAU's preserved-output buffer toward ONE downstream
/// neighbour (input preservation).
#[derive(Clone, Debug)]
pub struct InputPreservationBuffer {
    cap: u64,
    /// Retained tuples with a flag: `true` if the tuple's bytes
    /// currently live on disk.
    tuples: VecDeque<(Tuple, bool)>,
    mem_bytes: u64,
    disk_bytes: u64,
}

impl InputPreservationBuffer {
    /// Creates a buffer with the given in-memory capacity.
    pub fn new(cap: u64) -> InputPreservationBuffer {
        InputPreservationBuffer {
            cap,
            tuples: VecDeque::new(),
            mem_bytes: 0,
            disk_bytes: 0,
        }
    }

    /// Creates a buffer with the paper's 50 MB capacity.
    pub fn with_default_cap() -> InputPreservationBuffer {
        InputPreservationBuffer::new(DEFAULT_BUFFER_CAP)
    }

    /// Preserves one output tuple. "Once the buffer is full, the
    /// buffered data are dumped into the local disk" — a dump moves
    /// every in-memory tuple to disk and returns the byte count so the
    /// caller can charge the disk.
    pub fn push(&mut self, t: Tuple) -> SpillAction {
        let sz = t.state_size();
        self.tuples.push_back((t, false));
        self.mem_bytes += sz;
        if self.mem_bytes > self.cap {
            let dumped = self.mem_bytes;
            for entry in self.tuples.iter_mut() {
                entry.1 = true;
            }
            self.disk_bytes += dumped;
            self.mem_bytes = 0;
            SpillAction::ToDisk { bytes: dumped }
        } else {
            SpillAction::None
        }
    }

    /// Discards every preserved tuple with `seq < up_to_seq` — the
    /// downstream neighbour has checkpointed them ("these tuples are
    /// discarded from the buffer and disk of the upstream neighbors").
    pub fn trim_below(&mut self, up_to_seq: u64) {
        while let Some((front, spilled)) = self.tuples.front() {
            if front.seq < up_to_seq {
                let sz = front.state_size();
                if *spilled {
                    self.disk_bytes = self.disk_bytes.saturating_sub(sz);
                } else {
                    self.mem_bytes = self.mem_bytes.saturating_sub(sz);
                }
                self.tuples.pop_front();
            } else {
                break;
            }
        }
    }

    /// The tuples to resend when the downstream neighbour restarts from
    /// a checkpoint covering sequence numbers below `from_seq`. Also
    /// returns how many logical bytes must be read back from disk.
    pub fn resend_from(&self, from_seq: u64) -> (Vec<Tuple>, u64) {
        let mut disk_read = 0;
        let mut out = Vec::new();
        for (t, spilled) in &self.tuples {
            if t.seq >= from_seq {
                if *spilled {
                    disk_read += t.state_size();
                }
                out.push(t.clone());
            }
        }
        (out, disk_read)
    }

    /// Logical bytes currently held in memory.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Logical bytes currently spilled on the local disk.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_bytes
    }

    /// Number of preserved tuples (memory + disk).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if nothing is preserved.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::ids::OperatorId;
    use ms_core::time::SimTime;
    use ms_core::value::Value;

    fn tup(seq: u64, bytes: u64) -> Tuple {
        Tuple::new(OperatorId(0), seq, SimTime::ZERO, vec![Value::blob(bytes)])
    }

    #[test]
    fn source_log_replay_and_trim() {
        let mut log = SourceLog::new();
        for seq in 0..10 {
            log.append(tup(seq, 100));
        }
        log.mark_epoch(EpochId(1), 4);
        for seq in 10..12 {
            log.append(tup(seq, 100));
        }
        let replay = log.replay_from(EpochId(1));
        assert_eq!(replay.len(), 8); // seq 4..12
        assert_eq!(replay[0].seq, 4);

        let freed = log.trim_to(EpochId(1));
        assert!(freed > 0);
        assert_eq!(log.len(), 8);
        // Replay after trim still returns everything needed.
        assert_eq!(log.replay_from(EpochId(1)).len(), 8);
    }

    #[test]
    fn source_log_unknown_epoch_replays_all() {
        let mut log = SourceLog::new();
        log.append(tup(0, 10));
        log.append(tup(1, 10));
        assert_eq!(log.replay_from(EpochId(9)).len(), 2);
    }

    #[test]
    fn input_buffer_spills_when_full() {
        let mut b = InputPreservationBuffer::new(250);
        let t = tup(0, 100); // state_size = 132 with header
        let sz = t.state_size();
        assert_eq!(b.push(t), SpillAction::None);
        assert_eq!(b.mem_bytes(), sz);
        // Second push exceeds 250 -> everything dumps to disk.
        match b.push(tup(1, 100)) {
            SpillAction::ToDisk { bytes } => assert_eq!(bytes, 2 * sz),
            other => panic!("expected spill, got {other:?}"),
        }
        assert_eq!(b.mem_bytes(), 0);
        assert_eq!(b.disk_bytes(), 2 * sz);
    }

    #[test]
    fn input_buffer_trim_frees_both_tiers() {
        let mut b = InputPreservationBuffer::new(250);
        b.push(tup(0, 100));
        b.push(tup(1, 100)); // spills both
        b.push(tup(2, 50)); // in memory
        assert_eq!(b.len(), 3);
        b.trim_below(2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.disk_bytes(), 0);
        assert!(b.mem_bytes() > 0);
    }

    #[test]
    fn input_buffer_resend_reports_disk_reads() {
        let mut b = InputPreservationBuffer::new(250);
        b.push(tup(0, 100));
        b.push(tup(1, 100)); // spills
        b.push(tup(2, 50));
        let (tuples, disk) = b.resend_from(1);
        assert_eq!(tuples.len(), 2);
        assert_eq!(disk, tup(1, 100).state_size());
        let (all, _) = b.resend_from(0);
        assert_eq!(all.len(), 3);
    }
}
