//! The application interface consumed by the engine.

use ms_core::graph::{HauAssignment, QueryNetwork};
use ms_core::ids::OperatorId;
use ms_core::operator::Operator;
use ms_sim::DetRng;

/// A stream application: a query network plus a factory for its
/// operators. `ms-apps` implements this for TMI, BCP and SignalGuru;
/// tests implement it with small synthetic pipelines.
pub trait AppSpec {
    /// Application name (used in reports).
    fn name(&self) -> &str;

    /// The operator-level query network.
    fn query_network(&self) -> QueryNetwork;

    /// Groups operators into HAUs. The default — the paper's
    /// evaluation setup — is one HAU per operator.
    fn hau_assignment(&self, qn: &QueryNetwork) -> HauAssignment {
        HauAssignment::one_per_operator(qn)
    }

    /// Instantiates the operator `op`. `rng` is a deterministic stream
    /// forked per operator for any randomized initialization.
    fn build_operator(&self, op: OperatorId, rng: &mut DetRng) -> Box<dyn Operator>;
}

/// An [`AppSpec`] assembled from closures — convenient for tests and
/// examples.
pub struct SimpleApp<F> {
    name: String,
    qn: QueryNetwork,
    factory: F,
}

impl<F> SimpleApp<F>
where
    F: Fn(OperatorId, &mut DetRng) -> Box<dyn Operator>,
{
    /// Creates an app from a prebuilt network and an operator factory.
    pub fn new(name: impl Into<String>, qn: QueryNetwork, factory: F) -> SimpleApp<F> {
        SimpleApp {
            name: name.into(),
            qn,
            factory,
        }
    }
}

impl<F> AppSpec for SimpleApp<F>
where
    F: Fn(OperatorId, &mut DetRng) -> Box<dyn Operator>,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn query_network(&self) -> QueryNetwork {
        self.qn.clone()
    }

    fn build_operator(&self, op: OperatorId, rng: &mut DetRng) -> Box<dyn Operator> {
        (self.factory)(op, rng)
    }
}
