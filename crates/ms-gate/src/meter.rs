//! Gateway telemetry: lock-light counters the event loop bumps on the
//! hot path and the worker's heartbeat thread samples for the
//! controller (which folds them into the run ledger).

use std::sync::atomic::{AtomicU64, Ordering};

use ms_core::metrics::LatencyHistogram;
use parking_lot::Mutex;

/// Cumulative gateway counters (process-lifetime, like
/// [`ms_core::metrics::OperatorMeter`]): the consumer diffs or keeps
/// the freshest sample.
#[derive(Default)]
pub struct GateMeter {
    accepted_batches: AtomicU64,
    shed_batches: AtomicU64,
    accepted_events: AtomicU64,
    emitted_tuples: AtomicU64,
    wal_bytes: AtomicU64,
    ack_us: Mutex<LatencyHistogram>,
}

/// One point-in-time reading of a [`GateMeter`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateSample {
    /// Batches admitted (WAL'd and acked `Accepted`).
    pub accepted_batches: u64,
    /// Batches shed at admission (acked `Busy`, nothing logged).
    pub shed_batches: u64,
    /// Raw producer events inside accepted batches.
    pub accepted_events: u64,
    /// Tuples emitted onto engine edges (under pre-aggregation this is
    /// what shrank relative to `accepted_events`).
    pub emitted_tuples: u64,
    /// Bytes appended to the preservation log.
    pub wal_bytes: u64,
    /// Median admission-to-ack latency, µs.
    pub ack_p50_us: u64,
    /// 99th-percentile admission-to-ack latency, µs.
    pub ack_p99_us: u64,
}

impl GateMeter {
    /// A zeroed meter.
    pub fn new() -> GateMeter {
        GateMeter::default()
    }

    /// Records one accepted batch: its raw event count, the tuples it
    /// emitted, and the WAL bytes it appended.
    pub fn record_accept(&self, events: u64, tuples: u64, wal_bytes: u64) {
        self.accepted_batches.fetch_add(1, Ordering::Relaxed);
        self.accepted_events.fetch_add(events, Ordering::Relaxed);
        self.emitted_tuples.fetch_add(tuples, Ordering::Relaxed);
        self.wal_bytes.fetch_add(wal_bytes, Ordering::Relaxed);
    }

    /// Records one admission-shed batch.
    pub fn record_shed(&self) {
        self.shed_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch's admission-to-ack latency.
    pub fn record_ack_us(&self, us: u64) {
        self.ack_us.lock().record(us);
    }

    /// A point-in-time sample.
    pub fn sample(&self) -> GateSample {
        let h = self.ack_us.lock();
        GateSample {
            accepted_batches: self.accepted_batches.load(Ordering::Relaxed),
            shed_batches: self.shed_batches.load(Ordering::Relaxed),
            accepted_events: self.accepted_events.load(Ordering::Relaxed),
            emitted_tuples: self.emitted_tuples.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            ack_p50_us: h.p50(),
            ack_p99_us: h.p99(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_reflects_recorded_activity() {
        let m = GateMeter::new();
        m.record_accept(16, 4, 512);
        m.record_accept(16, 3, 400);
        m.record_shed();
        m.record_ack_us(100);
        m.record_ack_us(200);
        let s = m.sample();
        assert_eq!(s.accepted_batches, 2);
        assert_eq!(s.shed_batches, 1);
        assert_eq!(s.accepted_events, 32);
        assert_eq!(s.emitted_tuples, 7);
        assert_eq!(s.wal_bytes, 912);
        assert!(s.ack_p50_us > 0);
        assert!(s.ack_p99_us >= s.ack_p50_us);
    }
}
