//! Collection strategies (stand-in for `proptest::collection`).

use crate::{BoxedStrategy, Strategy};
use std::ops::Range;
use std::sync::Arc;

/// Generates `Vec`s whose length is uniform in `len` and whose
/// elements come from `element`.
pub fn vec<S>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    assert!(len.start < len.end, "empty length range");
    BoxedStrategy(Arc::new(move |rng| {
        let n = len.start + rng.below((len.end - len.start) as u64) as usize;
        (0..n).map(|_| element.generate(rng)).collect()
    }))
}
