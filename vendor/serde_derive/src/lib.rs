//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! decoration but never serializes through serde (the snapshot wire
//! format is `ms-core::codec`). The vendored `serde` stub gives both
//! traits blanket impls, so these derives can legitimately expand to
//! nothing — every type already satisfies the bounds.

use proc_macro::TokenStream;

/// Derives `serde::Serialize` (no-op: the stub trait is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives `serde::Deserialize` (no-op: the stub trait is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
