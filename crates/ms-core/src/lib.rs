//! Core vocabulary for the Meteor Shower reproduction.
//!
//! This crate defines the types shared by every layer of the system:
//!
//! * [`time`] — virtual time ([`SimTime`], [`SimDuration`]) used by the
//!   discrete-event substrate and by all cost models.
//! * [`ids`] — strongly-typed identifiers for operators, HAUs, nodes,
//!   racks and checkpoint epochs.
//! * [`value`] / [`tuple`] — the data model: tuples carry typed fields
//!   plus a *logical size* so experiments can run at paper scale
//!   (hundreds of megabytes of operator state) without allocating that
//!   memory for real.
//! * [`token`] — the checkpoint tokens that give Meteor Shower its name.
//! * [`state`] — the [`StateSize`](state::StateSize) trait mirroring the
//!   paper's precompiler-generated `state_size()` functions (§III-C1).
//! * [`operator`] — the operator abstraction executed by stream process
//!   engines.
//! * [`graph`] — query networks (directed acyclic operator graphs) and
//!   HAU-level views of them.
//! * [`delta`] — incremental checkpoint state: canonical key→bytes
//!   tables, per-epoch change sets, and the base+delta-chain fold.
//! * [`shard`] — key-partitioned operator expansion: logical→physical
//!   network rewrite and the deterministic key→shard hash.
//! * [`gate`] — the producer-facing ingestion protocol (wire alphabet
//!   plus gateway configuration) spoken by external event producers.
//! * [`config`] — cluster, scheme and experiment configuration.
//! * [`metrics`] — counters, histograms and time series used by the
//!   evaluation harness.
//! * [`aware`] — the §III-C application-aware checkpoint-timing
//!   decision logic (profiling, `smax`, alert mode), shared by the
//!   simulator and the live cluster controller.
//!
//! The paper: H. Wang, L.-S. Peh, E. Koukoumidis, S. Tao, M. C. Chan,
//! *"Meteor Shower: A Reliable Stream Processing System for Commodity
//! Data Centers"*, IEEE IPDPS 2012.

#![warn(missing_docs)]

pub mod aware;
pub mod codec;
pub mod config;
pub mod delta;
pub mod error;
pub mod gate;
pub mod graph;
pub mod ids;
pub mod metrics;
pub mod operator;
pub mod shard;
pub mod state;
pub mod time;
pub mod token;
pub mod tuple;
pub mod value;

pub use error::{Error, Result};
pub use ids::{EpochId, HauId, NodeId, OperatorId, PortId, RackId};
pub use time::{SimDuration, SimTime};
pub use token::Token;
pub use tuple::{StreamItem, Tuple};
pub use value::Value;
