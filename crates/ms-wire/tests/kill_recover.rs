//! End-to-end recovery of a real 3-process cluster on localhost.
//!
//! Reference run: controller + two workers stream to completion with
//! no failure. Failure run: same cluster, but the worker hosting the
//! middle operator is SIGKILLed mid-stream once a complete application
//! checkpoint exists; a spare worker is started in its place. The
//! controller must detect the lost heartbeat, roll back, restore the
//! latest complete checkpoint, replay the preserved source log — and
//! the sink's final state must be byte-identical to the reference run.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ms_core::codec::SnapshotReader;
use ms_wire::{read_ledger, LedgerRecord, LEDGER_FILE};

const LIMIT: u64 = 4000;
const DELAY_US: u64 = 300;

/// Kills every still-running child on drop so a failing assert never
/// leaks processes.
struct Cluster(Vec<Child>);

impl Cluster {
    fn push(&mut self, c: Child) -> usize {
        self.0.push(c);
        self.0.len() - 1
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn controller(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ms-controller"));
    cmd.args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--addr-file".as_ref(), dir.join("addr").as_os_str()])
        .args(["--result-file".as_ref(), dir.join("result").as_os_str()])
        .args(["--workers", "2", "--shape", "chain3"])
        .args(["--limit", &LIMIT.to_string()])
        .args(["--delay-us", &DELAY_US.to_string()])
        .args(["--ckpt-ms", "120", "--hb-timeout-ms", "500"])
        .args(["--respawn-wait-ms", "3000", "--deadline-secs", "90"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    cmd
}

fn worker(dir: &Path, name: &str) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ms-worker"));
    cmd.args(["--name", name])
        .args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--controller-file".as_ref(), dir.join("addr").as_os_str()])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    cmd
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms_wire_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_exit(child: &mut Child, budget: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + budget;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "process did not exit within {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Highest *complete* application checkpoint epoch in the store: an
/// epoch is complete when all three operators have renamed their
/// checkpoint file into place. Epochs count up from 1, so a return of
/// `n` means `n` checkpoints have completed — the store GCs epochs
/// made obsolete by newer complete ones, so counting retained epochs
/// would understate progress.
fn max_complete_epoch(store: &Path) -> u64 {
    let mut per_epoch = std::collections::HashMap::new();
    let Ok(entries) = fs::read_dir(store.join("ckpt")) else {
        return 0;
    };
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if let Some(epoch) = name
            .strip_prefix('e')
            .and_then(|r| r.split_once("_op"))
            .and_then(|(e, _)| e.parse::<u64>().ok())
        {
            *per_epoch.entry(epoch).or_insert(0usize) += 1;
        }
    }
    per_epoch
        .iter()
        .filter(|(_, &n)| n >= 3)
        .map(|(&e, _)| e)
        .max()
        .unwrap_or(0)
}

/// Full audit of the run ledger next to the checkpoints: every row
/// parses and satisfies the schema invariants, every ledger epoch
/// covers all three chain operators, each generation's epochs are
/// contiguous (the epoch in flight at a failure may vanish *between*
/// generations, but none may go missing inside one), and the trail
/// reaches the newest complete checkpoint in the store — minus one
/// epoch of slack for a barrier still closing at the cut.
fn check_ledger(store: &Path, min_generations: usize) -> Vec<LedgerRecord> {
    use std::collections::{BTreeMap, BTreeSet};

    let records = read_ledger(&store.join(LEDGER_FILE)).expect("run ledger must parse");
    assert!(!records.is_empty(), "run ledger is empty");
    let mut by_epoch: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
    let mut by_gen: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for r in &records {
        assert!(
            r.state_bytes > 0,
            "op{} epoch {}: state-size gauge never sampled",
            r.op,
            r.epoch
        );
        assert!(
            r.ckpt_bytes > 0,
            "op{} epoch {}: checkpoint bytes missing",
            r.op,
            r.epoch
        );
        assert!(r.barrier_us > 0, "epoch {}: zero barrier latency", r.epoch);
        by_epoch.entry(r.epoch).or_default().insert(r.op);
        by_gen.entry(r.generation).or_default().insert(r.epoch);
    }
    for (epoch, ops) in &by_epoch {
        assert_eq!(
            ops.len(),
            3,
            "epoch {epoch} covers ops {ops:?}, want all 3 chain operators"
        );
    }
    for (gen, epochs) in &by_gen {
        let lo = *epochs.iter().next().unwrap();
        let hi = *epochs.iter().last().unwrap();
        assert_eq!(
            epochs.len() as u64,
            hi - lo + 1,
            "generation {gen} ledger has an epoch hole: {epochs:?}"
        );
    }
    assert!(
        by_gen.len() >= min_generations,
        "ledger spans {} generation(s), want >= {min_generations}",
        by_gen.len()
    );
    let max_ledger = *by_epoch.keys().last().unwrap();
    let max_store = max_complete_epoch(store);
    assert!(
        max_ledger + 1 >= max_store,
        "ledger stops at epoch {max_ledger} but the store holds complete epoch {max_store}"
    );
    records
}

/// `(recoveries line, sink lines)` from a result file.
fn parse_result(path: &Path) -> (String, Vec<String>) {
    let text = fs::read_to_string(path).unwrap();
    let mut lines = text.lines();
    let recoveries = lines.next().unwrap().to_string();
    (recoveries, lines.map(str::to_string).collect())
}

/// Decodes a `sink op{N} {hex}` line into the Summer's `(sum, count)`.
fn decode_sink(line: &str) -> (i64, u64) {
    let hex = line.rsplit(' ').next().unwrap();
    let bytes: Vec<u8> = (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
        .collect();
    let mut r = SnapshotReader::new(&bytes);
    (r.get_i64().unwrap(), r.get_u64().unwrap())
}

#[test]
fn sigkill_mid_stream_recovers_to_identical_answer() {
    // --- Reference run: no failure. ---
    let ref_dir = fresh_dir("ref");
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&ref_dir).spawn().unwrap());
    cluster.push(worker(&ref_dir, "wa").spawn().unwrap());
    cluster.push(worker(&ref_dir, "wb").spawn().unwrap());
    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(80));
    assert!(status.success(), "reference controller failed: {status:?}");
    let (recoveries, ref_sinks) = parse_result(&ref_dir.join("result"));
    assert_eq!(recoveries, "recoveries=0");
    assert_eq!(ref_sinks.len(), 1);
    // A failure-free run leaves a single-generation telemetry trail.
    check_ledger(&ref_dir.join("store"), 1);
    drop(cluster);

    // --- Failure run: SIGKILL the middle-operator worker mid-stream. ---
    let dir = fresh_dir("kill");
    let mut cluster = Cluster(Vec::new());
    let ctl = cluster.push(controller(&dir).spawn().unwrap());
    cluster.push(worker(&dir, "wa").spawn().unwrap());
    // Placement is round-robin over sorted names: op0,op2 → wa and
    // op1 → wb, so killing wb severs the middle of the chain.
    let victim = cluster.push(worker(&dir, "wb").spawn().unwrap());

    // Let the stream run until at least two application checkpoints
    // are complete — the recovery then genuinely rolls back.
    let deadline = Instant::now() + Duration::from_secs(30);
    while max_complete_epoch(&dir.join("store")) < 2 {
        assert!(
            Instant::now() < deadline,
            "no complete checkpoint appeared in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        !dir.join("result").exists(),
        "stream finished before the kill; raise --limit"
    );
    cluster.0[victim].kill().unwrap(); // SIGKILL on unix
    let _ = cluster.0[victim].wait();
    // Spare worker takes the bench.
    cluster.push(worker(&dir, "wc").spawn().unwrap());

    let status = wait_exit(&mut cluster.0[ctl], Duration::from_secs(80));
    assert!(status.success(), "recovery controller failed: {status:?}");
    let (recoveries, sinks) = parse_result(&dir.join("result"));
    assert_eq!(recoveries, "recoveries=1");

    // The recovered answer is byte-identical to the unfailed run.
    assert_eq!(sinks, ref_sinks);
    let (sum, count) = decode_sink(&sinks[0]);
    assert_eq!(
        count, LIMIT,
        "exactly-once violated: lost or duplicated tuples"
    );
    let expected: i64 = 2 * (0..LIMIT as i64).sum::<i64>();
    assert_eq!(sum, expected);

    // The ledger survived the SIGKILL boundary: rows from both the
    // failed and the recovery generation, no epoch holes inside
    // either, and coverage up to the store's newest complete epoch.
    check_ledger(&dir.join("store"), 2);

    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&dir);
}
