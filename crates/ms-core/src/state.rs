//! Operator state sizing (§III-C1, Fig. 9).
//!
//! The paper's precompiler scans operator classes and generates a
//! `state_size()` member function per operator, with three estimation
//! strategies:
//!
//! 1. **Sampling** — take `N` samples from a container (default 3: the
//!    first, middle, and last element) and extrapolate.
//! 2. **Fixed element size** — the developer annotates
//!    `element_size=1024` and the function multiplies by the length.
//! 3. **User-defined** — the developer supplies `length=` and
//!    `element_size=` expressions for opaque data structures.
//!
//! In Rust we do not need source-to-source translation: the same three
//! strategies are expressed as the [`StateSize`] trait plus the
//! [`estimate`] combinators. Operators implement `StateSize` (usually by
//! summing the combinators over their fields), and the application-aware
//! profiler consumes the result exactly as the paper's runtime does.

/// The logical size, in bytes, of a piece of operator state.
///
/// "Logical" means the size the real C++ system would report: blobs
/// count their full payload (e.g. a 921,600-byte camera frame) even
/// though this reproduction stores only a compact digest in memory.
pub trait StateSize {
    /// Estimated logical size in bytes.
    fn state_size(&self) -> u64;
}

impl StateSize for u64 {
    fn state_size(&self) -> u64 {
        8
    }
}

impl StateSize for i64 {
    fn state_size(&self) -> u64 {
        8
    }
}

impl StateSize for f64 {
    fn state_size(&self) -> u64 {
        8
    }
}

impl StateSize for f32 {
    fn state_size(&self) -> u64 {
        4
    }
}

impl StateSize for u32 {
    fn state_size(&self) -> u64 {
        4
    }
}

impl StateSize for String {
    fn state_size(&self) -> u64 {
        self.len() as u64
    }
}

impl<T: StateSize> StateSize for Option<T> {
    fn state_size(&self) -> u64 {
        self.as_ref().map_or(0, StateSize::state_size)
    }
}

impl<T: StateSize> StateSize for Vec<T> {
    /// Exact sum. For large containers prefer
    /// [`estimate::sampled`], which reproduces the precompiler's
    /// sampling behaviour and its O(1) cost.
    fn state_size(&self) -> u64 {
        self.iter().map(StateSize::state_size).sum()
    }
}

impl<T: StateSize> StateSize for std::collections::VecDeque<T> {
    fn state_size(&self) -> u64 {
        self.iter().map(StateSize::state_size).sum()
    }
}

impl<K, V: StateSize> StateSize for std::collections::BTreeMap<K, V> {
    fn state_size(&self) -> u64 {
        self.values().map(StateSize::state_size).sum()
    }
}

impl<K, V: StateSize, S> StateSize for std::collections::HashMap<K, V, S> {
    fn state_size(&self) -> u64 {
        self.values().map(StateSize::state_size).sum()
    }
}

/// Estimation combinators mirroring the precompiler's generated code.
pub mod estimate {
    use super::StateSize;

    /// Default number of samples the precompiler takes
    /// ("take three samples by default", Fig. 9).
    pub const DEFAULT_SAMPLES: usize = 3;

    /// Sampling estimator over an indexable container: samples `n`
    /// evenly spaced elements (first, …, middle, …, last) and
    /// extrapolates `len * mean(sample sizes)`.
    ///
    /// Mirrors the generated code path for `// state sample=N` hints.
    pub fn sampled<T: StateSize>(items: &[T], n: usize) -> u64 {
        let len = items.len();
        if len == 0 {
            return 0;
        }
        let n = n.clamp(1, len);
        let mut total = 0u64;
        for k in 0..n {
            // Evenly spaced indices including both endpoints.
            let idx = if n == 1 { 0 } else { k * (len - 1) / (n - 1) };
            total += items[idx].state_size();
        }
        (total as f64 / n as f64 * len as f64).round() as u64
    }

    /// Sampling estimator with the default sample count of 3.
    pub fn sampled_default<T: StateSize>(items: &[T]) -> u64 {
        sampled(items, DEFAULT_SAMPLES)
    }

    /// Fixed-element-size estimator, mirroring
    /// `// state element_size=1024` hints: `len * element_size`.
    pub fn fixed_element(len: usize, element_size: u64) -> u64 {
        len as u64 * element_size
    }

    /// User-defined estimator, mirroring `length="…" element_size="…"`
    /// hints on opaque data structures: the callbacks correspond to the
    /// user-supplied expressions (`idx->count()`,
    /// `idx->first().size()`).
    pub fn user_defined(length: impl FnOnce() -> u64, element_size: impl FnOnce() -> u64) -> u64 {
        let len = length();
        if len == 0 {
            0
        } else {
            len * element_size()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::estimate::*;
    use super::*;
    use crate::value::Value;

    #[test]
    fn exact_container_sums() {
        let v: Vec<i64> = vec![1, 2, 3];
        assert_eq!(v.state_size(), 24);
        let mut m = std::collections::BTreeMap::new();
        m.insert(1u32, String::from("abc"));
        m.insert(2u32, String::from("de"));
        assert_eq!(m.state_size(), 5);
        assert_eq!(Some(7i64).state_size(), 8);
        assert_eq!(Option::<i64>::None.state_size(), 0);
    }

    #[test]
    fn sampled_is_exact_for_uniform_sizes() {
        let items: Vec<Value> = (0..100).map(|_| Value::blob(1024)).collect();
        assert_eq!(sampled_default(&items), 100 * 1024);
        assert_eq!(sampled(&items, 1), 100 * 1024);
        assert_eq!(sampled(&items, 100), 100 * 1024);
    }

    #[test]
    fn sampled_empty_is_zero() {
        let items: Vec<Value> = vec![];
        assert_eq!(sampled_default(&items), 0);
    }

    #[test]
    fn sampled_extrapolates_from_endpoints_and_middle() {
        // Sizes 10, 20, 30 at first/middle/last: mean 20 -> 3 * 20 = 60.
        let items = vec![Value::blob(10), Value::blob(20), Value::blob(30)];
        assert_eq!(sampled_default(&items), 60);
    }

    #[test]
    fn fixed_and_user_defined() {
        assert_eq!(fixed_element(7, 1024), 7 * 1024);
        assert_eq!(user_defined(|| 5, || 100), 500);
        // Length 0 must not evaluate element_size on an empty structure
        // (the paper guards with `if (idx != NULL)`).
        assert_eq!(user_defined(|| 0, || panic!("must not be called")), 0);
    }
}
