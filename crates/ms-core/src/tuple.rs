//! Tuples and stream items.
//!
//! "Each unit of data passed between operators is called a tuple. The
//! tuples sent in a connection between two operators form a data
//! stream." (§II-A). A [`StreamItem`] is what actually travels on a
//! connection: either a data tuple or a checkpoint [`Token`] riding the
//! dataflow.

use std::ops::Deref;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::ids::OperatorId;
use crate::state::StateSize;
use crate::time::SimTime;
use crate::token::Token;
use crate::value::Value;

/// Fixed per-tuple framing overhead charged by the network model
/// (headers, lengths, routing metadata).
pub const TUPLE_HEADER_BYTES: u64 = 32;

/// A tuple's payload: an immutable, reference-counted field list.
///
/// Tuples are logically immutable once emitted — every consumer
/// (downstream operators, preservation buffers, source logs, retained
/// output) sees the same payload. Sharing one allocation makes
/// `Tuple::clone` a refcount bump instead of a deep copy of the field
/// vector, which is what lets the engine's fan-out, preservation and
/// replay paths stop scaling with payload size.
#[derive(Clone, Debug)]
pub struct Fields(Arc<[Value]>);

impl Fields {
    /// The empty payload.
    pub fn empty() -> Fields {
        Fields(Arc::from(Vec::new()))
    }

    /// Copies the fields out into a fresh `Vec` (allocates; use only
    /// when a caller genuinely needs owned, mutable fields).
    pub fn to_vec(&self) -> Vec<Value> {
        self.0.to_vec()
    }

    /// True when two payloads share the same allocation (refcount
    /// sharing, not just equal contents).
    pub fn shares_allocation(a: &Fields, b: &Fields) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Default for Fields {
    fn default() -> Fields {
        Fields::empty()
    }
}

impl Deref for Fields {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl AsRef<[Value]> for Fields {
    fn as_ref(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Fields {
    fn from(v: Vec<Value>) -> Fields {
        Fields(Arc::from(v))
    }
}

impl From<&[Value]> for Fields {
    fn from(v: &[Value]) -> Fields {
        Fields(Arc::from(v.to_vec()))
    }
}

impl FromIterator<Value> for Fields {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Fields {
        Fields(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Fields {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl PartialEq for Fields {
    fn eq(&self, other: &Fields) -> bool {
        self.0 == other.0
    }
}

impl PartialEq<Vec<Value>> for Fields {
    fn eq(&self, other: &Vec<Value>) -> bool {
        *self.0 == other[..]
    }
}

impl PartialEq<[Value]> for Fields {
    fn eq(&self, other: &[Value]) -> bool {
        *self.0 == *other
    }
}

/// A unit of data passed between operators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// The operator that produced this tuple.
    pub producer: OperatorId,
    /// Monotone per-producer sequence number; `(producer, seq)` is a
    /// unique tuple identity used by the exactly-once tests.
    pub seq: u64,
    /// Virtual time at which the *source* operator emitted the ancestry
    /// of this tuple; end-to-end latency at the sink is measured against
    /// this stamp.
    pub source_time: SimTime,
    /// Typed payload fields (shared; see [`Fields`]).
    pub fields: Fields,
}

impl Tuple {
    /// Creates a tuple. Accepts a plain `Vec<Value>` or an existing
    /// [`Fields`] handle (sharing the allocation).
    pub fn new(
        producer: OperatorId,
        seq: u64,
        source_time: SimTime,
        fields: impl Into<Fields>,
    ) -> Tuple {
        Tuple {
            producer,
            seq,
            source_time,
            fields: fields.into(),
        }
    }

    /// Logical payload size in bytes (what cost models charge), not
    /// counting framing.
    pub fn payload_bytes(&self) -> u64 {
        self.fields.iter().map(StateSize::state_size).sum()
    }

    /// Logical wire size including framing.
    pub fn wire_bytes(&self) -> u64 {
        TUPLE_HEADER_BYTES + self.payload_bytes()
    }

    /// Field accessor.
    pub fn field(&self, i: usize) -> Option<&Value> {
        self.fields.get(i)
    }
}

impl StateSize for Tuple {
    fn state_size(&self) -> u64 {
        self.payload_bytes() + TUPLE_HEADER_BYTES
    }
}

/// What travels on a connection between two HAUs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StreamItem {
    /// A data tuple.
    Data(Tuple),
    /// A checkpoint token (an "extra field in a tuple" in the paper; we
    /// model it as its own lightweight item for clarity).
    Token(Token),
}

impl StreamItem {
    /// Logical wire size of this item.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            StreamItem::Data(t) => t.wire_bytes(),
            StreamItem::Token(_) => Token::WIRE_BYTES,
        }
    }

    /// Returns the tuple if this is a data item.
    pub fn as_data(&self) -> Option<&Tuple> {
        match self {
            StreamItem::Data(t) => Some(t),
            StreamItem::Token(_) => None,
        }
    }

    /// Returns the token if this is a token item.
    pub fn as_token(&self) -> Option<&Token> {
        match self {
            StreamItem::Token(t) => Some(t),
            StreamItem::Data(_) => None,
        }
    }

    /// True if this item is a token.
    pub fn is_token(&self) -> bool {
        matches!(self, StreamItem::Token(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EpochId, HauId};

    fn tuple_with(fields: Vec<Value>) -> Tuple {
        Tuple::new(OperatorId(0), 0, SimTime::ZERO, fields)
    }

    #[test]
    fn payload_and_wire_bytes() {
        let t = tuple_with(vec![Value::Int(1), Value::blob(1000)]);
        assert_eq!(t.payload_bytes(), 1008);
        assert_eq!(t.wire_bytes(), 1008 + TUPLE_HEADER_BYTES);
    }

    #[test]
    fn clone_shares_payload_allocation() {
        let t = tuple_with(vec![Value::blob(1 << 20), Value::Int(7)]);
        let c = t.clone();
        assert!(Fields::shares_allocation(&t.fields, &c.fields));
        assert_eq!(t, c);
        // A payload rebuilt from the same values is equal but unshared.
        let rebuilt = tuple_with(t.fields.to_vec());
        assert_eq!(rebuilt.fields, t.fields);
        assert!(!Fields::shares_allocation(&t.fields, &rebuilt.fields));
    }

    #[test]
    fn stream_item_dispatch() {
        let t = StreamItem::Data(tuple_with(vec![]));
        assert!(!t.is_token());
        assert!(t.as_data().is_some());
        assert!(t.as_token().is_none());
        let k = StreamItem::Token(Token::propagating(EpochId(1), HauId(0)));
        assert!(k.is_token());
        assert_eq!(k.wire_bytes(), Token::WIRE_BYTES);
    }
}
