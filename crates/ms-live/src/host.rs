//! The operator-host layer: one OS thread running one HAU of the
//! MS-src token protocol, independent of *what carries its streams*.
//!
//! A host owns a [`ms_core::operator::Operator`], a set of input
//! [`Receiver`]s and output [`Sender`]s of [`HostMsg`], and (for
//! sources) a [`SourceCmd`] channel from the controller. The
//! in-process runtime ([`crate::LiveRuntime`]) wires hosts directly to
//! each other with crossbeam channels; the TCP runtime (`ms-wire`)
//! wires cross-process edges through socket pump threads that bridge
//! frames to the very same channels. Either way the protocol logic —
//! source preservation before send, token alignment on fan-in,
//! individual checkpoints handed to a [`Persister`] — runs unmodified.
//!
//! Invariant: a host with a `cmd` channel is a *source* and must have
//! no inputs; a host without one is interior (or a sink) and must have
//! at least one input.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Select, Sender};
use ms_core::ids::{EpochId, OperatorId, PortId};
use ms_core::operator::{Operator, OperatorContext};
use ms_core::time::SimTime;
use ms_core::tuple::{Fields, Tuple};

use crate::storage::{LiveHauCheckpoint, StableStore};

/// What travels on a live stream between two hosts.
#[derive(Debug)]
pub enum HostMsg {
    /// A data tuple.
    Data(Tuple),
    /// A checkpoint token for the given epoch.
    Token(EpochId),
    /// End of stream: the upstream host drained and exited.
    Eos,
}

/// Controller commands delivered to source hosts.
#[derive(Debug, Clone, Copy)]
pub enum SourceCmd {
    /// Snapshot now, mark the stream boundary, emit a token.
    Checkpoint(EpochId),
    /// Finish generating and close the stream (graceful).
    Stop,
}

/// One persistence work item: an individual checkpoint on its way to
/// stable storage.
pub struct PersistItem {
    /// Checkpoint epoch.
    pub epoch: EpochId,
    /// The operator the checkpoint belongs to.
    pub op: OperatorId,
    /// The serialized state plus stream boundary.
    pub ckpt: LiveHauCheckpoint,
}

/// The background persister thread — the live stand-in for the forked
/// COW child of §III-B. Hosts hand it [`PersistItem`]s over a channel
/// and keep processing; it writes them to the [`StableStore`]. Dropping
/// the `Persister` closes the channel and joins the thread, so every
/// queued checkpoint is durable before the owner proceeds.
pub struct Persister {
    handle: Option<JoinHandle<()>>,
    tx: Option<Sender<PersistItem>>,
}

impl Persister {
    /// Spawns the persister thread over a stable store.
    pub fn spawn(store: Arc<dyn StableStore>) -> Persister {
        let (tx, rx) = unbounded::<PersistItem>();
        let handle = std::thread::spawn(move || {
            while let Ok(item) = rx.recv() {
                store.put_checkpoint(item.epoch, item.op, item.ckpt);
            }
        });
        Persister {
            handle: Some(handle),
            tx: Some(tx),
        }
    }

    /// A sender handle for hosts to submit checkpoints on.
    pub fn sender(&self) -> Sender<PersistItem> {
        self.tx.as_ref().expect("persister running").clone()
    }
}

impl Drop for Persister {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Everything a host thread needs to run one HAU.
pub struct HostWiring {
    /// The operator's id (stamped on emitted tuples).
    pub op_id: OperatorId,
    /// The operator itself.
    pub op: Box<dyn Operator>,
    /// One receiver per input port, in port order. Empty for sources.
    pub inputs: Vec<Receiver<HostMsg>>,
    /// One sender per output port, in port order.
    pub outputs: Vec<Sender<HostMsg>>,
    /// Controller command channel — present iff this is a source.
    pub cmd: Option<Receiver<SourceCmd>>,
    /// First emission sequence (restored from a checkpoint, else 0).
    pub restored_seq: u64,
    /// Preserved tuples to resend before generating (recovery).
    pub replay: Vec<Tuple>,
    /// If true, an exhausted source closes its stream on its own
    /// (first silent tick ⇒ Eos) instead of waiting for an explicit
    /// [`SourceCmd::Stop`]. The in-process runtime keeps this `false`
    /// (its `finish()` drives the stop); the TCP runtime sets it so a
    /// finite stream drains without a controller round-trip.
    pub auto_stop: bool,
}

/// Collects emissions inside a host thread.
struct LiveCtx {
    op: OperatorId,
    fanout: usize,
    emissions: Vec<(PortId, Fields)>,
    seed: u64,
}

impl OperatorContext for LiveCtx {
    fn emit_fields(&mut self, port: PortId, fields: Fields) {
        self.emissions.push((port, fields));
    }
    fn emit_all_fields(&mut self, fields: Fields) {
        for p in 0..self.fanout {
            self.emissions.push((PortId(p as u32), fields.clone()));
        }
    }
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
    fn self_id(&self) -> OperatorId {
        self.op
    }
    fn rand_f64(&mut self) -> f64 {
        (self.rand_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn rand_u64(&mut self) -> u64 {
        self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.seed
    }
}

fn snapshot_of(op: &dyn Operator, next_seq: u64) -> LiveHauCheckpoint {
    LiveHauCheckpoint {
        snapshot: op.snapshot(),
        next_seq,
    }
}

/// Runs one HAU to completion on the current thread; returns the
/// operator (with its final state) for inspection by the owner.
///
/// Sources: drain commands, tick the operator, preserve every emitted
/// tuple in the stable store *before* sending it (§III-A source
/// preservation), snapshot + mark + emit a token on
/// [`SourceCmd::Checkpoint`]. Interior/sink hosts: token-aligned
/// consumption — once a token has arrived on every live input, take
/// the individual checkpoint and forward the token downstream.
pub fn run_host(
    mut w: HostWiring,
    store: Arc<dyn StableStore>,
    persist: Sender<PersistItem>,
) -> (OperatorId, Box<dyn Operator>) {
    let fanout = w.outputs.len();
    let mut next_seq = w.restored_seq;
    let route =
        |ctx_emissions: Vec<(PortId, Fields)>, next_seq: &mut u64, preserve: bool| -> bool {
            for (port, fields) in ctx_emissions {
                let t = Tuple::new(w.op_id, *next_seq, SimTime::ZERO, fields);
                *next_seq += 1;
                if preserve {
                    // Source preservation: stable storage *before* sending.
                    store.append_log(w.op_id, t.clone());
                }
                if let Some(tx) = w.outputs.get(port.index()) {
                    if tx.send(HostMsg::Data(t)).is_err() {
                        return false;
                    }
                }
            }
            true
        };

    if let Some(cmd) = w.cmd.take() {
        debug_assert!(w.inputs.is_empty(), "a source host has no inputs");
        // Replay preserved tuples first (recovery catch-up), then
        // fast-forward the operator through the replayed interval so
        // it does not regenerate the same data (the preserved log IS
        // that data — post-failure, a real sensor source could not
        // regenerate it). Live sources emit one tuple per tick.
        let replayed = w.replay.len() as u64;
        for t in w.replay.drain(..) {
            for tx in &w.outputs {
                let _ = tx.send(HostMsg::Data(t.clone()));
            }
        }
        for _ in 0..replayed {
            let mut discard = LiveCtx {
                op: w.op_id,
                fanout,
                emissions: Vec::new(),
                seed: 0,
            };
            w.op.on_timer(&mut discard);
        }
        next_seq += replayed;
        let mut stopping = false;
        let take_checkpoint = |op: &dyn Operator, epoch: EpochId, next_seq: u64| {
            let ck = snapshot_of(op, next_seq);
            let _ = persist.send(PersistItem {
                epoch,
                op: w.op_id,
                ckpt: ck,
            });
            store.mark_epoch(w.op_id, epoch, next_seq);
            for tx in &w.outputs {
                let _ = tx.send(HostMsg::Token(epoch));
            }
        };
        loop {
            // Drain pending controller commands. Stop is graceful: the
            // source finishes its data before the stream closes.
            while let Ok(c) = cmd.try_recv() {
                match c {
                    SourceCmd::Checkpoint(epoch) => take_checkpoint(w.op.as_ref(), epoch, next_seq),
                    SourceCmd::Stop => stopping = true,
                }
            }
            let mut ctx = LiveCtx {
                op: w.op_id,
                fanout,
                emissions: Vec::new(),
                seed: 0x5DEECE66D ^ w.op_id.0 as u64,
            };
            w.op.on_timer(&mut ctx);
            if ctx.emissions.is_empty() {
                // Exhausted source (convention: a silent tick means
                // the source is done) — close the stream, or wait for
                // Stop/Checkpoint if the controller drives shutdown.
                if stopping || w.auto_stop {
                    break;
                }
                match cmd.recv() {
                    Ok(SourceCmd::Checkpoint(epoch)) => {
                        take_checkpoint(w.op.as_ref(), epoch, next_seq)
                    }
                    _ => break,
                }
            } else if !route(ctx.emissions, &mut next_seq, true) {
                break;
            }
        }
        for tx in &w.outputs {
            let _ = tx.send(HostMsg::Eos);
        }
        return (w.op_id, w.op);
    }

    // Interior/sink thread: token-aligned consumption.
    let n_in = w.inputs.len();
    debug_assert!(n_in > 0, "an interior host has at least one input");
    let mut token_seen: Vec<Option<EpochId>> = vec![None; n_in];
    let mut eos = vec![false; n_in];
    loop {
        // Readable inputs: no unmatched token, not EOS.
        let pending_epoch = token_seen.iter().flatten().next().copied();
        let readable: Vec<usize> = (0..n_in)
            .filter(|&i| !eos[i] && token_seen[i].is_none())
            .collect();
        if readable.is_empty() {
            if let Some(epoch) = pending_epoch {
                if token_seen.iter().zip(&eos).all(|(t, &e)| t.is_some() || e) {
                    // All tokens (or EOS) collected: individual
                    // checkpoint, then forward the token.
                    let ck = snapshot_of(w.op.as_ref(), next_seq);
                    let _ = persist.send(PersistItem {
                        epoch,
                        op: w.op_id,
                        ckpt: ck,
                    });
                    for tx in &w.outputs {
                        let _ = tx.send(HostMsg::Token(epoch));
                    }
                    token_seen.fill(None);
                    continue;
                }
            }
            break; // every input at EOS
        }
        let mut sel = Select::new();
        for &i in &readable {
            sel.recv(&w.inputs[i]);
        }
        let oper = sel.select();
        let idx = readable[oper.index()];
        match oper.recv(&w.inputs[idx]) {
            Ok(HostMsg::Data(t)) => {
                let mut ctx = LiveCtx {
                    op: w.op_id,
                    fanout,
                    emissions: Vec::new(),
                    seed: t.seq ^ 0xA5A5_A5A5,
                };
                w.op.on_tuple(PortId(idx as u32), t, &mut ctx);
                if !route(ctx.emissions, &mut next_seq, false) {
                    break;
                }
            }
            Ok(HostMsg::Token(epoch)) => {
                token_seen[idx] = Some(epoch);
                // Snapshot immediately once all live inputs delivered.
                if token_seen.iter().zip(&eos).all(|(t, &e)| t.is_some() || e) {
                    let ck = snapshot_of(w.op.as_ref(), next_seq);
                    let _ = persist.send(PersistItem {
                        epoch,
                        op: w.op_id,
                        ckpt: ck,
                    });
                    for tx in &w.outputs {
                        let _ = tx.send(HostMsg::Token(epoch));
                    }
                    token_seen.fill(None);
                }
            }
            Ok(HostMsg::Eos) | Err(_) => {
                eos[idx] = true;
            }
        }
        if eos.iter().all(|&e| e) {
            break;
        }
    }
    for tx in &w.outputs {
        let _ = tx.send(HostMsg::Eos);
    }
    (w.op_id, w.op)
}
