//! [`FsStore`]: a filesystem [`StableStore`] shared by every process
//! of a TCP cluster.
//!
//! The in-memory `LiveStorage` dies with its process; a real cluster
//! needs preservation and checkpoints to survive a SIGKILL. `FsStore`
//! keeps the exact same contract on a shared directory:
//!
//! * `ckpt/e{epoch}_op{N}.ckpt` — individual checkpoints, written to a
//!   dot-prefixed temp file and atomically renamed into place, so a
//!   checkpoint file either exists complete or not at all, and epoch
//!   completeness (`latest_complete`) can be computed by any process
//!   from a directory scan.
//! * `log/op{N}.log` — source-preservation logs: one frame per tuple,
//!   appended with a single `write_all` *before* the tuple is sent
//!   (§III-A). Bytes handed to the kernel survive the process, so a
//!   SIGKILL can tear at most the final record; readers stop at the
//!   first incomplete frame.
//! * `marks/op{N}.marks` — per-source `(epoch, next_seq)` stream
//!   boundaries, appended the same way.
//!
//! Restart idempotence: a source restarted from scratch (no complete
//! checkpoint) deterministically regenerates tuples it already logged.
//! The log writer remembers the highest sequence on disk and skips
//! appends at or below it, so the log never holds duplicates and
//! recovery replay stays exactly-once.
//!
//! Failure model: fail-stop, surfaced instead of aborted. An I/O
//! error on the preservation path returns [`Error::Storage`]; the
//! host stops streaming (a source that cannot reach stable storage
//! must not keep sending) and the worker reports the failure to the
//! controller, which recovers it like a crash — without taking the
//! whole worker process (and its healthy co-located operators) down.
//! Read paths degrade to "nothing stored". The store assumes the
//! controller serializes incarnations (a killed worker is dead before
//! its operators are reassigned); two live writers on one log are out
//! of scope, as in the paper's single-controller design.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use ms_core::codec::{
    frame, FrameDecoder, SnapshotReader, SnapshotWriter, FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
use ms_core::error::{Error, Result};
use ms_core::ids::{EpochId, OperatorId};
use ms_core::operator::OperatorSnapshot;
use ms_core::tuple::Tuple;
use ms_live::{LiveHauCheckpoint, StableStore};
use parking_lot::Mutex;

struct LogWriter {
    file: File,
    /// Highest sequence already durable in this log (dedup guard).
    last_seq: Option<u64>,
}

/// Filesystem-backed stable store. Cheap to open; every process of the
/// cluster (workers *and* the controller) opens its own handle on the
/// shared directory.
pub struct FsStore {
    root: PathBuf,
    expected: usize,
    logs: Mutex<HashMap<OperatorId, LogWriter>>,
}

impl FsStore {
    /// Opens (creating if needed) a store rooted at `root`, expecting
    /// `expected` individual checkpoints per complete application
    /// checkpoint.
    pub fn open(root: impl Into<PathBuf>, expected: usize) -> Result<FsStore> {
        let root = root.into();
        for sub in ["ckpt", "log", "marks"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(FsStore {
            root,
            expected,
            logs: Mutex::new(HashMap::new()),
        })
    }

    fn ckpt_path(&self, epoch: EpochId, op: OperatorId) -> PathBuf {
        self.root.join("ckpt").join(ckpt_name(epoch, op))
    }

    fn log_path(&self, op: OperatorId) -> PathBuf {
        self.root.join("log").join(format!("op{}.log", op.0))
    }

    fn marks_path(&self, op: OperatorId) -> PathBuf {
        self.root.join("marks").join(format!("op{}.marks", op.0))
    }

    /// Epoch → number of individual checkpoints present.
    fn epoch_counts(&self) -> HashMap<u64, usize> {
        let mut counts = HashMap::new();
        let Ok(entries) = fs::read_dir(self.root.join("ckpt")) else {
            return counts;
        };
        for entry in entries.flatten() {
            if let Some(epoch) = parse_ckpt_epoch(&entry.file_name().to_string_lossy()) {
                *counts.entry(epoch).or_insert(0) += 1;
            }
        }
        counts
    }
}

fn ckpt_name(epoch: EpochId, op: OperatorId) -> String {
    format!("e{}_op{}.ckpt", epoch.0, op.0)
}

/// Parses `e{epoch}_op{N}.ckpt`; temp files (dot-prefixed) and foreign
/// names yield `None`.
fn parse_ckpt_epoch(name: &str) -> Option<u64> {
    let rest = name.strip_prefix('e')?;
    let (epoch, rest) = rest.split_once("_op")?;
    rest.strip_suffix(".ckpt")?.parse::<u64>().ok()?;
    epoch.parse().ok()
}

/// Byte length of the longest prefix made of complete frames.
fn clean_prefix_len(bytes: &[u8]) -> usize {
    let mut pos = 0;
    while bytes.len() - pos >= FRAME_HEADER_BYTES {
        let header: [u8; FRAME_HEADER_BYTES] = bytes[pos..pos + FRAME_HEADER_BYTES]
            .try_into()
            .expect("header slice");
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME_BYTES || bytes.len() - pos - FRAME_HEADER_BYTES < len {
            break;
        }
        pos += FRAME_HEADER_BYTES + len;
    }
    pos
}

/// Reads every complete frame of a framed file; a torn tail (the one
/// record a SIGKILL may have cut short) is silently dropped.
fn read_frames(path: &Path) -> Vec<Vec<u8>> {
    let Ok(bytes) = fs::read(path) else {
        return Vec::new();
    };
    let mut dec = FrameDecoder::new();
    dec.feed(&bytes);
    let mut out = Vec::new();
    while let Ok(Some(payload)) = dec.next_frame() {
        out.push(payload);
    }
    out
}

impl StableStore for FsStore {
    fn put_checkpoint(
        &self,
        epoch: EpochId,
        op: OperatorId,
        ckpt: LiveHauCheckpoint,
    ) -> Result<bool> {
        let mut w = SnapshotWriter::new();
        w.put_u64(ckpt.next_seq)
            .put_u64(ckpt.snapshot.logical_bytes)
            .put_bytes(&ckpt.snapshot.data);
        w.put_seq(ckpt.in_flight.iter(), |w, (port, t)| {
            w.put_u64(*port as u64).put_tuple(t);
        });
        w.put_seq(ckpt.resume_seq.iter(), |w, s| {
            w.put_u64(*s);
        });
        let tmp = self
            .root
            .join("ckpt")
            .join(format!(".tmp_{}", ckpt_name(epoch, op)));
        fs::write(&tmp, frame(&w.finish()))
            .and_then(|()| fs::rename(&tmp, self.ckpt_path(epoch, op)))
            .map_err(|e| Error::Storage(format!("checkpoint {epoch}/{op} not persisted: {e}")))?;
        Ok(self.epoch_counts().get(&epoch.0).copied().unwrap_or(0) >= self.expected)
    }

    fn get_checkpoint(&self, epoch: EpochId, op: OperatorId) -> Option<LiveHauCheckpoint> {
        let payload = read_frames(&self.ckpt_path(epoch, op)).into_iter().next()?;
        let mut r = SnapshotReader::new(&payload);
        let next_seq = r.get_u64().ok()?;
        let logical_bytes = r.get_u64().ok()?;
        let data = r.get_bytes().ok()?;
        let in_flight = r
            .get_seq(|r| Ok((r.get_u64()? as u32, r.get_tuple()?)))
            .ok()?;
        let resume_seq = r.get_seq(|r| r.get_u64()).ok()?;
        Some(LiveHauCheckpoint {
            snapshot: OperatorSnapshot {
                data,
                logical_bytes,
            },
            next_seq,
            in_flight,
            resume_seq,
        })
    }

    fn latest_complete(&self) -> Option<EpochId> {
        self.epoch_counts()
            .into_iter()
            .filter(|&(_, n)| n >= self.expected)
            .map(|(e, _)| EpochId(e))
            .max()
    }

    fn append_log(&self, source: OperatorId, t: Tuple) -> Result<()> {
        let mut logs = self.logs.lock();
        if let std::collections::hash_map::Entry::Vacant(slot) = logs.entry(source) {
            let path = self.log_path(source);
            // Scan what an earlier incarnation already made durable.
            let bytes = fs::read(&path).unwrap_or_default();
            let clean = clean_prefix_len(&bytes);
            let last_seq = read_frames(&path)
                .last()
                .and_then(|p| SnapshotReader::new(p).get_tuple().ok())
                .map(|t| t.seq);
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| Error::Storage(format!("cannot open source log {path:?}: {e}")))?;
            if clean < bytes.len() {
                // Drop the record the crash cut short, so re-appended
                // frames land on a clean boundary. Failure here leaves
                // a log whose tail would corrupt every later append —
                // the source must stop, not stream over it.
                file.set_len(clean as u64)
                    .map_err(|e| Error::Storage(format!("cannot trim torn log {path:?}: {e}")))?;
            }
            slot.insert(LogWriter { file, last_seq });
        }
        let lw = logs.get_mut(&source).expect("writer just ensured");
        if lw.last_seq.is_some_and(|s| t.seq <= s) {
            return Ok(()); // already durable (pre-crash incarnation)
        }
        let mut w = SnapshotWriter::with_capacity(SnapshotWriter::encoded_tuple_bytes(&t));
        w.put_tuple(&t);
        // One write_all per record: the kernel has the whole frame (or,
        // on a crash, at most a torn tail) — never an interleaving.
        lw.file
            .write_all(&frame(&w.finish()))
            .map_err(|e| Error::Storage(format!("source preservation failed for {source}: {e}")))?;
        lw.last_seq = Some(t.seq);
        Ok(())
    }

    fn mark_epoch(&self, source: OperatorId, epoch: EpochId, next_seq: u64) -> Result<()> {
        let mut w = SnapshotWriter::new();
        w.put_u64(epoch.0).put_u64(next_seq);
        let path = self.marks_path(source);
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(&frame(&w.finish())))
            .map_err(|e| Error::Storage(format!("epoch mark failed for {source}: {e}")))
    }

    fn replay_from(&self, source: OperatorId, epoch: EpochId) -> Vec<Tuple> {
        let from_seq = read_frames(&self.marks_path(source))
            .iter()
            .filter_map(|p| {
                let mut r = SnapshotReader::new(p);
                Some((r.get_u64().ok()?, r.get_u64().ok()?))
            })
            .find(|&(e, _)| e == epoch.0)
            .map(|(_, s)| s)
            .unwrap_or(0);
        read_frames(&self.log_path(source))
            .iter()
            .filter_map(|p| SnapshotReader::new(p).get_tuple().ok())
            .filter(|t| t.seq >= from_seq)
            .collect()
    }

    fn preserved_tuples(&self) -> usize {
        let Ok(entries) = fs::read_dir(self.root.join("log")) else {
            return 0;
        };
        entries
            .flatten()
            .map(|e| read_frames(&e.path()).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::time::SimTime;
    use ms_core::value::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ms_wire_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn tup(seq: u64) -> Tuple {
        Tuple::new(
            OperatorId(0),
            seq,
            SimTime::ZERO,
            vec![Value::Int(seq as i64)],
        )
    }

    fn ck(next_seq: u64) -> LiveHauCheckpoint {
        LiveHauCheckpoint::bare(
            OperatorSnapshot {
                data: vec![9, 9, 9],
                logical_bytes: 3,
            },
            next_seq,
        )
    }

    #[test]
    fn completeness_is_visible_across_handles() {
        let dir = tmpdir("complete");
        let a = FsStore::open(&dir, 2).unwrap();
        // A second handle on the same directory — as a second process
        // would hold.
        let b = FsStore::open(&dir, 2).unwrap();
        assert!(!a.put_checkpoint(EpochId(1), OperatorId(0), ck(5)).unwrap());
        assert_eq!(b.latest_complete(), None);
        assert!(b.put_checkpoint(EpochId(1), OperatorId(1), ck(0)).unwrap());
        assert_eq!(a.latest_complete(), Some(EpochId(1)));
        let got = b.get_checkpoint(EpochId(1), OperatorId(0)).unwrap();
        assert_eq!(got.next_seq, 5);
        assert_eq!(got.snapshot.data, vec![9, 9, 9]);
        assert!(got.in_flight.is_empty());
        assert!(got.resume_seq.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_flight_portion_roundtrips() {
        let dir = tmpdir("inflight");
        let s = FsStore::open(&dir, 1).unwrap();
        let full = LiveHauCheckpoint {
            snapshot: OperatorSnapshot {
                data: vec![1, 2],
                logical_bytes: 2,
            },
            next_seq: 44,
            in_flight: vec![(0, tup(7)), (1, tup(9))],
            resume_seq: vec![8, 10],
        };
        assert!(s.put_checkpoint(EpochId(3), OperatorId(2), full).unwrap());
        let got = s.get_checkpoint(EpochId(3), OperatorId(2)).unwrap();
        assert_eq!(got.next_seq, 44);
        assert_eq!(got.resume_seq, vec![8, 10]);
        assert_eq!(got.in_flight.len(), 2);
        assert_eq!(got.in_flight[0].0, 0);
        assert_eq!(got.in_flight[0].1.seq, 7);
        assert_eq!(got.in_flight[1].0, 1);
        assert_eq!(got.in_flight[1].1.seq, 9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_survives_handle_and_dedups_restart() {
        let dir = tmpdir("log");
        {
            let s = FsStore::open(&dir, 1).unwrap();
            for seq in 0..10 {
                s.append_log(OperatorId(0), tup(seq)).unwrap();
            }
            s.mark_epoch(OperatorId(0), EpochId(1), 6).unwrap();
        }
        // "Restarted" incarnation regenerates from scratch: the first
        // ten appends are duplicates and must be skipped.
        let s = FsStore::open(&dir, 1).unwrap();
        for seq in 0..12 {
            s.append_log(OperatorId(0), tup(seq)).unwrap();
        }
        assert_eq!(s.preserved_tuples(), 12);
        let replay = s.replay_from(OperatorId(0), EpochId(1));
        assert_eq!(replay.len(), 6);
        assert_eq!(replay[0].seq, 6);
        // Unknown epoch: everything (mirrors LiveStorage).
        assert_eq!(s.replay_from(OperatorId(0), EpochId(42)).len(), 12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = tmpdir("torn");
        {
            let s = FsStore::open(&dir, 1).unwrap();
            for seq in 0..5 {
                s.append_log(OperatorId(0), tup(seq)).unwrap();
            }
        }
        // Simulate a SIGKILL mid-append: cut the last record short.
        let path = dir.join("log").join("op0.log");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let s = FsStore::open(&dir, 1).unwrap();
        let replay = s.replay_from(OperatorId(0), EpochId(0));
        assert_eq!(replay.len(), 4);
        // The next incarnation re-appends the torn tuple: seq 4 is
        // above the highest *complete* record, so it must not be
        // dropped by the dedup guard.
        s.append_log(OperatorId(0), tup(4)).unwrap();
        assert_eq!(s.replay_from(OperatorId(0), EpochId(0)).len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_files_never_count_toward_completeness() {
        let dir = tmpdir("tmpfiles");
        let s = FsStore::open(&dir, 1).unwrap();
        fs::write(dir.join("ckpt").join(".tmp_e9_op0.ckpt"), b"junk").unwrap();
        assert_eq!(s.latest_complete(), None);
        assert!(s.put_checkpoint(EpochId(9), OperatorId(0), ck(1)).unwrap());
        assert_eq!(s.latest_complete(), Some(EpochId(9)));
        let _ = fs::remove_dir_all(&dir);
    }
}
