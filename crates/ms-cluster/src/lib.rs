//! Cluster model: nodes, racks, liveness, HAU placement, and the
//! commodity-data-center failure model of Table I.
//!
//! The paper's target platform is a commodity data center "like
//! Google's" — 2400+ nodes, 30+ racks, 80 blade servers per rack —
//! where failures are frequent, dominated by network/environment/ooops
//! causes, and about 10% of them arrive in rack- or power-correlated
//! bursts (§II-B1). The [`failure`] module encodes that model
//! generatively; the `table1` experiment regenerates the paper's
//! AFN100 table from it.

#![warn(missing_docs)]

pub mod failure;
pub mod placement;

pub use failure::{FailureEvent, FailureModel, FailureScope, FailureSource};
pub use placement::{place_gates, spread_shards, Placement};

use ms_core::ids::{NodeId, RackId};

/// Static description of a cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Total node count (the paper's evaluation uses 56).
    pub nodes: usize,
    /// Nodes per rack (Google's figure: 80 blades/rack).
    pub nodes_per_rack: usize,
    /// Cores per node (EC2 instances with two 2.3 GHz cores).
    pub cores_per_node: u32,
    /// Memory per node (1.7 GB in the paper's evaluation).
    pub mem_bytes: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 56,
            nodes_per_rack: 80,
            cores_per_node: 2,
            mem_bytes: 1_700_000_000,
        }
    }
}

impl ClusterConfig {
    /// A Google-scale data center (for failure-model experiments).
    pub fn google_dc() -> ClusterConfig {
        ClusterConfig {
            nodes: 2400,
            nodes_per_rack: 80,
            cores_per_node: 2,
            mem_bytes: 8_000_000_000,
        }
    }
}

/// Mutable cluster state: which nodes are up, and their rack layout.
#[derive(Clone, Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    up: Vec<bool>,
    rack_of: Vec<RackId>,
}

impl Cluster {
    /// Builds a cluster with sequential rack assignment.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        let rack_of = (0..cfg.nodes)
            .map(|i| RackId((i / cfg.nodes_per_rack) as u32))
            .collect();
        Cluster {
            up: vec![true; cfg.nodes],
            rack_of,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.up.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.up.is_empty()
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.cfg.nodes.div_ceil(self.cfg.nodes_per_rack)
    }

    /// The rack containing a node.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.rack_of[node.index()]
    }

    /// All nodes in a rack.
    pub fn nodes_in_rack(&self, rack: RackId) -> Vec<NodeId> {
        (0..self.len())
            .map(|i| NodeId(i as u32))
            .filter(|n| self.rack_of(*n) == rack)
            .collect()
    }

    /// Marks a node up/down.
    pub fn set_up(&mut self, node: NodeId, up: bool) {
        self.up[node.index()] = up;
    }

    /// True if the node is up.
    pub fn up(&self, node: NodeId) -> bool {
        self.up[node.index()]
    }

    /// All currently-alive nodes.
    pub fn alive(&self) -> Vec<NodeId> {
        (0..self.len())
            .map(|i| NodeId(i as u32))
            .filter(|n| self.up(*n))
            .collect()
    }

    /// Number of currently-alive nodes.
    pub fn alive_count(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_layout() {
        let c = Cluster::new(ClusterConfig {
            nodes: 10,
            nodes_per_rack: 4,
            ..ClusterConfig::default()
        });
        assert_eq!(c.racks(), 3);
        assert_eq!(c.rack_of(NodeId(0)), RackId(0));
        assert_eq!(c.rack_of(NodeId(5)), RackId(1));
        assert_eq!(c.rack_of(NodeId(9)), RackId(2));
        assert_eq!(c.nodes_in_rack(RackId(1)).len(), 4);
        assert_eq!(c.nodes_in_rack(RackId(2)).len(), 2);
    }

    #[test]
    fn liveness() {
        let mut c = Cluster::new(ClusterConfig {
            nodes: 4,
            nodes_per_rack: 2,
            ..ClusterConfig::default()
        });
        assert_eq!(c.alive_count(), 4);
        c.set_up(NodeId(1), false);
        assert!(!c.up(NodeId(1)));
        assert_eq!(c.alive(), vec![NodeId(0), NodeId(2), NodeId(3)]);
    }
}
