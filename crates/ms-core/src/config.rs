//! Configuration shared across substrates.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Which fault-tolerance scheme drives checkpointing (§II-B3, §III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// The state-of-the-art baseline: independent periodic checkpoints
    /// per HAU (randomized phase), synchronous snapshots, and *input
    /// preservation* (every HAU saves its output tuples until the
    /// downstream neighbour checkpoints them).
    Baseline,
    /// Basic Meteor Shower: token-coordinated global checkpoints with
    /// *source preservation*; individual checkpoints are synchronous and
    /// tokens propagate hop by hop (§III-A).
    MsSrc,
    /// Meteor Shower with parallel, asynchronous checkpointing:
    /// controller-broadcast 1-hop tokens; snapshots taken by a forked
    /// copy-on-write child while the parent keeps processing (§III-B).
    MsSrcAp,
    /// MS-src+ap plus application-aware checkpoint timing: profiles
    /// state-size fluctuation and fires checkpoints at local minima
    /// (§III-C).
    MsSrcApAa,
}

impl SchemeKind {
    /// All schemes, in the order the paper's figures present them.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Baseline,
        SchemeKind::MsSrc,
        SchemeKind::MsSrcAp,
        SchemeKind::MsSrcApAa,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Baseline => "Baseline",
            SchemeKind::MsSrc => "MS-src",
            SchemeKind::MsSrcAp => "MS-src+ap",
            SchemeKind::MsSrcApAa => "MS-src+ap+aa",
        }
    }

    /// True for the three Meteor Shower variants.
    pub fn is_meteor_shower(self) -> bool {
        !matches!(self, SchemeKind::Baseline)
    }

    /// True if snapshots run asynchronously in a COW child.
    pub fn asynchronous(self) -> bool {
        matches!(self, SchemeKind::MsSrcAp | SchemeKind::MsSrcApAa)
    }

    /// True if checkpoint timing is application-aware.
    pub fn application_aware(self) -> bool {
        matches!(self, SchemeKind::MsSrcApAa)
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Checkpoint cadence configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Checkpoint period. The paper's default is 200 s; the Fig. 12/13
    /// sweeps instead pin "N checkpoints within a 10-minute window".
    pub period: SimDuration,
    /// Baseline only: each HAU picks a random phase for its first
    /// checkpoint within `[0, period)`.
    pub randomize_phase: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            period: SimDuration::from_secs(200),
            randomize_phase: true,
        }
    }
}

impl CheckpointConfig {
    /// A cadence producing exactly `n` checkpoints in `window`
    /// (the Fig. 12/13 experimental knob). `n == 0` disables
    /// checkpointing by setting an effectively infinite period.
    pub fn n_in_window(n: u32, window: SimDuration) -> CheckpointConfig {
        let period = if n == 0 {
            SimDuration::MAX
        } else {
            window / u64::from(n)
        };
        CheckpointConfig {
            period,
            randomize_phase: true,
        }
    }

    /// True if checkpointing is disabled.
    pub fn disabled(&self) -> bool {
        self.period == SimDuration::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(SchemeKind::Baseline.label(), "Baseline");
        assert_eq!(SchemeKind::MsSrc.label(), "MS-src");
        assert_eq!(SchemeKind::MsSrcAp.label(), "MS-src+ap");
        assert_eq!(SchemeKind::MsSrcApAa.label(), "MS-src+ap+aa");
    }

    #[test]
    fn scheme_predicates() {
        assert!(!SchemeKind::Baseline.is_meteor_shower());
        assert!(SchemeKind::MsSrc.is_meteor_shower());
        assert!(!SchemeKind::MsSrc.asynchronous());
        assert!(SchemeKind::MsSrcAp.asynchronous());
        assert!(SchemeKind::MsSrcApAa.application_aware());
        assert!(!SchemeKind::MsSrcAp.application_aware());
    }

    #[test]
    fn n_in_window() {
        let w = SimDuration::from_secs(600);
        let c = CheckpointConfig::n_in_window(3, w);
        assert_eq!(c.period, SimDuration::from_secs(200));
        assert!(!c.disabled());
        assert!(CheckpointConfig::n_in_window(0, w).disabled());
    }
}
