//! The stream-boundary guarantee (§III-A): "no tuple will be missed
//! or processed twice when the application is recovered from a
//! failure". Verified structurally at the sink: after checkpoints, a
//! whole-application failure, rollback and source replay, the sink
//! must have consumed exactly the contiguous sequence `0..=max` once.

mod common;

use common::{pipeline_app, sink_verdict};
use ms_core::config::{CheckpointConfig, SchemeKind};
use ms_core::time::{SimDuration, SimTime};
use ms_runtime::{Engine, EngineConfig, FailTarget, FailurePlan};

fn cfg(scheme: SchemeKind, failure_at: Option<u64>) -> EngineConfig {
    EngineConfig {
        scheme,
        ckpt: CheckpointConfig::n_in_window(3, SimDuration::from_secs(90)),
        warmup: SimDuration::from_secs(5),
        measure: SimDuration::from_secs(90),
        failure: failure_at.map(|t| FailurePlan {
            at: SimTime::from_secs(t),
            target: FailTarget::AllComputeNodes,
        }),
        ..EngineConfig::default()
    }
}

fn run_and_check(scheme: SchemeKind, failure_at: Option<u64>) {
    let (app, sink) = pipeline_app();
    let report = Engine::new(app, cfg(scheme, failure_at)).unwrap().run();
    let v = sink_verdict(&report, sink);
    assert!(
        v.count > 500,
        "{scheme:?}: sink made progress ({})",
        v.count
    );
    assert!(
        v.exactly_once(),
        "{scheme:?}: sink saw count={} max={} sum={} (expected contiguous 0..=max once)",
        v.count,
        v.max_v,
        v.sum
    );
    if failure_at.is_some() {
        assert_eq!(report.recoveries.len(), 1, "one recovery episode");
        assert!(report.recoveries[0].restarted_haus > 0);
    }
}

#[test]
fn failure_free_runs_are_contiguous() {
    for scheme in SchemeKind::ALL {
        run_and_check(scheme, None);
    }
}

#[test]
fn ms_src_survives_total_failure_exactly_once() {
    run_and_check(SchemeKind::MsSrc, Some(50));
}

#[test]
fn ms_src_ap_survives_total_failure_exactly_once() {
    run_and_check(SchemeKind::MsSrcAp, Some(50));
}

#[test]
fn ms_src_ap_aa_survives_total_failure_exactly_once() {
    run_and_check(SchemeKind::MsSrcApAa, Some(50));
}

#[test]
fn failure_before_any_checkpoint_recovers_from_scratch() {
    // The failure lands before the first checkpoint completes: the
    // application restarts from its initial state and the sources
    // replay their entire preserved log.
    let (app, sink) = pipeline_app();
    let mut c = cfg(SchemeKind::MsSrcAp, Some(12));
    c.ckpt = CheckpointConfig::n_in_window(1, SimDuration::from_secs(90));
    let report = Engine::new(app, c).unwrap().run();
    let v = sink_verdict(&report, sink);
    assert!(
        v.exactly_once(),
        "count={} max={} sum={}",
        v.count,
        v.max_v,
        v.sum
    );
    assert!(report.recoveries[0].replayed_tuples > 0);
}

#[test]
fn repeated_failures_still_exactly_once() {
    // Two bursts in one run: rollback, replay, roll forward, repeat.
    let (app, sink) = pipeline_app();
    let mut c = cfg(SchemeKind::MsSrcAp, Some(40));
    c.measure = SimDuration::from_secs(120);
    let report = Engine::new(app, c).unwrap().run();
    let v = sink_verdict(&report, sink);
    assert!(v.exactly_once());
    // (Only one FailurePlan slot exists; inject the second through the
    // recovered system by rerunning with a later failure.)
    let (app, sink) = pipeline_app();
    let mut c = cfg(SchemeKind::MsSrcAp, Some(80));
    c.measure = SimDuration::from_secs(120);
    let report = Engine::new(app, c).unwrap().run();
    let v = sink_verdict(&report, sink);
    assert!(v.exactly_once());
}
