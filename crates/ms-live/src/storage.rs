//! Stable storage for the live runtimes.
//!
//! [`StableStore`] is the storage contract of the MS-src protocol:
//! individual checkpoints land in it (written by a background
//! persister thread, standing in for the forked COW child), source
//! logs are appended *before* tuples are sent (source preservation),
//! and application-checkpoint completeness is tracked exactly as in
//! `ms-storage`. [`LiveStorage`] is the in-memory implementation used
//! by the single-process runtime; `ms-wire` provides a filesystem
//! implementation shared by every process of a TCP cluster, so one
//! operator-host layer serves both.
//!
//! # Incremental checkpoints
//!
//! The write side ([`CkptWrite`]) distinguishes a full snapshot from a
//! [`CkptState::Delta`] — the keys an operator changed or removed
//! since its *previous* capture, tagged with that capture's epoch (the
//! delta's base pointer; controller epochs keep increasing across
//! recoveries, so the base is explicit, never "epoch − 1"). Stores
//! keep the chain and fold it back on read: [`StableStore::get_checkpoint`]
//! always returns a complete [`LiveHauCheckpoint`], byte-identical to
//! the full snapshot the operator would have written, so every restore
//! path is oblivious to how the bytes were stored. A [`RebasePolicy`]
//! bounds recovery cost: the store rewrites a full snapshot when the
//! chain grows past `max_chain` deltas or the accumulated delta bytes
//! exceed `max_delta_pct` percent of the base, and garbage-collects
//! epochs older than the newest complete epoch's oldest needed base.

use std::collections::HashMap;

use ms_core::delta::{self, StateDelta};
use ms_core::error::{Error, Result};
use ms_core::ids::{EpochId, OperatorId};
use ms_core::operator::OperatorSnapshot;
use ms_core::tuple::Tuple;
use parking_lot::Mutex;

/// The state portion of a checkpoint on its way to stable storage.
#[derive(Clone, Debug)]
pub enum CkptState {
    /// Complete serialized operator state.
    Full(OperatorSnapshot),
    /// Changes since the capture persisted at `base` (which this same
    /// operator wrote earlier — the persister is a FIFO, so the base
    /// is always durable first).
    Delta {
        /// Epoch of the previous durable capture this delta builds on.
        base: EpochId,
        /// The changed/removed key set.
        delta: StateDelta,
    },
}

impl CkptState {
    /// The operator's logical state size at capture time.
    pub fn logical_bytes(&self) -> u64 {
        match self {
            CkptState::Full(s) => s.logical_bytes,
            CkptState::Delta { delta, .. } => delta.logical_bytes,
        }
    }
}

/// One HAU's checkpoint as submitted to a store: the state capture
/// (full or delta) plus the cut metadata of [`LiveHauCheckpoint`].
#[derive(Clone, Debug)]
pub struct CkptWrite {
    /// The state capture.
    pub state: CkptState,
    /// Next emission sequence at the boundary.
    pub next_seq: u64,
    /// Tuples inside the alignment window at cut time.
    pub in_flight: Vec<(u32, Tuple)>,
    /// Per-input replay thresholds at the cut.
    pub resume_seq: Vec<u64>,
}

impl CkptWrite {
    /// A full-snapshot write with no in-flight portion (sources, or
    /// tests).
    pub fn full(snapshot: OperatorSnapshot, next_seq: u64) -> CkptWrite {
        CkptWrite {
            state: CkptState::Full(snapshot),
            next_seq,
            in_flight: Vec::new(),
            resume_seq: Vec::new(),
        }
    }
}

/// When a store rewrites a delta chain into a fresh full snapshot.
/// Both bounds cap recovery-time fold work; the byte bound also keeps
/// a chain of large deltas from costing more disk than it saves.
#[derive(Clone, Copy, Debug)]
pub struct RebasePolicy {
    /// Rebase when the chain (including the incoming delta) would hold
    /// this many deltas.
    pub max_chain: u32,
    /// Rebase when cumulative delta bytes (including the incoming
    /// delta) exceed this percentage of the base snapshot's size.
    pub max_delta_pct: u32,
}

impl Default for RebasePolicy {
    fn default() -> RebasePolicy {
        RebasePolicy {
            max_chain: 8,
            max_delta_pct: 50,
        }
    }
}

impl RebasePolicy {
    /// Should a chain of `chain_len` deltas totalling `cum_delta_bytes`
    /// on a `base_bytes` base be rebased?
    pub fn should_rebase(&self, chain_len: u32, cum_delta_bytes: u64, base_bytes: u64) -> bool {
        chain_len >= self.max_chain
            || cum_delta_bytes.saturating_mul(100)
                > base_bytes.saturating_mul(self.max_delta_pct as u64)
    }
}

/// The stable-storage contract shared by the in-process and TCP
/// runtimes (preserve / mark / checkpoint / load — §III-A).
///
/// Implementations must be safe to call from many operator threads
/// (and, for multi-process stores, many OS processes) at once. The
/// protocol's ordering obligation sits with the *caller*: a source
/// appends a tuple to the log before sending it downstream, and marks
/// its epoch boundary when it emits the checkpoint token. For delta
/// writes, the caller additionally guarantees the base capture was
/// submitted (and therefore, under FIFO persistence, durable) first.
pub trait StableStore: Send + Sync {
    /// Persists one individual checkpoint; returns `true` if `epoch`
    /// is now complete (every HAU has checkpointed it, each resolvable
    /// to a full snapshot). An `Err` means stable storage is unusable —
    /// the caller must stop streaming and surface the failure, never
    /// continue unpreserved.
    fn put_checkpoint(&self, epoch: EpochId, op: OperatorId, ckpt: CkptWrite) -> Result<bool>;

    /// Reads one individual checkpoint, folding any delta chain: the
    /// returned snapshot is always complete, byte-identical to the
    /// full snapshot the operator would have produced at `epoch`.
    fn get_checkpoint(&self, epoch: EpochId, op: OperatorId) -> Option<LiveHauCheckpoint>;

    /// The most recent complete application checkpoint.
    fn latest_complete(&self) -> Option<EpochId>;

    /// Source preservation: appends an emitted tuple (called *before*
    /// the tuple is sent downstream). An `Err` means the tuple is not
    /// durable and must not be sent.
    fn append_log(&self, source: OperatorId, t: Tuple) -> Result<()>;

    /// Group commit: appends a whole batch of emitted tuples in one
    /// storage round — implementations amortize lock acquisition,
    /// encoding, and the write syscall across the batch. The durable
    /// bytes must be identical to appending each tuple individually
    /// (same log bytes, same replay), and `Err` means *none* of the
    /// batch may be treated as durable: the caller must not send or
    /// ack any tuple in it. The default just loops [`append_log`],
    /// which trivially satisfies the byte-identity contract.
    ///
    /// [`append_log`]: StableStore::append_log
    fn append_log_batch(&self, source: OperatorId, batch: &[Tuple]) -> Result<()> {
        for t in batch {
            self.append_log(source, t.clone())?;
        }
        Ok(())
    }

    /// Records a source's stream boundary for an epoch: the first
    /// sequence number *after* the checkpoint.
    fn mark_epoch(&self, source: OperatorId, epoch: EpochId, next_seq: u64) -> Result<()>;

    /// The tuples a source must replay to recover from `epoch`.
    fn replay_from(&self, source: OperatorId, epoch: EpochId) -> Vec<Tuple>;

    /// Total preserved tuples across sources (reporting).
    fn preserved_tuples(&self) -> usize;
}

/// One HAU's checkpoint in the live store: the operator state at the
/// token cut, plus the in-flight portion of the cut (§III-B).
#[derive(Clone, Debug)]
pub struct LiveHauCheckpoint {
    /// The operator snapshot.
    pub snapshot: OperatorSnapshot,
    /// Next emission sequence at the boundary.
    pub next_seq: u64,
    /// Tuples that were inside the alignment window at cut time: they
    /// arrived on an input *after* that input's token but before the
    /// cut, tagged with the input port they arrived on. They are part
    /// of the cut — restored hosts apply them before reading any
    /// channel input.
    pub in_flight: Vec<(u32, Tuple)>,
    /// Per input port, the first sequence number *not yet* accounted
    /// for by this checkpoint (applied or captured in `in_flight`).
    /// On recovery the host drops replayed tuples below this
    /// threshold, so upstream replay cannot double-apply the captured
    /// channel state.
    pub resume_seq: Vec<u64>,
}

impl LiveHauCheckpoint {
    /// A checkpoint with no in-flight portion (sources, or tests).
    pub fn bare(snapshot: OperatorSnapshot, next_seq: u64) -> LiveHauCheckpoint {
        LiveHauCheckpoint {
            snapshot,
            next_seq,
            in_flight: Vec::new(),
            resume_seq: Vec::new(),
        }
    }
}

#[derive(Default)]
struct Inner {
    ckpts: HashMap<(EpochId, OperatorId), CkptWrite>,
    /// Per-source preserved tuples.
    logs: HashMap<OperatorId, Vec<Tuple>>,
    /// Per-source `(epoch, first seq after the boundary)` marks.
    marks: HashMap<OperatorId, Vec<(EpochId, u64)>>,
    complete: Vec<EpochId>,
}

impl Inner {
    /// Walks the chain under `(epoch, op)` back to its full base.
    /// Returns `(base epoch, deltas oldest-first)`, or `None` for a
    /// broken chain.
    fn chain_of(&self, epoch: EpochId, op: OperatorId) -> Option<(EpochId, Vec<&StateDelta>)> {
        let mut deltas = Vec::new();
        let mut at = epoch;
        loop {
            match self.ckpts.get(&(at, op))?.state {
                CkptState::Full(_) => break,
                CkptState::Delta { base, ref delta } => {
                    // Bases strictly precede their deltas; anything
                    // else is a corrupt chain, treated as broken.
                    if base >= at {
                        return None;
                    }
                    deltas.push(delta);
                    at = base;
                }
            }
        }
        deltas.reverse();
        Some((at, deltas))
    }

    /// Is every stored checkpoint of `epoch` resolvable, and are there
    /// enough of them?
    fn epoch_complete(&self, epoch: EpochId, expected: usize) -> bool {
        let ops: Vec<OperatorId> = self
            .ckpts
            .keys()
            .filter(|(e, _)| *e == epoch)
            .map(|&(_, op)| op)
            .collect();
        ops.len() >= expected && ops.iter().all(|&op| self.chain_of(epoch, op).is_some())
    }
}

/// The shared store.
pub struct LiveStorage {
    expected: usize,
    policy: RebasePolicy,
    inner: Mutex<Inner>,
}

impl LiveStorage {
    /// Creates a store expecting `expected` individual checkpoints per
    /// application checkpoint, with the default rebase policy.
    pub fn new(expected: usize) -> LiveStorage {
        LiveStorage::with_policy(expected, RebasePolicy::default())
    }

    /// Creates a store with an explicit rebase policy.
    pub fn with_policy(expected: usize, policy: RebasePolicy) -> LiveStorage {
        LiveStorage {
            expected,
            policy,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Diagnostic: how many deltas sit between `(epoch, op)` and its
    /// full base (0 = stored as a full snapshot), or `None` if absent
    /// or broken.
    pub fn chain_len(&self, epoch: EpochId, op: OperatorId) -> Option<usize> {
        self.inner
            .lock()
            .chain_of(epoch, op)
            .map(|(_, deltas)| deltas.len())
    }
}

impl StableStore for LiveStorage {
    fn put_checkpoint(&self, epoch: EpochId, op: OperatorId, ckpt: CkptWrite) -> Result<bool> {
        // One checkpoint format across runtimes: every accepted write
        // round-trips through the shared payload codec, so this
        // in-memory store can never hold state the filesystem store
        // could not persist and re-read.
        let ckpt = crate::ckpt_codec::roundtrip(ckpt)?;
        let mut g = self.inner.lock();
        let ckpt = match ckpt.state {
            CkptState::Delta { base, delta } => {
                let (base_epoch, mut chain) = g.chain_of(base, op).ok_or_else(|| {
                    Error::Storage(format!(
                        "delta checkpoint {epoch}/{op} references missing base {base}"
                    ))
                })?;
                let base_bytes = match &g.ckpts[&(base_epoch, op)].state {
                    CkptState::Full(s) => s.data.len() as u64,
                    CkptState::Delta { .. } => unreachable!("chain_of ends at a full"),
                };
                let cum: u64 = chain.iter().map(|d| d.encoded_bytes() as u64).sum::<u64>()
                    + delta.encoded_bytes() as u64;
                if self
                    .policy
                    .should_rebase(chain.len() as u32 + 1, cum, base_bytes)
                {
                    // Fold the whole chain (including the incoming
                    // delta) into a fresh full snapshot at this epoch.
                    let base_data = match &g.ckpts[&(base_epoch, op)].state {
                        CkptState::Full(s) => s.data.clone(),
                        CkptState::Delta { .. } => unreachable!("chain_of ends at a full"),
                    };
                    chain.push(&delta);
                    let folded: Vec<StateDelta> = chain.into_iter().cloned().collect();
                    let data = delta::fold(&base_data, &folded)?;
                    CkptWrite {
                        state: CkptState::Full(OperatorSnapshot {
                            data,
                            logical_bytes: delta.logical_bytes,
                        }),
                        ..ckpt
                    }
                } else {
                    CkptWrite {
                        state: CkptState::Delta { base, delta },
                        ..ckpt
                    }
                }
            }
            full => CkptWrite {
                state: full,
                ..ckpt
            },
        };
        g.ckpts.insert((epoch, op), ckpt);
        let complete = g.epoch_complete(epoch, self.expected);
        if complete && !g.complete.contains(&epoch) {
            g.complete.push(epoch);
            // GC: everything older than the oldest base this epoch's
            // chains rest on is unreachable from the newest complete
            // epoch and will never be restored.
            let oldest_base = g
                .ckpts
                .keys()
                .filter(|(e, _)| *e == epoch)
                .map(|&(_, o)| o)
                .collect::<Vec<_>>()
                .into_iter()
                .filter_map(|o| g.chain_of(epoch, o).map(|(b, _)| b))
                .min();
            if let Some(b) = oldest_base {
                g.ckpts.retain(|(e, _), _| *e >= b);
                // Dropping files below `b` may have broken the chains
                // of older complete epochs; prune them from the
                // complete list so `latest_complete` never names an
                // unrestorable epoch.
                let expected = self.expected;
                let still: Vec<EpochId> = g
                    .complete
                    .iter()
                    .copied()
                    .filter(|&e| g.epoch_complete(e, expected))
                    .collect();
                g.complete = still;
            }
        }
        Ok(complete)
    }

    fn get_checkpoint(&self, epoch: EpochId, op: OperatorId) -> Option<LiveHauCheckpoint> {
        let g = self.inner.lock();
        let top = g.ckpts.get(&(epoch, op))?;
        let snapshot = match &top.state {
            CkptState::Full(s) => s.clone(),
            CkptState::Delta { delta, .. } => {
                let (base_epoch, deltas) = g.chain_of(epoch, op)?;
                let base_data = match &g.ckpts[&(base_epoch, op)].state {
                    CkptState::Full(s) => &s.data,
                    CkptState::Delta { .. } => return None,
                };
                let owned: Vec<StateDelta> = deltas.into_iter().cloned().collect();
                OperatorSnapshot {
                    data: delta::fold(base_data, &owned).ok()?,
                    logical_bytes: delta.logical_bytes,
                }
            }
        };
        Some(LiveHauCheckpoint {
            snapshot,
            next_seq: top.next_seq,
            in_flight: top.in_flight.clone(),
            resume_seq: top.resume_seq.clone(),
        })
    }

    fn latest_complete(&self) -> Option<EpochId> {
        self.inner.lock().complete.iter().max().copied()
    }

    fn append_log(&self, source: OperatorId, t: Tuple) -> Result<()> {
        self.inner.lock().logs.entry(source).or_default().push(t);
        Ok(())
    }

    fn append_log_batch(&self, source: OperatorId, batch: &[Tuple]) -> Result<()> {
        self.inner
            .lock()
            .logs
            .entry(source)
            .or_default()
            .extend(batch.iter().cloned());
        Ok(())
    }

    fn mark_epoch(&self, source: OperatorId, epoch: EpochId, next_seq: u64) -> Result<()> {
        self.inner
            .lock()
            .marks
            .entry(source)
            .or_default()
            .push((epoch, next_seq));
        Ok(())
    }

    fn replay_from(&self, source: OperatorId, epoch: EpochId) -> Vec<Tuple> {
        let g = self.inner.lock();
        let from_seq = g
            .marks
            .get(&source)
            .and_then(|ms| ms.iter().find(|(e, _)| *e == epoch))
            .map(|&(_, s)| s)
            .unwrap_or(0);
        g.logs
            .get(&source)
            .map(|log| log.iter().filter(|t| t.seq >= from_seq).cloned().collect())
            .unwrap_or_default()
    }

    fn preserved_tuples(&self) -> usize {
        self.inner.lock().logs.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::delta::DeltaTable;
    use ms_core::time::SimTime;

    fn tup(seq: u64) -> Tuple {
        Tuple::new(OperatorId(0), seq, SimTime::ZERO, vec![])
    }

    fn snap(data: Vec<u8>) -> OperatorSnapshot {
        OperatorSnapshot {
            logical_bytes: data.len() as u64,
            data,
        }
    }

    #[test]
    fn completeness() {
        let s = LiveStorage::new(2);
        let ck = || CkptWrite::full(OperatorSnapshot::empty(), 0);
        assert!(!s.put_checkpoint(EpochId(1), OperatorId(0), ck()).unwrap());
        assert_eq!(s.latest_complete(), None);
        assert!(s.put_checkpoint(EpochId(1), OperatorId(1), ck()).unwrap());
        assert_eq!(s.latest_complete(), Some(EpochId(1)));
    }

    #[test]
    fn log_replay_respects_marks() {
        let s = LiveStorage::new(1);
        for seq in 0..10 {
            s.append_log(OperatorId(0), tup(seq)).unwrap();
        }
        s.mark_epoch(OperatorId(0), EpochId(1), 6).unwrap();
        let replay = s.replay_from(OperatorId(0), EpochId(1));
        assert_eq!(replay.len(), 4);
        assert_eq!(replay[0].seq, 6);
        // Unknown epoch: everything.
        assert_eq!(s.replay_from(OperatorId(0), EpochId(9)).len(), 10);
    }

    #[test]
    fn delta_chain_folds_on_read() {
        let op = OperatorId(0);
        let s = LiveStorage::new(1);
        let mut t = DeltaTable::new();
        for k in 0..8u64 {
            t.insert(k, vec![k as u8; 16]);
        }
        s.put_checkpoint(EpochId(1), op, CkptWrite::full(snap(t.snapshot()), 10))
            .unwrap();
        t.mark_clean();
        t.insert(3, vec![0xAA; 16]);
        t.remove(5);
        s.put_checkpoint(
            EpochId(2),
            op,
            CkptWrite {
                state: CkptState::Delta {
                    base: EpochId(1),
                    delta: t.take_delta(99),
                },
                next_seq: 20,
                in_flight: Vec::new(),
                resume_seq: vec![7],
            },
        )
        .unwrap();
        let got = s.get_checkpoint(EpochId(2), op).unwrap();
        assert_eq!(got.snapshot.data, t.snapshot(), "fold is byte-identical");
        assert_eq!(got.snapshot.logical_bytes, 99);
        assert_eq!(got.next_seq, 20);
        assert_eq!(got.resume_seq, vec![7]);
        assert_eq!(s.chain_len(EpochId(2), op), Some(1));
        // Epoch 1 is still intact underneath.
        let base = s.get_checkpoint(EpochId(1), op).unwrap();
        assert_eq!(base.next_seq, 10);
    }

    #[test]
    fn delta_without_base_is_a_storage_error() {
        let s = LiveStorage::new(1);
        let err = s.put_checkpoint(
            EpochId(5),
            OperatorId(0),
            CkptWrite {
                state: CkptState::Delta {
                    base: EpochId(4),
                    delta: StateDelta::default(),
                },
                next_seq: 0,
                in_flight: Vec::new(),
                resume_seq: Vec::new(),
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn chain_rebases_after_max_chain_and_gc_drops_old_epochs() {
        let op = OperatorId(0);
        // A second op keeps epochs incomplete until the end, so GC
        // only runs once we ask for it.
        let other = OperatorId(1);
        let s = LiveStorage::with_policy(
            2,
            RebasePolicy {
                max_chain: 3,
                max_delta_pct: 10_000, // byte bound effectively off
            },
        );
        let mut t = DeltaTable::new();
        for k in 0..64u64 {
            t.insert(k, vec![k as u8; 32]);
        }
        s.put_checkpoint(EpochId(1), op, CkptWrite::full(snap(t.snapshot()), 0))
            .unwrap();
        t.mark_clean();
        let mut prev = EpochId(1);
        for e in 2..=5u64 {
            t.insert(e, vec![0xBB; 32]);
            s.put_checkpoint(
                EpochId(e),
                op,
                CkptWrite {
                    state: CkptState::Delta {
                        base: prev,
                        delta: t.take_delta(0),
                    },
                    next_seq: e,
                    in_flight: Vec::new(),
                    resume_seq: Vec::new(),
                },
            )
            .unwrap();
            prev = EpochId(e);
        }
        // Epochs 2 and 3 stay deltas (chain 1, 2); epoch 4 would be the
        // third delta — rebased to a full. Epoch 5 chains on it.
        assert_eq!(s.chain_len(EpochId(2), op), Some(1));
        assert_eq!(s.chain_len(EpochId(3), op), Some(2));
        assert_eq!(s.chain_len(EpochId(4), op), Some(0));
        assert_eq!(s.chain_len(EpochId(5), op), Some(1));
        // Completing epoch 5 GCs everything below its oldest needed
        // base (op's full at epoch 4).
        assert!(s
            .put_checkpoint(EpochId(5), other, CkptWrite::full(snap(vec![9]), 0))
            .unwrap());
        assert!(s.get_checkpoint(EpochId(4), op).is_some());
        assert!(s.get_checkpoint(EpochId(2), op).is_none(), "GC'd");
        assert!(s.get_checkpoint(EpochId(3), op).is_none(), "GC'd");
        assert_eq!(s.latest_complete(), Some(EpochId(5)));
        // The surviving chain still folds to the live table.
        let got = s.get_checkpoint(EpochId(5), op).unwrap();
        assert_eq!(got.snapshot.data, t.snapshot());
    }

    #[test]
    fn byte_bound_forces_rebase() {
        let op = OperatorId(0);
        let s = LiveStorage::with_policy(
            1,
            RebasePolicy {
                max_chain: 1000,
                max_delta_pct: 50,
            },
        );
        let mut t = DeltaTable::new();
        t.insert(0, vec![1; 64]);
        s.put_checkpoint(EpochId(1), op, CkptWrite::full(snap(t.snapshot()), 0))
            .unwrap();
        t.mark_clean();
        // A delta rewriting the whole (small) table dwarfs 50% of the
        // base: stored as a rebased full.
        t.insert(0, vec![2; 64]);
        s.put_checkpoint(
            EpochId(2),
            op,
            CkptWrite {
                state: CkptState::Delta {
                    base: EpochId(1),
                    delta: t.take_delta(0),
                },
                next_seq: 0,
                in_flight: Vec::new(),
                resume_seq: Vec::new(),
            },
        )
        .unwrap();
        assert_eq!(s.chain_len(EpochId(2), op), Some(0));
        assert_eq!(
            s.get_checkpoint(EpochId(2), op).unwrap().snapshot.data,
            t.snapshot()
        );
    }
}
