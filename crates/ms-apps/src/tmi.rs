//! Transportation Mode Inference (TMI, §II-B2, Fig. 2).
//!
//! TMI collects mobile-phone position data from base stations and
//! infers each bearer's transportation mode (driving / bus / walking /
//! still) in real time with k-means clustering over speed features.
//!
//! Query network (55 operators, one HAU each, as in the paper):
//!
//! * `S0..S9` — sources: base-station position batches;
//! * `P0..P11` — Pair: speed computation from successive positions;
//! * `M0..M11` — GoogleMap: reference-speed annotation; **each M
//!   connects to all G** (Fig. 2);
//! * `G0..G9` — Group: per-phone-shard aggregation;
//! * `A0..A9` — k-means: pools grouped batches for an N-minute window
//!   and clusters at the window boundary (the dynamic HAUs);
//! * `K` — sink.

use ms_core::codec::{SnapshotReader, SnapshotWriter};
use ms_core::delta::{decode_table, encode_table, StateDelta};
use ms_core::error::Error;
use ms_core::graph::QueryNetwork;
use ms_core::ids::{OperatorId, PortId};
use ms_core::operator::{DeferredSnapshot, Operator, OperatorContext, OperatorSnapshot};
use ms_core::time::SimDuration;
use ms_core::tuple::Tuple;
use ms_core::value::Value;
use ms_runtime::AppSpec;
use ms_sim::DetRng;

use crate::kmeans::kmeans;
use crate::ops::SinkOp;
use crate::pool::Pool;

/// TMI parameters.
#[derive(Clone, Copy, Debug)]
pub struct TmiConfig {
    /// The k-means window length in minutes (the paper's `N`;
    /// Fig. 5a shows N = 1, 5, 10).
    pub window_minutes: u64,
    /// Source emission attempt interval (sources are greedy and
    /// backpressured; this is the maximum rate knob).
    pub source_tick: SimDuration,
    /// Logical bytes of one base-station position batch.
    pub batch_bytes: u64,
    /// Logical bytes of one grouped batch pooled by the k-means ops.
    pub grouped_bytes: u64,
}

impl Default for TmiConfig {
    fn default() -> Self {
        TmiConfig {
            window_minutes: 10,
            source_tick: SimDuration::from_millis(5),
            batch_bytes: 100_000,
            grouped_bytes: 25_000,
        }
    }
}

const N_SOURCES: usize = 10;
const N_PAIR: usize = 12;
const N_MAP: usize = 12;
const N_GROUP: usize = 10;
const N_KMEANS: usize = 10;

/// Role of each operator in the TMI network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Source(u32),
    Pair,
    Map,
    Group,
    KMeans,
    Sink,
}

/// The TMI application.
pub struct Tmi {
    cfg: TmiConfig,
    qn: QueryNetwork,
    roles: Vec<Role>,
}

impl Tmi {
    /// Builds TMI with the given configuration.
    pub fn new(cfg: TmiConfig) -> Tmi {
        let mut qn = QueryNetwork::new();
        let mut roles = Vec::new();
        let mut add = |qn: &mut QueryNetwork, name: String, role: Role| -> OperatorId {
            roles.push(role);
            qn.add_operator(name)
        };

        let sources: Vec<_> = (0..N_SOURCES)
            .map(|i| add(&mut qn, format!("S{i}"), Role::Source(i as u32)))
            .collect();
        let pairs: Vec<_> = (0..N_PAIR)
            .map(|i| add(&mut qn, format!("P{i}"), Role::Pair))
            .collect();
        let maps: Vec<_> = (0..N_MAP)
            .map(|i| add(&mut qn, format!("M{i}"), Role::Map))
            .collect();
        let groups: Vec<_> = (0..N_GROUP)
            .map(|i| add(&mut qn, format!("G{i}"), Role::Group))
            .collect();
        let kms: Vec<_> = (0..N_KMEANS)
            .map(|i| add(&mut qn, format!("A{i}"), Role::KMeans))
            .collect();
        let sink = add(&mut qn, "K".to_string(), Role::Sink);

        // S_{j mod 10} feeds P_j (10 base-station groups over 12 Pair
        // operators).
        for (j, &p) in pairs.iter().enumerate() {
            qn.connect(sources[j % N_SOURCES], p).unwrap();
        }
        for (j, &m) in maps.iter().enumerate() {
            qn.connect(pairs[j], m).unwrap();
        }
        // "Each GoogleMap operator connects to all Group operators."
        for &m in &maps {
            for &g in &groups {
                qn.connect(m, g).unwrap();
            }
        }
        for (i, &a) in kms.iter().enumerate() {
            qn.connect(groups[i], a).unwrap();
        }
        for &a in &kms {
            qn.connect(a, sink).unwrap();
        }
        debug_assert_eq!(qn.len(), 55);
        Tmi { cfg, qn, roles }
    }

    /// Default-configured TMI (N = 10).
    pub fn default_app() -> Tmi {
        Tmi::new(TmiConfig::default())
    }

    /// TMI with a specific window length (Fig. 5a's N).
    pub fn with_window_minutes(n: u64) -> Tmi {
        Tmi::new(TmiConfig {
            window_minutes: n,
            ..TmiConfig::default()
        })
    }
}

impl AppSpec for Tmi {
    fn name(&self) -> &str {
        "TMI"
    }

    fn query_network(&self) -> QueryNetwork {
        self.qn.clone()
    }

    fn build_operator(&self, op: OperatorId, _rng: &mut DetRng) -> Box<dyn Operator> {
        match self.roles[op.index()] {
            Role::Source(station) => Box::new(SourceOp {
                station,
                emitted: 0,
                tick: self.cfg.source_tick,
                batch_bytes: self.cfg.batch_bytes,
            }),
            Role::Pair => Box::new(PairOp::default()),
            Role::Map => Box::new(MapOp::default()),
            Role::Group => Box::new(GroupOp {
                grouped_bytes: self.cfg.grouped_bytes,
                ..GroupOp::default()
            }),
            Role::KMeans => Box::new(KMeansOp {
                window: SimDuration::from_secs(self.cfg.window_minutes * 60),
                ..KMeansOp::default()
            }),
            Role::Sink => Box::new(SinkOp::default()),
        }
    }
}

// ---------------- operators ----------------

/// Base-station source: emits one position batch per tick (greedy,
/// backpressured by the engine).
struct SourceOp {
    station: u32,
    emitted: u64,
    tick: SimDuration,
    batch_bytes: u64,
}

impl Operator for SourceOp {
    fn kind(&self) -> &'static str {
        "TmiSource"
    }

    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _ctx: &mut dyn OperatorContext) {}

    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        self.emitted += 1;
        // Position batch: station id + a handful of phone speed
        // observations (mode-dependent speed distributions).
        let mut digest = vec![f64::from(self.station), self.emitted as f64];
        for _ in 0..6 {
            let mode = ctx.rand_u64() % 4;
            let speed = match mode {
                0 => 0.2 + ctx.rand_f64() * 1.0,   // still
                1 => 1.0 + ctx.rand_f64() * 2.0,   // walking
                2 => 6.0 + ctx.rand_f64() * 6.0,   // bus
                _ => 10.0 + ctx.rand_f64() * 20.0, // driving
            };
            digest.push(speed);
        }
        ctx.emit_all(vec![Value::Blob {
            logical_bytes: self.batch_bytes,
            digest: digest.iter().map(|&v| v as f32).collect(),
        }]);
    }

    fn timer_interval(&self) -> Option<SimDuration> {
        Some(self.tick)
    }

    fn state_size(&self) -> u64 {
        16
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.emitted);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: self.state_size(),
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        self.emitted = SnapshotReader::new(&s.data).get_u64()?;
        Ok(())
    }

    fn timer_cost(&self) -> SimDuration {
        SimDuration::from_micros(500)
    }
}

/// Pair: computes speeds from successive positions; keeps a bounded
/// last-position table (static state).
#[derive(Default)]
struct PairOp {
    /// Logical bytes of the last-position table (bounded).
    table_bytes: u64,
    processed: u64,
}

const PAIR_TABLE_CAP: u64 = 3_000_000;

impl Operator for PairOp {
    fn kind(&self) -> &'static str {
        "Pair"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        self.processed += 1;
        // Table grows toward its cap as phones are seen.
        self.table_bytes = (self.table_bytes + 2_000).min(PAIR_TABLE_CAP);
        if let Some(Value::Blob {
            logical_bytes,
            digest,
        }) = t.fields.first()
        {
            // Speed = |Δposition| / Δt, already folded into the speed
            // features; pass them through with the pairing applied.
            let speeds: Vec<f32> = digest.iter().skip(2).copied().collect();
            ctx.emit_all(vec![Value::Blob {
                logical_bytes: logical_bytes / 2,
                digest: [&digest[..2.min(digest.len())], &speeds[..]].concat(),
            }]);
        }
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(25)
    }

    fn state_size(&self) -> u64 {
        self.table_bytes + 16
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.table_bytes).put_u64(self.processed);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: self.state_size(),
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.table_bytes = r.get_u64()?;
        self.processed = r.get_u64()?;
        Ok(())
    }
}

/// GoogleMap: annotates with reference speeds and shards to the Group
/// operators by phone hash ("downloading reference speed for each
/// transportation mode").
#[derive(Default)]
struct MapOp {
    cache_bytes: u64,
    processed: u64,
}

const MAP_CACHE_CAP: u64 = 1_000_000;

impl Operator for MapOp {
    fn kind(&self) -> &'static str {
        "GoogleMap"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        self.processed += 1;
        self.cache_bytes = (self.cache_bytes + 1_000).min(MAP_CACHE_CAP);
        if let Some(Value::Blob {
            logical_bytes,
            digest,
        }) = t.fields.first()
        {
            // Reference speed per mode appended; shard by station hash.
            let mut annotated = digest.clone();
            annotated.extend_from_slice(&[0.5, 1.5, 8.0, 16.0]);
            let shard = (digest.first().copied().unwrap_or(0.0) as u64 + t.seq) % N_GROUP as u64;
            ctx.emit(
                PortId(shard as u32),
                vec![Value::Blob {
                    logical_bytes: *logical_bytes,
                    digest: annotated,
                }],
            );
        }
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(20)
    }

    fn state_size(&self) -> u64 {
        self.cache_bytes + 16
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.cache_bytes).put_u64(self.processed);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: self.state_size(),
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.cache_bytes = r.get_u64()?;
        self.processed = r.get_u64()?;
        Ok(())
    }
}

/// Group: aggregates annotated batches; emits one grouped batch to its
/// k-means operator every `GROUP_FANIN` inputs.
#[derive(Default)]
struct GroupOp {
    grouped_bytes: u64,
    acc: Vec<f64>,
    count: u64,
}

const GROUP_FANIN: u64 = 25;

impl Operator for GroupOp {
    fn kind(&self) -> &'static str {
        "Group"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        if let Some(Value::Blob { digest, .. }) = t.fields.first() {
            if self.acc.len() < 8 {
                self.acc.resize(8, 0.0);
            }
            for (a, &d) in self.acc.iter_mut().zip(digest.iter().skip(2)) {
                *a += f64::from(d);
            }
            self.count += 1;
            if self.count % GROUP_FANIN == 0 {
                let n = GROUP_FANIN as f64;
                let features: Vec<f32> = self.acc.iter().map(|&v| (v / n) as f32).collect();
                self.acc.iter_mut().for_each(|v| *v = 0.0);
                ctx.emit_all(vec![Value::Blob {
                    logical_bytes: self.grouped_bytes,
                    digest: features,
                }]);
            }
        }
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(5)
    }

    fn state_size(&self) -> u64 {
        64 + self.acc.len() as u64 * 8
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::with_capacity(27 + 9 * self.acc.len());
        w.put_u64(self.grouped_bytes).put_u64(self.count);
        w.put_u64(self.acc.len() as u64);
        for v in &self.acc {
            w.put_f64(*v);
        }
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: self.state_size(),
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.grouped_bytes = r.get_u64()?;
        self.count = r.get_u64()?;
        let n = r.get_u64()? as usize;
        self.acc = (0..n)
            .map(|_| r.get_f64())
            .collect::<ms_core::Result<_>>()?;
        Ok(())
    }
}

/// K-means: pools grouped batches for the N-minute window, clusters at
/// the boundary, emits the mode summary, clears the pool. This is
/// TMI's dynamic HAU (Fig. 5a).
///
/// Delta-capable: the snapshot is a canonical `ms_core::delta` table —
/// one entry per pooled item (key = item index) plus a scalar-state
/// entry under [`KMEANS_META_KEY`] — so steady pooling epochs persist
/// only the newly pooled items, not the whole window.
#[derive(Default)]
struct KMeansOp {
    window: SimDuration,
    pool: Pool,
    windows_closed: u64,
    /// `windows_closed` at the last capture (dirty tracking for the
    /// scalar-state table entry).
    captured_windows: u64,
}

/// Table key of the k-means scalar state (`windows_closed`); item keys
/// count up from zero, so `u64::MAX` can never collide.
const KMEANS_META_KEY: u64 = u64::MAX;

impl Operator for KMeansOp {
    fn kind(&self) -> &'static str {
        "KMeans"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, _ctx: &mut dyn OperatorContext) {
        if let Some(Value::Blob {
            logical_bytes,
            digest,
        }) = t.fields.first()
        {
            self.pool.push(
                digest.iter().map(|&f| f64::from(f)).collect(),
                *logical_bytes,
            );
        }
        // Absorbing operator: tuples retire into the pool.
    }

    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        self.windows_closed += 1;
        if self.pool.is_empty() {
            return;
        }
        let mut rng = DetRng::new(ctx.rand_u64());
        let result = kmeans(&self.pool.features(), 4, 10, &mut rng);
        let mut digest: Vec<f32> = vec![self.pool.len() as f32];
        for c in result.centroids.iter().take(4) {
            digest.push(c.first().copied().unwrap_or(0.0) as f32);
        }
        self.pool.clear();
        ctx.emit_all(vec![Value::Blob {
            logical_bytes: 10_000,
            digest,
        }]);
    }

    fn timer_interval(&self) -> Option<SimDuration> {
        Some(self.window)
    }

    fn timer_aligned(&self) -> bool {
        true
    }

    fn timer_cost(&self) -> SimDuration {
        // Clustering cost scales with the pooled batch.
        SimDuration::from_micros(200) * self.pool.len() as u64
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(5)
    }

    fn state_size(&self) -> u64 {
        64 + self.pool.sampled_size()
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut table = self.pool.table();
        table.insert(KMEANS_META_KEY, self.windows_closed.to_le_bytes().to_vec());
        OperatorSnapshot {
            data: encode_table(&table),
            logical_bytes: self.state_size(),
        }
    }

    fn snapshot_delta(&mut self) -> Option<DeferredSnapshot> {
        let (mut changed, removed) = self.pool.take_delta();
        if self.windows_closed != self.captured_windows {
            changed.push((KMEANS_META_KEY, self.windows_closed.to_le_bytes().to_vec()));
            self.captured_windows = self.windows_closed;
        }
        let delta = StateDelta {
            changed,
            removed,
            logical_bytes: self.state_size(),
        };
        Some(DeferredSnapshot::Delta(Box::new(move || delta)))
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut table = decode_table(&s.data)?;
        let meta = table
            .remove(&KMEANS_META_KEY)
            .ok_or_else(|| Error::Codec("k-means snapshot missing scalar state".into()))?;
        self.windows_closed = u64::from_le_bytes(
            meta.as_slice()
                .try_into()
                .map_err(|_| Error::Codec("k-means scalar state malformed".into()))?,
        );
        let mut pool = Pool::new();
        for value in table.values() {
            let item = Pool::decode_item(value)?;
            pool.push(item.features, item.logical);
        }
        pool.mark_clean();
        self.pool = pool;
        self.captured_windows = self.windows_closed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::testctx::TestCtx;
    use ms_core::graph::{HauAssignment, HauGraph};

    #[test]
    fn network_matches_paper_shape() {
        let app = Tmi::default_app();
        let qn = app.query_network();
        assert_eq!(qn.len(), 55);
        qn.validate().unwrap();
        assert_eq!(qn.sources().len(), N_SOURCES);
        assert_eq!(qn.sinks().len(), 1);
        // Every GoogleMap op connects to all Group ops.
        let maps: Vec<OperatorId> = qn
            .operators()
            .filter(|&o| qn.meta(o).name.starts_with('M'))
            .collect();
        assert_eq!(maps.len(), N_MAP);
        for m in maps {
            assert_eq!(qn.downstream(m).len(), N_GROUP);
        }
        let assign = HauAssignment::one_per_operator(&qn);
        let graph = HauGraph::derive(&qn, &assign).unwrap();
        assert_eq!(graph.len(), 55);
    }

    #[test]
    fn kmeans_op_pools_and_clears() {
        let mut op = KMeansOp {
            window: SimDuration::from_secs(60),
            ..KMeansOp::default()
        };
        let mut ctx = TestCtx::new(1);
        for seq in 0..30 {
            let t = Tuple::new(
                OperatorId(0),
                seq,
                ms_core::time::SimTime::ZERO,
                vec![Value::Blob {
                    logical_bytes: 25_000,
                    digest: vec![1.0, 2.0, 3.0],
                }],
            );
            op.on_tuple(PortId(0), t, &mut ctx);
        }
        assert_eq!(op.pool.len(), 30);
        assert!(op.state_size() > 25_000 * 29);
        assert!(ctx.emitted.is_empty(), "pooling absorbs");
        let cost_full = op.timer_cost();
        op.on_timer(&mut ctx);
        assert_eq!(ctx.emitted.len(), 1, "summary emitted at window close");
        assert_eq!(op.pool.len(), 0, "pool cleared");
        assert!(op.state_size() < 1_000);
        assert!(cost_full > op.timer_cost());
    }

    #[test]
    fn kmeans_op_snapshot_roundtrip() {
        let mut op = KMeansOp {
            window: SimDuration::from_secs(60),
            ..KMeansOp::default()
        };
        let mut ctx = TestCtx::new(1);
        for seq in 0..5 {
            let t = Tuple::new(
                OperatorId(0),
                seq,
                ms_core::time::SimTime::ZERO,
                vec![Value::Blob {
                    logical_bytes: 100,
                    digest: vec![seq as f32],
                }],
            );
            op.on_tuple(PortId(0), t, &mut ctx);
        }
        let snap = op.snapshot();
        assert_eq!(snap.logical_bytes, op.state_size());
        let mut fresh = KMeansOp::default();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.pool, op.pool);
    }

    #[test]
    fn kmeans_deltas_fold_to_full_snapshot() {
        use ms_core::delta::fold;
        use ms_core::operator::SnapshotPayload;

        let mut op = KMeansOp {
            window: SimDuration::from_secs(60),
            ..KMeansOp::default()
        };
        let mut ctx = TestCtx::new(1);
        let feed = |op: &mut KMeansOp, ctx: &mut TestCtx, range: std::ops::Range<u64>| {
            for seq in range {
                let t = Tuple::new(
                    OperatorId(0),
                    seq,
                    ms_core::time::SimTime::ZERO,
                    vec![Value::Blob {
                        logical_bytes: 100,
                        digest: vec![seq as f32],
                    }],
                );
                op.on_tuple(PortId(0), t, ctx);
            }
        };
        feed(&mut op, &mut ctx, 0..20);
        let base = op.snapshot();
        // Full capture as chain base: marks the tracker clean the same
        // way the host does when it persists a full snapshot.
        let _ = op.snapshot_delta();

        // Epoch 2: steady pooling — the delta is only the new items.
        feed(&mut op, &mut ctx, 20..25);
        let Some(d) = op.snapshot_delta() else {
            panic!("k-means must be delta-capable");
        };
        let SnapshotPayload::Delta(d1) = d.resolve() else {
            panic!("expected a delta payload");
        };
        assert_eq!(d1.changed.len(), 5, "only newly pooled items change");
        assert!(d1.encoded_bytes() * 3 < base.data.len());

        // Epoch 3: the window closes (pool cleared) and refills a bit.
        op.on_timer(&mut ctx);
        feed(&mut op, &mut ctx, 25..28);
        let Some(d) = op.snapshot_delta() else {
            panic!("k-means must be delta-capable");
        };
        let SnapshotPayload::Delta(d2) = d.resolve() else {
            panic!("expected a delta payload");
        };
        assert!(!d2.removed.is_empty(), "window close shrinks the table");

        // Folding the chain rebuilds the epoch-3 full snapshot exactly,
        // and restoring the fold rebuilds the operator exactly.
        let folded = fold(&base.data, &[d1, d2]).unwrap();
        assert_eq!(folded, op.snapshot().data);
        let mut fresh = KMeansOp::default();
        fresh
            .restore(&OperatorSnapshot {
                data: folded,
                logical_bytes: 0,
            })
            .unwrap();
        assert_eq!(fresh.pool, op.pool);
        assert_eq!(fresh.windows_closed, op.windows_closed);
    }

    #[test]
    fn source_emits_one_batch_per_tick() {
        let mut op = SourceOp {
            station: 3,
            emitted: 0,
            tick: SimDuration::from_millis(10),
            batch_bytes: 100_000,
        };
        let mut ctx = TestCtx::new(1);
        op.on_timer(&mut ctx);
        op.on_timer(&mut ctx);
        assert_eq!(ctx.emitted.len(), 2);
        let (_, fields) = &ctx.emitted[0];
        let (bytes, digest) = fields[0].as_blob().unwrap();
        assert_eq!(bytes, 100_000);
        assert_eq!(digest[0], 3.0);
        assert!(digest.len() >= 8);
    }
}
