//! Token walkthrough on the paper's five-HAU diamond (Figs. 6 and 7).
//!
//! Runs the `1 → 2 → {3, 4} → 5` example under MS-src (propagating
//! tokens, synchronous snapshots) and MS-src+ap (controller-broadcast
//! 1-hop tokens, asynchronous snapshots), printing each HAU's
//! checkpoint timeline so the two coordination styles can be compared
//! directly.
//!
//! Run with `cargo run --release -p ms-examples --bin token_walkthrough`.

use ms_core::codec::{SnapshotReader, SnapshotWriter};
use ms_core::config::{CheckpointConfig, SchemeKind};
use ms_core::graph::QueryNetwork;
use ms_core::ids::PortId;
use ms_core::operator::{Operator, OperatorContext, OperatorSnapshot};
use ms_core::time::{SimDuration, SimTime};
use ms_core::tuple::Tuple;
use ms_core::value::Value;
use ms_runtime::{Engine, EngineConfig, SimpleApp};

/// Source pushing small tuples at a steady rate.
struct Src {
    emitted: u64,
}

impl Operator for Src {
    fn kind(&self) -> &'static str {
        "Src"
    }
    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _c: &mut dyn OperatorContext) {}
    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        self.emitted += 1;
        ctx.emit_all(vec![Value::Int(self.emitted as i64), Value::blob(50_000)]);
    }
    fn timer_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_millis(10))
    }
    fn state_size(&self) -> u64 {
        8
    }
    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.emitted);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 8,
        }
    }
    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        self.emitted = SnapshotReader::new(&s.data).get_u64()?;
        Ok(())
    }
}

/// A worker with a deliberately slow service time and some state, so
/// token waves are visible. HAU 4 runs slower than HAU 3, exactly like
/// the paper's walkthrough ("Because HAU 4 runs more slowly than HAU
/// 3, token T2 has not been processed yet").
struct Worker {
    service: SimDuration,
    state_bytes: u64,
    processed: u64,
}

impl Operator for Worker {
    fn kind(&self) -> &'static str {
        "Worker"
    }
    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        self.processed += 1;
        self.state_bytes = (self.state_bytes + 10_000).min(20_000_000);
        ctx.emit_all_fields(t.fields);
    }
    fn service_time(&self, _t: &Tuple) -> SimDuration {
        self.service
    }
    fn state_size(&self) -> u64 {
        self.state_bytes + 8
    }
    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.processed).put_u64(self.state_bytes);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: self.state_size(),
        }
    }
    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.processed = r.get_u64()?;
        self.state_bytes = r.get_u64()?;
        Ok(())
    }
}

/// Terminal consumer.
#[derive(Default)]
struct Sink {
    received: u64,
}

impl Operator for Sink {
    fn kind(&self) -> &'static str {
        "Sink"
    }
    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _c: &mut dyn OperatorContext) {
        self.received += 1;
    }
    fn state_size(&self) -> u64 {
        8
    }
    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.received);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 8,
        }
    }
    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        self.received = SnapshotReader::new(&s.data).get_u64()?;
        Ok(())
    }
}

fn diamond() -> QueryNetwork {
    let mut qn = QueryNetwork::new();
    let s = qn.add_operator("HAU1-source");
    let a = qn.add_operator("HAU2");
    let b = qn.add_operator("HAU3");
    let c = qn.add_operator("HAU4-slow");
    let k = qn.add_operator("HAU5-sink");
    qn.connect(s, a).unwrap();
    qn.connect(a, b).unwrap();
    qn.connect(a, c).unwrap();
    qn.connect(b, k).unwrap();
    qn.connect(c, k).unwrap();
    qn
}

fn run(scheme: SchemeKind) {
    let qn = diamond();
    let app = SimpleApp::new("diamond", qn, |op, _| -> Box<dyn Operator> {
        match op.index() {
            0 => Box::new(Src { emitted: 0 }),
            1 => Box::new(Worker {
                service: SimDuration::from_millis(4),
                state_bytes: 0,
                processed: 0,
            }),
            2 => Box::new(Worker {
                service: SimDuration::from_millis(8),
                state_bytes: 0,
                processed: 0,
            }),
            // HAU 4 runs more slowly than HAU 3 (Fig. 6, t=3).
            3 => Box::new(Worker {
                service: SimDuration::from_millis(18),
                state_bytes: 0,
                processed: 0,
            }),
            _ => Box::new(Sink::default()),
        }
    });
    let t_ck = SimTime::from_secs(40);
    let cfg = EngineConfig {
        scheme,
        ckpt: CheckpointConfig::n_in_window(1, SimDuration::from_secs(60)),
        warmup: SimDuration::from_secs(10),
        measure: SimDuration::from_secs(60),
        forced_checkpoints: vec![t_ck],
        ..EngineConfig::default()
    };
    let report = Engine::new(app, cfg).expect("valid app").run();
    println!("=== {} ===", scheme.label());
    for rec in report.completed_checkpoints() {
        println!(
            "checkpoint {} initiated at {} (command wave):",
            rec.epoch, rec.initiated_at
        );
        let mut ind = rec.individuals.clone();
        ind.sort_by_key(|i| i.hau.0);
        for i in ind {
            println!(
                "  HAU{}: wave arrived {:.3}s | tokens collected +{:.3}s | \
                 serialized +{:.3}s | stored +{:.3}s ({} bytes)",
                i.hau.0 + 1,
                i.started_at.as_secs_f64(),
                i.tokens_done_at
                    .saturating_since(i.started_at)
                    .as_secs_f64(),
                i.serialized_at
                    .saturating_since(i.tokens_done_at)
                    .as_secs_f64(),
                i.stored_at.saturating_since(i.serialized_at).as_secs_f64(),
                i.bytes
            );
        }
        println!(
            "  application checkpoint complete after {:.3}s",
            rec.total_time().unwrap().as_secs_f64()
        );
    }
    println!();
}

fn main() {
    println!("Token walkthrough on the Fig. 6/7 diamond: 1 -> 2 -> {{3,4}} -> 5\n");
    run(SchemeKind::MsSrc);
    run(SchemeKind::MsSrcAp);
    println!(
        "MS-src: tokens propagate hop by hop, each HAU checkpoints synchronously\n\
         before forwarding — the sink's wave arrival trails the whole cascade.\n\
         MS-src+ap: the controller commands every HAU at once; 1-hop tokens jump\n\
         the queued backlog and snapshots run in a COW child, so token collection\n\
         and disruption are much shorter."
    );
}
