//! Run reports: everything the evaluation harness needs to regenerate
//! the paper's tables and figures from one engine run.

use ms_core::config::SchemeKind;
use ms_core::ids::{EpochId, HauId};
use ms_core::metrics::{Breakdown, RunMetrics, TimeSeries};
use ms_core::time::{SimDuration, SimTime};

/// Phase labels used in checkpoint breakdowns (Fig. 14).
pub mod ckpt_phase {
    /// Waiting for tokens from all upstream neighbours.
    pub const TOKEN_COLLECTION: &str = "token collection";
    /// Writing the checkpointed state to stable storage (includes
    /// queueing at the contended storage device).
    pub const DISK_IO: &str = "disk I/O";
    /// State serialization and process creation.
    pub const OTHER: &str = "other";
}

/// Phase labels used in recovery breakdowns (Fig. 16).
pub mod rec_phase {
    /// Reading HAU state back from shared storage.
    pub const DISK_IO: &str = "disk I/O";
    /// The controller reconnecting recovered HAUs.
    pub const RECONNECTION: &str = "reconnection";
    /// Operator reload and state deserialization.
    pub const OTHER: &str = "other";
}

/// Timing of one HAU's individual checkpoint within an epoch.
#[derive(Clone, Debug)]
pub struct IndividualCheckpoint {
    /// The HAU.
    pub hau: HauId,
    /// When the checkpoint command/token wave reached this HAU (command
    /// arrival for MS-src+ap; first-token processing for MS-src).
    pub started_at: SimTime,
    /// When tokens from all upstream neighbours had been collected and
    /// the snapshot began.
    pub tokens_done_at: SimTime,
    /// When the state had been serialized (and, for async schemes, the
    /// COW child created).
    pub serialized_at: SimTime,
    /// When the write to stable storage completed.
    pub stored_at: SimTime,
    /// Logical bytes written.
    pub bytes: u64,
}

impl IndividualCheckpoint {
    /// This HAU's checkpoint duration.
    pub fn duration(&self) -> SimDuration {
        self.stored_at.saturating_since(self.started_at)
    }

    /// The Fig. 14 three-way breakdown for this HAU.
    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::new();
        b.add(
            ckpt_phase::TOKEN_COLLECTION,
            self.tokens_done_at.saturating_since(self.started_at),
        );
        b.add(
            ckpt_phase::OTHER,
            self.serialized_at.saturating_since(self.tokens_done_at),
        );
        b.add(
            ckpt_phase::DISK_IO,
            self.stored_at.saturating_since(self.serialized_at),
        );
        b
    }
}

/// One application-wide checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointRecord {
    /// Epoch id.
    pub epoch: EpochId,
    /// When the checkpoint was initiated (controller command or source
    /// token emission).
    pub initiated_at: SimTime,
    /// When the last individual checkpoint completed.
    pub completed_at: Option<SimTime>,
    /// Per-HAU timings.
    pub individuals: Vec<IndividualCheckpoint>,
}

impl CheckpointRecord {
    /// Total checkpoint time (initiation → last store), if complete.
    pub fn total_time(&self) -> Option<SimDuration> {
        self.completed_at
            .map(|c| c.saturating_since(self.initiated_at))
    }

    /// The slowest individual checkpoint — what Fig. 14 reports for the
    /// parallel schemes ("we only measure the time consumed by the
    /// slowest individual checkpoint").
    pub fn slowest_individual(&self) -> Option<&IndividualCheckpoint> {
        self.individuals
            .iter()
            .max_by_key(|i| i.duration().as_micros())
    }

    /// Total logical bytes checkpointed across HAUs.
    pub fn total_bytes(&self) -> u64 {
        self.individuals.iter().map(|i| i.bytes).sum()
    }
}

/// One recovery episode (Fig. 16).
#[derive(Clone, Debug)]
pub struct RecoveryRecord {
    /// When the failure was injected.
    pub failed_at: SimTime,
    /// When the controller detected it.
    pub detected_at: SimTime,
    /// When every HAU was restored and reconnected.
    pub recovered_at: SimTime,
    /// The epoch restored from.
    pub epoch: EpochId,
    /// Phase breakdown of the slowest recovery path.
    pub breakdown: Breakdown,
    /// Number of HAUs restarted.
    pub restarted_haus: usize,
    /// Tuples replayed by source HAUs after restoration.
    pub replayed_tuples: u64,
}

impl RecoveryRecord {
    /// Recovery time as the paper defines it: restart through
    /// reconnection (detection latency not included).
    pub fn recovery_time(&self) -> SimDuration {
        self.recovered_at.saturating_since(self.detected_at)
    }
}

/// Everything measured during one engine run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The scheme that ran.
    pub scheme: SchemeKind,
    /// Application name.
    pub app: String,
    /// Sink throughput/latency metrics over the measurement window.
    pub metrics: RunMetrics,
    /// The measurement window.
    pub window: SimDuration,
    /// Every application checkpoint taken.
    pub checkpoints: Vec<CheckpointRecord>,
    /// Recovery episodes (empty if no failure was injected).
    pub recoveries: Vec<RecoveryRecord>,
    /// Aggregate state size over time (all HAUs).
    pub state_trace: TimeSeries,
    /// Per-HAU state-size traces (dynamic-HAU analysis, Fig. 5).
    pub hau_state_traces: Vec<(HauId, TimeSeries)>,
    /// Tuples emitted by source operators during measurement.
    pub source_tuples: u64,
    /// Logical bytes preserved by the scheme's preservation mechanism
    /// over the run (source logs or input-preservation buffers).
    pub preserved_bytes: u64,
    /// Final snapshot of every operator at the end of the run (state
    /// inspection for tests and examples).
    pub final_snapshots: Vec<(
        ms_core::ids::OperatorId,
        ms_core::operator::OperatorSnapshot,
    )>,
}

impl RunReport {
    /// Sink throughput in tuples/second over the measurement window.
    pub fn throughput(&self) -> f64 {
        self.metrics.throughput(self.window)
    }

    /// Mean end-to-end latency.
    pub fn mean_latency(&self) -> SimDuration {
        self.metrics.latency.mean()
    }

    /// Completed checkpoints only.
    pub fn completed_checkpoints(&self) -> impl Iterator<Item = &CheckpointRecord> {
        self.checkpoints.iter().filter(|c| c.completed_at.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indiv(hau: u32, start: u64, tokens: u64, ser: u64, stored: u64) -> IndividualCheckpoint {
        IndividualCheckpoint {
            hau: HauId(hau),
            started_at: SimTime::from_secs(start),
            tokens_done_at: SimTime::from_secs(tokens),
            serialized_at: SimTime::from_secs(ser),
            stored_at: SimTime::from_secs(stored),
            bytes: 100,
        }
    }

    #[test]
    fn breakdown_partitions_duration() {
        let i = indiv(0, 10, 12, 15, 40);
        let b = i.breakdown();
        assert_eq!(
            b.get(ckpt_phase::TOKEN_COLLECTION),
            SimDuration::from_secs(2)
        );
        assert_eq!(b.get(ckpt_phase::OTHER), SimDuration::from_secs(3));
        assert_eq!(b.get(ckpt_phase::DISK_IO), SimDuration::from_secs(25));
        assert_eq!(b.total(), i.duration());
    }

    #[test]
    fn slowest_individual() {
        let rec = CheckpointRecord {
            epoch: EpochId(1),
            initiated_at: SimTime::from_secs(10),
            completed_at: Some(SimTime::from_secs(60)),
            individuals: vec![indiv(0, 10, 11, 12, 30), indiv(1, 10, 11, 12, 60)],
        };
        assert_eq!(rec.slowest_individual().unwrap().hau, HauId(1));
        assert_eq!(rec.total_time(), Some(SimDuration::from_secs(50)));
        assert_eq!(rec.total_bytes(), 200);
    }
}
