//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access. This workspace only
//! ever *derives* `Serialize`/`Deserialize` (no serde format crate is
//! in the approved dependency list; snapshots go through
//! `ms-core::codec`), so the traits here are markers with blanket
//! impls and the re-exported derives expand to nothing.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
