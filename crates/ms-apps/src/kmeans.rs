//! K-means clustering — the kernel of TMI (§II-B2).
//!
//! "The kernel of TMI is the k-means clustering algorithm. The k-means
//! operators manipulate data in batches": points pool up during an
//! N-minute window and are clustered when it closes. This is a real,
//! deterministic Lloyd's-algorithm implementation (k-means++ style
//! seeding with a caller-provided random stream).

use ms_sim::DetRng;

/// Result of one clustering run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Final centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs Lloyd's algorithm with k-means++ seeding.
///
/// Degenerate inputs are handled gracefully: fewer points than `k`
/// yields one centroid per point; empty input yields an empty result.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut DetRng) -> KMeansResult {
    if points.is_empty() || k == 0 {
        return KMeansResult {
            centroids: Vec::new(),
            assignments: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(points.len());
    let dim = points[0].len();

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.range_u64(0, points.len() as u64) as usize;
    centroids.push(points[first].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.range_u64(0, points.len() as u64) as usize
        } else {
            let mut target = rng.f64() * total;
            let mut idx = 0;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, centroids.last().unwrap()));
        }
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iters.max(1) {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    sq_dist(p, &centroids[a])
                        .partial_cmp(&sq_dist(p, &centroids[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (s, &x) in sums[assignments[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                for (cv, &s) in c.iter_mut().zip(sum) {
                    *cv = s / *count as f64;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(7)
    }

    #[test]
    fn separates_obvious_clusters() {
        // Two tight blobs far apart.
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            pts.push(vec![100.0 + (i as f64) * 0.01, 100.0]);
        }
        let r = kmeans(&pts, 2, 50, &mut rng());
        assert_eq!(r.centroids.len(), 2);
        // All even-indexed points together, all odd-indexed together.
        let a0 = r.assignments[0];
        assert!(r.assignments.iter().step_by(2).all(|&a| a == a0));
        assert!(r.assignments.iter().skip(1).step_by(2).all(|&a| a != a0));
        assert!(r.inertia < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 11) as f64])
            .collect();
        let a = kmeans(&pts, 3, 20, &mut DetRng::new(3));
        let b = kmeans(&pts, 3, 20, &mut DetRng::new(3));
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn degenerate_inputs() {
        let r = kmeans(&[], 3, 10, &mut rng());
        assert!(r.centroids.is_empty());
        let one = vec![vec![1.0, 2.0]];
        let r = kmeans(&one, 5, 10, &mut rng());
        assert_eq!(r.centroids.len(), 1);
        assert_eq!(r.assignments, vec![0]);
        let r = kmeans(&one, 0, 10, &mut rng());
        assert!(r.centroids.is_empty());
    }

    #[test]
    fn inertia_never_increases_with_more_clusters() {
        let pts: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i as f64 * 1.37) % 10.0, (i as f64 * 2.11) % 10.0])
            .collect();
        let mut last = f64::MAX;
        for k in 1..=5 {
            // Best of 3 seeds to smooth k-means++ randomness.
            let best = (0..3)
                .map(|s| kmeans(&pts, k, 30, &mut DetRng::new(s)).inertia)
                .fold(f64::MAX, f64::min);
            assert!(best <= last + 1e-9, "k={k} inertia {best} > {last}");
            last = best;
        }
    }
}
