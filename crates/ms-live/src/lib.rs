//! A real-thread mini-runtime for the Meteor Shower token protocol.
//!
//! The evaluation-scale experiments run on the deterministic simulator
//! (`ms-runtime`); this crate complements them by executing the *same
//! operator trait* on actual OS threads connected by bounded crossbeam
//! channels, with checkpoint tokens riding the dataflow — evidence
//! that the protocol is a runnable system and not only a simulation.
//!
//! Scope: the MS-src propagating-token protocol (§III-A) with source
//! preservation against an in-memory stable store, asynchronous
//! snapshot persistence on a writer thread (the COW child's role), and
//! checkpoint/replay recovery. One operator per HAU; acyclic graphs.
//!
//! ```
//! use ms_live::{LiveRuntime, LiveStorage, CountSource, Summer};
//! use ms_core::graph::QueryNetwork;
//! use std::sync::Arc;
//!
//! let mut qn = QueryNetwork::new();
//! let s = qn.add_operator("src");
//! let k = qn.add_operator("sink");
//! qn.connect(s, k).unwrap();
//!
//! let storage = Arc::new(LiveStorage::new(2));
//! let mut rt = LiveRuntime::start(&qn, storage.clone(), |op| {
//!     if op == s {
//!         Box::new(CountSource::new(100))
//!     } else {
//!         Box::new(Summer::default())
//!     }
//! }).unwrap();
//! rt.checkpoint();                        // tokens trickle down the graph
//! let final_ops = rt.finish().unwrap();   // drain and join
//! assert!(final_ops.len() == 2);
//! ```

#![warn(missing_docs)]

pub mod ckpt_codec;
pub mod host;
pub mod protocol;
pub mod storage;

pub use host::{
    DurableHook, EdgeTx, HostExit, HostMsg, HostWiring, InteriorCore, OutputRoute, PersistItem,
    Persister, RouteKeyFn, SourceCmd,
};
pub use protocol::{CountSource, Doubler, LiveRuntime, LiveTelemetry, Summer};
pub use storage::{
    CkptState, CkptWrite, LiveHauCheckpoint, LiveStorage, RebasePolicy, StableStore,
};
