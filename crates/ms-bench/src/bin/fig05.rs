//! Fig. 5 — fluctuation in state size.
//!
//! Runs each application with checkpointing disabled and dumps the
//! aggregate state-size trace: TMI for N = 1, 5, 10 over 20 minutes,
//! BCP over 20 minutes, SignalGuru over 14 minutes. Prints the trace
//! (downsampled), the local minima count, and the min/avg/max envelope
//! against the paper's. The five traces run concurrently on the sweep
//! worker pool.

use ms_apps::{Bcp, SignalGuru, Tmi};
use ms_bench::paper::FIG5_STATE_MB;
use ms_bench::runner::run_parallel;
use ms_bench::BenchArgs;
use ms_core::config::SchemeKind;
use ms_core::time::SimDuration;
use ms_runtime::{Engine, EngineConfig, RunReport};

/// One trace of the figure: which app variant, over how many minutes.
#[derive(Clone, Copy)]
enum Trace {
    Tmi(u64),
    Bcp,
    SignalGuru,
}

impl Trace {
    fn label(self) -> String {
        match self {
            Trace::Tmi(n) => format!("TMI N={n}"),
            Trace::Bcp => "BCP".to_string(),
            Trace::SignalGuru => "SignalGuru".to_string(),
        }
    }

    fn minutes(self) -> u64 {
        match self {
            Trace::Tmi(_) | Trace::Bcp => 20,
            Trace::SignalGuru => 14,
        }
    }

    fn run(self, seed: u64) -> RunReport {
        let cfg = cfg(self.minutes(), seed);
        match self {
            Trace::Tmi(n) => Engine::new(Tmi::with_window_minutes(n), cfg)
                .expect("valid app")
                .run(),
            Trace::Bcp => Engine::new(Bcp::default_app(), cfg)
                .expect("valid app")
                .run(),
            Trace::SignalGuru => Engine::new(SignalGuru::default_app(), cfg)
                .expect("valid app")
                .run(),
        }
    }
}

fn render_trace(trace: Trace, seed: u64) -> String {
    let report = trace.run(seed);
    let minutes = trace.minutes();
    let ts = &report.state_trace;
    let mut out = format!("--- {} ({minutes} minutes) ---\n", trace.label());
    // Downsampled series (one point per ~30 s) for plotting.
    let points = ts.points();
    let step = (points.len() / (minutes as usize * 2)).max(1);
    out.push_str("trace MB:");
    for (i, (t, v)) in points.iter().enumerate() {
        if i % step == 0 {
            out.push_str(&format!(" {:.0}:{:.0}", t.as_secs_f64(), v / 1e6));
        }
    }
    out.push('\n');
    let minima = ts.local_minima().len();
    out.push_str(&format!(
        "min {:.0} MB | avg {:.0} MB | max {:.0} MB | {} local minima",
        ts.min() / 1e6,
        ts.mean() / 1e6,
        ts.max() / 1e6,
        minima
    ));
    out
}

fn cfg(minutes: u64, seed: u64) -> EngineConfig {
    EngineConfig {
        scheme: SchemeKind::MsSrcAp,
        ckpt: ms_core::config::CheckpointConfig::n_in_window(0, SimDuration::from_secs(600)),
        warmup: SimDuration::from_secs(0),
        measure: SimDuration::from_secs(minutes * 60),
        seed,
        ..EngineConfig::default()
    }
}

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 5: state-size fluctuation (checkpointing disabled)\n");
    let traces = [
        Trace::Tmi(1),
        Trace::Tmi(5),
        Trace::Tmi(10),
        Trace::Bcp,
        Trace::SignalGuru,
    ];
    let seed = args.seed();
    let blocks = run_parallel(&traces, args.threads(), |&t| render_trace(t, seed));
    for block in blocks {
        println!("{block}");
    }

    println!("\npaper envelopes (Fig. 5):");
    for (app, [min, avg, max]) in FIG5_STATE_MB {
        println!("  {app:<12} min ~{min:.0} MB, avg ~{avg:.0} MB, max ~{max:.0} MB");
    }
}
