//! `ms-gate`: the Meteor Shower ingestion gateway.
//!
//! A gateway is a hardware-accelerated unit (HAU) that sits on the
//! engine's front edge and absorbs high-rate producer traffic the way
//! the paper's input managers do:
//!
//! - **One thread, thousands of connections.** Producer sockets are
//!   multiplexed on `ms-net`'s `poll(2)` wrapper; there is no
//!   thread-per-connection anywhere in the ingest path.
//! - **Ack-after-WAL.** A batch is acknowledged only after every tuple
//!   it produced is framed into the worker's preservation log. An
//!   acked event therefore survives SIGKILL of the hosting worker and
//!   replays through the standard `resume_seq` recovery machinery.
//! - **Per-key pre-aggregation.** Within a batch, events sharing a key
//!   fold into one tuple before they ever touch the log or an engine
//!   edge, shrinking both WAL and edge volume on skewed workloads.
//! - **Admission-level load shedding.** A bounded per-checkpoint
//!   budget (bytes and/or batches) sheds overload at the socket with
//!   an explicit `Busy { retry_after_ms }` ack instead of letting
//!   queues grow without bound; shed batches are provably absent
//!   downstream because they never reach the log.
//!
//! The wire alphabet ([`ms_core::gate::GateMsg`]) and admission
//! configuration ([`ms_core::gate::GateConfig`]) live in `ms-core` so
//! that producers need no dependency on this crate.

#![warn(missing_docs)]

pub mod admission;
pub mod meter;
pub mod run;

pub use admission::{field, is_fin_marker, Admission, GateCore};
pub use meter::{GateMeter, GateSample};
pub use run::{run_gate, GateOp, GateWiring};
