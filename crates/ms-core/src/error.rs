//! Error type shared across the workspace.

use std::fmt;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the Meteor Shower crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A snapshot could not be decoded (truncated/corrupt data or a
    /// tag mismatch).
    Codec(String),
    /// A query network is malformed (cycle, dangling edge, duplicate
    /// connection, …).
    Graph(String),
    /// An experiment or cluster configuration is invalid.
    Config(String),
    /// A recovery step failed (e.g. no complete checkpoint exists).
    Recovery(String),
    /// A component was addressed that does not exist.
    NotFound(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Graph(m) => write!(f, "query network error: {m}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Recovery(m) => write!(f, "recovery error: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category() {
        assert!(Error::Codec("x".into()).to_string().contains("codec"));
        assert!(Error::Graph("x".into())
            .to_string()
            .contains("query network"));
    }
}
