//! A miniature Meteor Shower cluster over *real TCP* on localhost:
//! one controller and two workers, each running the same daemon code
//! as the `ms-controller` / `ms-worker` binaries, hosted here on
//! threads so the example is a single runnable program. Operators talk
//! across genuine sockets with length-prefixed frames; the controller
//! paces checkpoints and collects the sink's final answer.
//!
//! Run with `cargo run --release -p ms-examples --bin wire_cluster`.
//!
//! For the full failure story — SIGKILL a worker process mid-stream
//! and watch the controller roll back, redeploy, and replay — use the
//! real binaries as shown in the `ms-wire` crate docs (the
//! `kill_recover` integration test automates it).

use std::thread;
use std::time::Duration;

use ms_core::codec::SnapshotReader;
use ms_wire::{
    read_ledger, run_controller, run_worker, summarize, ControllerAddr, ControllerConfig,
    WorkerConfig, LEDGER_FILE,
};

fn main() {
    let dir = std::env::temp_dir().join(format!("ms_wire_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");
    let addr_file = dir.join("addr");

    const LIMIT: u64 = 2000;
    let cfg = ControllerConfig {
        listen: "127.0.0.1:0".into(),
        addr_file: Some(addr_file.clone()),
        store_dir: store.clone(),
        workers: 2,
        shape: "chain3".into(),
        source_limit: LIMIT,
        source_delay_us: 100,
        keyed_state: 0,
        ckpt_interval: Duration::from_millis(100),
        hb_timeout: Duration::from_millis(500),
        respawn_wait: Duration::from_millis(2000),
        deadline: Duration::from_secs(60),
        result_file: None,
    };
    let controller = thread::spawn(move || run_controller(cfg));

    let workers: Vec<_> = ["wa", "wb"]
        .into_iter()
        .map(|name| {
            let cfg = WorkerConfig {
                name: name.into(),
                controller: ControllerAddr::File(addr_file.clone()),
                store_dir: store.clone(),
                heartbeat_interval: Duration::from_millis(50),
                log_cap_bytes: None,
            };
            thread::spawn(move || run_worker(cfg))
        })
        .collect();

    let report = controller.join().unwrap().expect("controller failed");
    for w in workers {
        w.join().unwrap().expect("worker failed");
    }

    println!(
        "cluster done: {} checkpoints paced, {} recoveries",
        report.checkpoints, report.recoveries
    );
    for (op, state) in &report.sink_states {
        let mut r = SnapshotReader::new(state);
        let sum = r.get_i64().unwrap();
        let count = r.get_u64().unwrap();
        println!("sink op{}: sum={sum} over {count} tuples", op.0);
        // chain3 is source → doubler → summer.
        assert_eq!(sum, 2 * (0..LIMIT as i64).sum::<i64>());
        assert_eq!(count, LIMIT);
    }

    // The controller left a run ledger next to the checkpoints: one
    // row per (epoch, operator) with state size, checkpoint bytes, the
    // three-phase breakdown, and barrier latency. `ms_ledger` renders
    // the same summary from the file on disk.
    let records = read_ledger(&store.join(LEDGER_FILE)).expect("run ledger must parse");
    for epoch in records
        .iter()
        .map(|r| r.epoch)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let ops: std::collections::BTreeSet<u32> = records
            .iter()
            .filter(|r| r.epoch == epoch)
            .map(|r| r.op)
            .collect();
        assert_eq!(ops.len(), 3, "epoch {epoch} missing operators: {ops:?}");
    }
    print!("{}", summarize(&records, 3));

    let _ = std::fs::remove_dir_all(&dir);
}
