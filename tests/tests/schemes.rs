//! Cross-scheme behavioural invariants on the real paper applications
//! (shortened windows so debug-mode CI stays fast).

use ms_apps::{SignalGuru, Tmi};
use ms_core::config::{CheckpointConfig, SchemeKind};
use ms_core::time::SimDuration;
use ms_runtime::{Engine, EngineConfig, RunReport};

fn short_cfg(scheme: SchemeKind, n: u32) -> EngineConfig {
    let window = SimDuration::from_secs(180);
    EngineConfig {
        scheme,
        ckpt: CheckpointConfig::n_in_window(n, window),
        warmup: SimDuration::from_secs(30),
        measure: window,
        ..EngineConfig::default()
    }
}

fn run_tmi(scheme: SchemeKind, n: u32) -> RunReport {
    Engine::new(Tmi::with_window_minutes(1), short_cfg(scheme, n))
        .unwrap()
        .run()
}

#[test]
fn source_preservation_beats_input_preservation() {
    // The paper's core common-case claim (§I.1): with no checkpoints
    // at all, Meteor Shower outperforms the baseline purely through
    // source preservation.
    let base = run_tmi(SchemeKind::Baseline, 0);
    let ms = run_tmi(SchemeKind::MsSrc, 0);
    assert!(
        ms.throughput() > base.throughput() * 1.05,
        "MS-src {:.1} should clearly beat baseline {:.1}",
        ms.throughput(),
        base.throughput()
    );
    assert!(
        ms.mean_latency() < base.mean_latency(),
        "MS-src latency {:?} should undercut baseline {:?}",
        ms.mean_latency(),
        base.mean_latency()
    );
}

#[test]
fn all_meteor_schemes_complete_checkpoints() {
    for scheme in [
        SchemeKind::MsSrc,
        SchemeKind::MsSrcAp,
        SchemeKind::MsSrcApAa,
    ] {
        let report = run_tmi(scheme, 2);
        let completed = report.completed_checkpoints().count();
        assert!(
            completed >= 1,
            "{scheme:?} completed {completed} checkpoints"
        );
        for c in report.completed_checkpoints() {
            assert_eq!(c.individuals.len(), 55, "all 55 HAUs participate");
            assert!(c.total_bytes() > 0);
        }
    }
}

#[test]
fn asynchronous_checkpointing_caps_latency_disruption() {
    // Fig. 15's claim: synchronous (MS-src) checkpoints spike
    // instantaneous latency far above the asynchronous schemes'.
    let src = run_tmi(SchemeKind::MsSrc, 2);
    let ap = run_tmi(SchemeKind::MsSrcAp, 2);
    let peak = |r: &RunReport| r.metrics.latency.max().as_secs_f64();
    assert!(
        peak(&src) > peak(&ap) * 1.5,
        "sync peak {:.2}s vs async peak {:.2}s",
        peak(&src),
        peak(&ap)
    );
}

#[test]
fn checkpoint_epochs_are_monotone_and_complete_in_order() {
    let report = run_tmi(SchemeKind::MsSrcAp, 3);
    let mut last = None;
    for c in &report.checkpoints {
        if let Some(prev) = last {
            assert!(c.epoch > prev, "epochs strictly increase");
        }
        last = Some(c.epoch);
        if let Some(done) = c.completed_at {
            assert!(done >= c.initiated_at);
        }
    }
}

#[test]
fn signalguru_state_dwarfs_tmi_state() {
    // Fig. 5's ordering: SignalGuru (high workload) >> TMI (low).
    let tmi = run_tmi(SchemeKind::MsSrcAp, 0);
    let sg = Engine::new(SignalGuru::default_app(), short_cfg(SchemeKind::MsSrcAp, 0))
        .unwrap()
        .run();
    assert!(
        sg.state_trace.mean() > tmi.state_trace.mean() * 3.0,
        "SignalGuru {:.0} MB vs TMI {:.0} MB",
        sg.state_trace.mean() / 1e6,
        tmi.state_trace.mean() / 1e6
    );
}

#[test]
fn dynamic_haus_are_a_minority() {
    // §III-C2: dynamic HAUs constitute less than 20% of all HAUs.
    // Classified on steady-state traces (startup transient trimmed,
    // as the profiler does): min < avg / 2.
    let report = run_tmi(SchemeKind::MsSrcAp, 0);
    let cutoff = 60.0;
    let dynamic = report
        .hau_state_traces
        .iter()
        .filter(|(_, ts)| {
            let vals: Vec<f64> = ts
                .points()
                .iter()
                .filter(|(t, _)| t.as_secs_f64() >= cutoff)
                .map(|&(_, v)| v)
                .collect();
            if vals.is_empty() {
                return false;
            }
            let min = vals.iter().copied().fold(f64::MAX, f64::min);
            let avg = vals.iter().sum::<f64>() / vals.len() as f64;
            min < avg / 2.0
        })
        .count();
    assert!(dynamic <= 11, "{dynamic}/55 dynamic HAUs (paper: <20%)");
    assert!(dynamic >= 5, "the k-means HAUs must register as dynamic");
}
