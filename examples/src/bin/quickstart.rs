//! Quickstart: define a tiny stream application, run it on the
//! Meteor Shower engine under MS-src+ap+aa, and read the report.
//!
//! Run with `cargo run --release -p ms-examples --bin quickstart`.

use ms_core::codec::{SnapshotReader, SnapshotWriter};
use ms_core::config::{CheckpointConfig, SchemeKind};
use ms_core::graph::QueryNetwork;
use ms_core::ids::PortId;
use ms_core::operator::{Operator, OperatorContext, OperatorSnapshot};
use ms_core::time::SimDuration;
use ms_core::tuple::Tuple;
use ms_core::value::Value;
use ms_runtime::{Engine, EngineConfig, SimpleApp};

/// A source emitting one reading per 20 ms tick.
struct Reading {
    emitted: u64,
}

impl Operator for Reading {
    fn kind(&self) -> &'static str {
        "Reading"
    }
    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _c: &mut dyn OperatorContext) {}
    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        self.emitted += 1;
        let v = (self.emitted as f64 / 10.0).sin() * 50.0 + 50.0;
        ctx.emit_all(vec![Value::Float(v), Value::blob(10_000)]);
    }
    fn timer_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_millis(20))
    }
    fn state_size(&self) -> u64 {
        8
    }
    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.emitted);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 8,
        }
    }
    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        self.emitted = SnapshotReader::new(&s.data).get_u64()?;
        Ok(())
    }
}

/// A windowed averager: pools readings for 30 s, then emits the mean —
/// the accumulate-then-discard pattern that makes state fluctuate.
#[derive(Default)]
struct WindowAvg {
    values: Vec<f64>,
    pooled_bytes: u64,
}

impl Operator for WindowAvg {
    fn kind(&self) -> &'static str {
        "WindowAvg"
    }
    fn on_tuple(&mut self, _p: PortId, t: Tuple, _c: &mut dyn OperatorContext) {
        if let Some(v) = t.field(0).and_then(Value::as_float) {
            self.values.push(v);
            self.pooled_bytes += t.payload_bytes();
        }
    }
    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        if !self.values.is_empty() {
            let mean = self.values.iter().sum::<f64>() / self.values.len() as f64;
            self.values.clear();
            self.pooled_bytes = 0;
            ctx.emit_all(vec![Value::Float(mean)]);
        }
    }
    fn timer_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(30))
    }
    fn timer_aligned(&self) -> bool {
        true
    }
    fn state_size(&self) -> u64 {
        self.pooled_bytes + 16
    }
    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.pooled_bytes);
        w.put_seq(self.values.iter(), |w, v| {
            w.put_f64(*v);
        });
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: self.state_size(),
        }
    }
    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.pooled_bytes = r.get_u64()?;
        self.values = r.get_seq(|r| r.get_f64())?;
        Ok(())
    }
}

/// Sink counting window means.
#[derive(Default)]
struct Alerts {
    received: u64,
}

impl Operator for Alerts {
    fn kind(&self) -> &'static str {
        "Alerts"
    }
    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _c: &mut dyn OperatorContext) {
        self.received += 1;
    }
    fn state_size(&self) -> u64 {
        8
    }
    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.received);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 8,
        }
    }
    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        self.received = SnapshotReader::new(&s.data).get_u64()?;
        Ok(())
    }
}

fn main() {
    // sensor -> window average -> alert sink.
    let mut qn = QueryNetwork::new();
    let sensor = qn.add_operator("sensor");
    let avg = qn.add_operator("window-avg");
    let alerts = qn.add_operator("alerts");
    qn.connect(sensor, avg).unwrap();
    qn.connect(avg, alerts).unwrap();

    let app = SimpleApp::new("quickstart", qn, move |op, _rng| -> Box<dyn Operator> {
        if op == sensor {
            Box::new(Reading { emitted: 0 })
        } else if op == avg {
            Box::new(WindowAvg::default())
        } else {
            Box::new(Alerts::default())
        }
    });

    let cfg = EngineConfig {
        scheme: SchemeKind::MsSrcApAa,
        ckpt: CheckpointConfig::n_in_window(2, SimDuration::from_secs(120)),
        warmup: SimDuration::from_secs(75),
        measure: SimDuration::from_secs(120),
        ..EngineConfig::default()
    };
    let report = Engine::new(app, cfg).expect("valid app").run();

    println!("quickstart: {} under {}", report.app, report.scheme.label());
    println!(
        "  processed {} tuples ({:.1}/s), mean latency {:.1} ms",
        report.metrics.processed_tuples,
        report.throughput(),
        report.mean_latency().as_secs_f64() * 1e3
    );
    println!(
        "  state size: min {:.1} KB / avg {:.1} KB / max {:.1} KB",
        report.state_trace.min() / 1e3,
        report.state_trace.mean() / 1e3,
        report.state_trace.max() / 1e3
    );
    for c in report.completed_checkpoints() {
        println!(
            "  checkpoint {}: initiated {}, total {:.3}s, {} bytes across {} HAUs",
            c.epoch,
            c.initiated_at,
            c.total_time().unwrap().as_secs_f64(),
            c.total_bytes(),
            c.individuals.len()
        );
    }
}
