//! The `ms-worker` daemon: hosts operators over real TCP streams.
//!
//! One worker process runs any subset of a generation's operators —
//! including shard instances of key-partitioned HAUs — on a thread
//! budget that is O(cores), not O(edges + operators):
//!
//! * **One I/O thread** (the `evloop` module) owns the data-plane
//!   listener and every peer socket, nonblocking, multiplexed with
//!   `poll(2)`. Inbound frames land in per-operator inboxes; outbound
//!   frames coalesce in per-connection buffers written on socket
//!   writability.
//! * **A fixed apply pool** (2–4 threads) runs the protocol state
//!   machine ([`ms_live::InteriorCore`]) of every interior/sink HAU.
//! * **Source HAUs** keep a dedicated thread each
//!   ([`ms_live::host::run_host`]): they block on pacing sleeps and
//!   stable-store appends, which must not stall the shared pool.
//!
//! Local edges are direct inbox pushes — colocated operators pay no
//! socket tax, exactly the HAU-grouping benefit of §II-A. A producer
//! whose logical consumer is sharded gets one [`OutputRoute`] over
//! the whole instance group (hash of the routing key picks the
//! shard); tokens and EOS broadcast to every instance, because each
//! shard checkpoints as a first-class HAU.
//!
//! Failure semantics, the part that makes recovery correct:
//!
//! * A data socket that dies **without** [`WireMsg::Eos`] is a peer
//!   failure, not an end-of-stream. The connection is dropped but the
//!   consumer's input stays open and *silent*, so a sink can never
//!   mistake a crash for completion. Only the controller's `Rollback`
//!   (or a superseding `Assign`) unwinds it.
//! * An egress buffer whose socket breaks switches to *drain* mode:
//!   pushes are discarded so local hosts never wedge mid-teardown.
//!   The discarded tuples are safe — they are either preserved in the
//!   source log or derivable from it, and the rollback rewinds
//!   downstream state behind them.
//! * Teardown (`Rollback`, a superseding `Assign`, or `Shutdown`)
//!   marks the generation torn (producers' next emission fails,
//!   unwinding hosts), tells the I/O thread to drop the generation's
//!   sockets and routes, and schedules every pooled cell once more so
//!   its final state is flushed.
//! * The persister acks every durable individual checkpoint to the
//!   controller (`CkptDone`) — the controller's epoch barrier — and
//!   surfaces storage failures as `WorkerError` instead of aborting
//!   the process.
//! * Heartbeats ride a dedicated TCP connection (`HeartbeatHello`
//!   handshake), so a stalled report write on the shared control
//!   socket can never delay liveness signals into a spurious failure
//!   detection.

use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use ms_core::error::{Error, Result};
use ms_core::ids::OperatorId;
use ms_core::metrics::{BackpressureGauges, BackpressureMeter, OperatorMeter, OperatorSample};
use ms_gate::{run_gate, GateMeter, GateOp, GateSample, GateWiring};
use ms_live::host::run_host;
use ms_live::{
    EdgeTx, HostExit, HostWiring, InteriorCore, OutputRoute, Persister, SourceCmd, StableStore,
};
use ms_net::ready::Waker;
use parking_lot::Mutex;

use crate::apps::{build_operator, route_key};
use crate::chaos::{FaultStore, RetryStore, StoreFaultSpec};
use crate::evloop::{self, CellTx, EgressBuf, EgressHandle, HostCell, IoCmd};
use crate::message::{recv_msg, send_msg, Assignment, WireMsg};
use crate::store::FsStore;
use ms_net::fault::FaultPlan;

const FILE_POLL: Duration = Duration::from_millis(20);
const CONNECT_WAIT: Duration = Duration::from_secs(10);
/// How long a capped source log pauses its source waiting for a
/// checkpoint to free space before failing the generation.
const LOG_CAP_PATIENCE: Duration = Duration::from_secs(10);

/// How a worker finds its controller.
#[derive(Clone, Debug)]
pub enum ControllerAddr {
    /// A literal `host:port`.
    Addr(String),
    /// A file the controller writes its address into (atomic rename);
    /// the worker polls until it appears.
    File(PathBuf),
}

/// Worker configuration.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Unique worker name (placement is keyed on it).
    pub name: String,
    /// Controller location.
    pub controller: ControllerAddr,
    /// Shared stable-store directory (same filesystem as the other
    /// processes of the cluster).
    pub store_dir: PathBuf,
    /// Heartbeat cadence.
    pub heartbeat_interval: Duration,
    /// Byte cap per source-preservation log. `None` means unbounded;
    /// `Some(cap)` pauses a source whose log is full (backpressure)
    /// until a complete checkpoint frees space, failing the generation
    /// after [`LOG_CAP_PATIENCE`].
    pub log_cap_bytes: Option<u64>,
}

/// A generation's operator meters: the generation tag plus each local
/// operator's shared [`OperatorMeter`].
type GenerationMeters = (u64, Vec<(OperatorId, Arc<OperatorMeter>)>);

/// A generation's gateway meters, tagged the same way.
type GenerationGateMeters = (u64, Vec<(OperatorId, Arc<GateMeter>)>);

/// Cross-thread worker state.
struct Shared {
    /// Per-host backpressure meters of the current generation; the
    /// heartbeat thread sums them into each liveness message.
    meters: Mutex<Vec<Arc<BackpressureMeter>>>,
    /// Per-operator telemetry meters of the current generation, tagged
    /// with that generation so samplers never attribute a torn-down
    /// run's counters to the new one. The heartbeat thread folds them
    /// into [`WireMsg::Telemetry`] on each beat; the durable hook
    /// samples a single operator before each `CkptDone`.
    op_meters: Mutex<GenerationMeters>,
    /// Gateway meters of locally hosted ingestion gates, folded into
    /// [`WireMsg::GateTelemetry`] on each heartbeat.
    gate_meters: Mutex<GenerationGateMeters>,
    /// Whole-process stop flag.
    stop: AtomicBool,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            meters: Mutex::new(Vec::new()),
            op_meters: Mutex::new((0, Vec::new())),
            gate_meters: Mutex::new((0, Vec::new())),
            stop: AtomicBool::new(false),
        }
    }

    /// Aggregate gauges across the current generation's hosts.
    fn sample_gauges(&self) -> BackpressureGauges {
        self.meters
            .lock()
            .iter()
            .fold(BackpressureGauges::default(), |acc, m| {
                acc.merge(&m.sample())
            })
    }

    /// Samples every local operator meter of the current generation.
    fn sample_telemetry(&self) -> (u64, Vec<(OperatorId, OperatorSample)>) {
        let guard = self.op_meters.lock();
        let samples = guard.1.iter().map(|(op, m)| (*op, m.sample())).collect();
        (guard.0, samples)
    }

    /// Samples every local gateway meter of the current generation.
    fn sample_gate_telemetry(&self) -> (u64, Vec<(OperatorId, GateSample)>) {
        let guard = self.gate_meters.lock();
        let samples = guard.1.iter().map(|(op, m)| (*op, m.sample())).collect();
        (guard.0, samples)
    }

    /// One operator's sample, if it belongs to `generation`.
    fn sample_op(&self, generation: u64, op: OperatorId) -> Option<OperatorSample> {
        let guard = self.op_meters.lock();
        if guard.0 != generation {
            return None;
        }
        guard
            .1
            .iter()
            .find(|(id, _)| *id == op)
            .map(|(_, m)| m.sample())
    }
}

/// The process-wide execution engine every generation runs on: the
/// apply-pool work queue, the I/O thread's command channel, and its
/// waker.
struct Engine {
    work: Sender<Arc<HostCell>>,
    io: Sender<IoCmd>,
    waker: Waker,
}

impl Engine {
    fn send_io(&self, cmd: IoCmd) {
        let _ = self.io.send(cmd);
        self.waker.wake();
    }
}

/// One deployed generation on this worker.
struct Run {
    generation: u64,
    src_cmds: Vec<Sender<SourceCmd>>,
    src_threads: Vec<JoinHandle<()>>,
    cells: Vec<Arc<HostCell>>,
    joiner: Option<JoinHandle<()>>,
    torn: Arc<AtomicBool>,
}

impl Run {
    fn checkpoint(&self, epoch: ms_core::ids::EpochId) {
        for tx in &self.src_cmds {
            let _ = tx.send(SourceCmd::Checkpoint(epoch));
        }
    }

    /// Tears the generation down. Order matters: mark torn (producers
    /// start failing sends, which unwinds hosts) → drop the
    /// generation's sockets and routes → stop sources → schedule every
    /// cell so its exit record flushes even with no traffic → join.
    fn teardown(mut self, eng: &Engine) {
        self.torn.store(true, Ordering::SeqCst);
        eng.send_io(IoCmd::Tear {
            generation: self.generation,
        });
        for tx in &self.src_cmds {
            let _ = tx.send(SourceCmd::Stop);
        }
        self.src_cmds.clear();
        for cell in &self.cells {
            cell.schedule(&eng.work);
        }
        for t in self.src_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(j) = self.joiner.take() {
            let _ = j.join();
        }
        self.cells.clear();
    }

    fn start(
        a: Assignment,
        cfg: &WorkerConfig,
        shared: &Arc<Shared>,
        ctrl_w: &Arc<Mutex<TcpStream>>,
        eng: &Engine,
    ) -> Result<Run> {
        let qn = a.network()?;
        let mut fs_store = FsStore::open(&cfg.store_dir, qn.len())?;
        if let Some(cap) = cfg.log_cap_bytes {
            fs_store = fs_store.with_log_cap(cap, LOG_CAP_PATIENCE);
        }
        // Every store sits behind the transient-retry decorator; chaos
        // runs (`MS_FAULT_STORE`) slide a fault injector between the
        // two so the retry loop is exercised against a misbehaving
        // disk rather than trusted on faith.
        let store: Arc<dyn StableStore> = match StoreFaultSpec::from_env()
            .map_err(|e| Error::Wire(format!("MS_FAULT_STORE: {e}")))?
        {
            Some(spec) => Arc::new(RetryStore::new(FaultStore::new(fs_store, spec))),
            None => Arc::new(RetryStore::new(fs_store)),
        };
        let generation = a.generation;
        let my_ops = a.ops_on(&cfg.name);
        let is_mine = |op: OperatorId| a.worker_of(op) == Some(cfg.name.as_str());

        // Fallible phase first: build + restore every local operator,
        // connect every outbound edge. Nothing is spawned yet.
        struct Restored {
            operator: Box<dyn ms_core::operator::Operator>,
            restored_seq: u64,
            replay: Vec<ms_core::tuple::Tuple>,
            resume_seq: Vec<u64>,
            in_flight: Vec<(u32, ms_core::tuple::Tuple)>,
        }
        let is_gate = |op: OperatorId| a.gates.iter().any(|g| g.op == op);
        let mut restored: HashMap<u32, Restored> = HashMap::new();
        for &op in &my_ops {
            // A gateway op hosts no demo operator; the placeholder
            // GateOp carries the restored dedup snapshot (its generic
            // `restore` below just stores the bytes) into the gate's
            // wiring.
            let mut operator: Box<dyn ms_core::operator::Operator> = if is_gate(op) {
                Box::new(GateOp::new(ms_core::operator::OperatorSnapshot::empty()))
            } else {
                build_operator(
                    &qn,
                    op,
                    a.source_limit,
                    a.source_delay_us,
                    a.keyed_state,
                    a.sawtooth_window,
                )
            };
            let is_source = qn.upstream(op).is_empty();
            let (restored_seq, replay, resume_seq, in_flight) = match a.restore_epoch {
                Some(epoch) => {
                    let ck = store.get_checkpoint(epoch, op).ok_or_else(|| {
                        Error::Wire(format!(
                            "assignment gen {generation} restores {epoch} but {op} has no checkpoint"
                        ))
                    })?;
                    operator.restore(&ck.snapshot)?;
                    let replay = if is_source {
                        store.replay_from(op, epoch)
                    } else {
                        Vec::new()
                    };
                    (ck.next_seq, replay, ck.resume_seq, ck.in_flight)
                }
                // Fresh start: sources regenerate deterministically;
                // the store's dedup guard keeps the log duplicate-free.
                None => (0, Vec::new(), Vec::new(), Vec::new()),
            };
            restored.insert(
                op.0,
                Restored {
                    operator,
                    restored_seq,
                    replay,
                    resume_seq,
                    in_flight,
                },
            );
        }
        // Outbound connections, blocking while the hello goes out,
        // then switched nonblocking for the I/O thread. Every peer's
        // listener is up before the controller assigns (it binds
        // before registering), so these connects resolve immediately.
        let mut remote: HashMap<(u32, u32), TcpStream> = HashMap::new();
        for &op in &my_ops {
            for &down in qn.downstream(op) {
                if is_mine(down) {
                    continue;
                }
                let addr = a
                    .addr_of(down)
                    .ok_or_else(|| Error::Wire(format!("{down} missing from placement")))?;
                let mut s = connect_retry(addr, CONNECT_WAIT)?;
                s.set_nodelay(true)?;
                send_msg(
                    &mut s,
                    &WireMsg::StreamHello {
                        generation,
                        from: op,
                        to: down,
                    },
                )?;
                s.set_nonblocking(true)?;
                remote.insert((op.0, down.0), s);
            }
        }

        // Infallible phase: build cells (consumers before producers),
        // wire routes, spawn source threads.
        let torn = Arc::new(AtomicBool::new(false));
        let (exits_tx, exits_rx) = unbounded::<HostExit>();

        // Durable-checkpoint acks close the controller's epoch
        // barrier: the persister reports every write outcome on the
        // control connection (CkptDone, or WorkerError on a storage
        // failure). Acks from a torn-down generation are suppressed.
        let ack_w = ctrl_w.clone();
        let ack_torn = torn.clone();
        let ack_shared = shared.clone();
        let hook: ms_live::DurableHook = Box::new(move |epoch, op, outcome| {
            if ack_torn.load(Ordering::SeqCst) {
                return;
            }
            let msg = match outcome {
                Ok(_) => {
                    // A fresh sample rides the control connection ahead
                    // of the ack. Per-connection FIFO means the
                    // controller always holds this operator's epoch-e
                    // checkpoint telemetry when the ack that closes the
                    // epoch-e barrier is processed — which is what lets
                    // it cut complete ledger records at barrier close.
                    if let Some(sample) = ack_shared.sample_op(generation, op) {
                        let tel = WireMsg::Telemetry {
                            generation,
                            samples: vec![(op, sample)],
                        };
                        let _ = send_msg(&mut *ack_w.lock(), &tel);
                    }
                    WireMsg::CkptDone {
                        generation,
                        epoch,
                        op,
                    }
                }
                Err(e) => WireMsg::WorkerError {
                    generation,
                    detail: e.to_string(),
                },
            };
            let _ = send_msg(&mut *ack_w.lock(), &msg);
        });
        let persister = Persister::spawn_with(store.clone(), Some(hook));

        // Fresh generation, fresh gauges — the torn-down run's meters
        // would otherwise keep reporting their last values forever.
        shared.meters.lock().clear();
        *shared.op_meters.lock() = (generation, Vec::new());
        *shared.gate_meters.lock() = (generation, Vec::new());

        // Shard plan lookup: physical op → logical group index. The
        // plan's ordering guarantee (a producer's downstream is
        // contiguous runs, one per logical consumer, in logical port
        // order) is what lets the grouping below be a linear scan.
        let mut logical_of: HashMap<u32, usize> = HashMap::new();
        for (li, group) in a.groups.iter().enumerate() {
            for &p in group {
                logical_of.insert(p.0, li);
            }
        }

        let order = qn.topo_order()?;
        let mut cell_of: HashMap<u32, Arc<HostCell>> = HashMap::new();
        let mut cells: Vec<Arc<HostCell>> = Vec::new();
        let mut src_cmds = Vec::new();
        let mut src_threads = Vec::new();
        let mut ingress_routes: HashMap<(u32, u32), CellTx> = HashMap::new();
        for &op in order.iter().rev() {
            if !is_mine(op) {
                continue;
            }
            let r = restored.remove(&op.0).expect("restored once per local op");
            let is_source = qn.upstream(op).is_empty();

            // One OutputRoute per *logical* consumer: group the
            // physical downstream list into its contiguous runs.
            let downs = qn.downstream(op);
            let mut outputs: Vec<OutputRoute> = Vec::new();
            let mut i = 0;
            while i < downs.len() {
                let li = logical_of.get(&downs[i].0).copied();
                let mut j = i + 1;
                while li.is_some() && j < downs.len() && logical_of.get(&downs[j].0).copied() == li
                {
                    j += 1;
                }
                let mut txs: Vec<Box<dyn EdgeTx>> = Vec::new();
                for &down in &downs[i..j] {
                    if is_mine(down) {
                        let cell = cell_of
                            .get(&down.0)
                            .expect("consumers are built before producers")
                            .clone();
                        let port = qn.input_port(op, down).expect("edge exists").0;
                        txs.push(Box::new(CellTx {
                            cell,
                            port,
                            work: eng.work.clone(),
                        }));
                    } else {
                        let stream = remote
                            .remove(&(op.0, down.0))
                            .expect("remote edge connected once");
                        let buf = EgressBuf::new();
                        eng.send_io(IoCmd::Egress {
                            generation,
                            stream,
                            buf: buf.clone(),
                        });
                        txs.push(Box::new(EgressHandle {
                            buf,
                            torn: torn.clone(),
                            waker: eng.waker.clone(),
                        }));
                    }
                }
                outputs.push(if txs.len() > 1 {
                    OutputRoute::sharded(txs, route_key(a.keyed_state))
                } else {
                    OutputRoute::single(txs.pop().expect("run non-empty"))
                });
                i = j;
            }

            // A gateway host: same output wiring and checkpoint
            // command channel as any source, but the thread runs the
            // ingestion event loop instead of a demo source.
            if let Some(gate) = a.gates.iter().find(|g| g.op == op) {
                let op_meter = Arc::new(OperatorMeter::new());
                shared.op_meters.lock().1.push((op, op_meter.clone()));
                let gate_meter = Arc::new(GateMeter::new());
                shared.gate_meters.lock().1.push((op, gate_meter.clone()));
                let (cmd_tx, cmd_rx) = unbounded();
                src_cmds.push(cmd_tx);
                let wiring = GateWiring {
                    op_id: op,
                    cfg: gate.cfg,
                    outputs,
                    cmd: cmd_rx,
                    listen: "127.0.0.1:0".into(),
                    addr_file: Some(cfg.store_dir.join(format!("gate_op{}.addr", op.0))),
                    restored: a.restore_epoch.is_some().then(|| r.operator.snapshot()),
                    restored_seq: r.restored_seq,
                    replay: r.replay,
                    meter: gate_meter,
                    telemetry: Some(op_meter),
                    group_commit: true,
                };
                let store = store.clone();
                let ptx = persister.sender();
                let etx = exits_tx.clone();
                src_threads.push(
                    thread::Builder::new()
                        .name(format!("ms-gate-{}", op.0))
                        .spawn(move || {
                            let exit = run_gate(wiring, store, ptx);
                            let _ = etx.send(exit);
                        })
                        .expect("spawn gate thread"),
                );
                continue;
            }

            let meter = Arc::new(BackpressureMeter::new());
            shared.meters.lock().push(meter.clone());
            let op_meter = Arc::new(OperatorMeter::new());
            shared.op_meters.lock().1.push((op, op_meter.clone()));
            // The in-flight replay filter compares per-producer
            // sequence numbers, which only survive a rollback when
            // every upstream producer regenerates them exactly — true
            // for sources and single-input interiors, false for
            // fan-in (or sharded fan-in) producers. See the ms-live
            // host module docs.
            let persist_in_flight = qn.upstream(op).iter().all(|&u| qn.upstream(u).len() <= 1);
            let (cmd_tx, cmd_rx) = if is_source {
                let (tx, rx) = unbounded();
                (Some(tx), Some(rx))
            } else {
                (None, None)
            };
            let n_in = qn.upstream(op).len();
            let wiring = HostWiring {
                op_id: op,
                op: r.operator,
                // Interior cells never read channels — the inbox is
                // the stream — but the core sizes its alignment state
                // from the input count, so hand it placeholders.
                inputs: (0..n_in).map(|_| unbounded().1).collect(),
                outputs,
                cmd: cmd_rx,
                restored_seq: r.restored_seq,
                replay: r.replay,
                resume_seq: r.resume_seq,
                in_flight: r.in_flight,
                auto_stop: true,
                last_durable: a.restore_epoch,
                persist_in_flight,
                meter: Some(meter),
                telemetry: Some(op_meter),
            };
            if let Some(tx) = cmd_tx {
                src_cmds.push(tx);
                let store = store.clone();
                let ptx = persister.sender();
                let etx = exits_tx.clone();
                src_threads.push(
                    thread::Builder::new()
                        .name(format!("ms-src-{}", op.0))
                        .spawn(move || {
                            let exit = run_host(wiring, store, ptx);
                            let _ = etx.send(exit);
                        })
                        .expect("spawn source thread"),
                );
            } else {
                let core = InteriorCore::new(wiring, persister.sender());
                let cell = HostCell::new(core, torn.clone(), exits_tx.clone());
                for &up in qn.upstream(op) {
                    if !is_mine(up) {
                        let port = qn.input_port(up, op).expect("edge exists").0;
                        ingress_routes.insert(
                            (up.0, op.0),
                            CellTx {
                                cell: cell.clone(),
                                port,
                                work: eng.work.clone(),
                            },
                        );
                    }
                }
                cell_of.insert(op.0, cell.clone());
                cells.push(cell);
            }
        }
        drop(exits_tx);
        eng.send_io(IoCmd::Routes {
            generation,
            map: ingress_routes,
        });
        // A restored core can be done at birth (its in-flight replay
        // hit a gone consumer); one initial visit flushes that. For
        // live cells the visit is a cheap no-op.
        for cell in &cells {
            cell.schedule(&eng.work);
        }

        // The joiner waits the hosts out, makes queued checkpoints
        // durable, then reports finished sinks — unless the generation
        // was torn down, in which case partial sink state is garbage.
        let n_local = my_ops.len();
        let sinks: Vec<OperatorId> = my_ops
            .iter()
            .copied()
            .filter(|&op| qn.downstream(op).is_empty())
            .collect();
        let torn_j = torn.clone();
        let ctrl_w = ctrl_w.clone();
        let joiner = thread::Builder::new()
            .name("ms-joiner".into())
            .spawn(move || {
                let mut finals = Vec::new();
                for _ in 0..n_local {
                    match exits_rx.recv() {
                        Ok(exit) => finals.push(exit),
                        Err(_) => break,
                    }
                }
                drop(persister);
                if !torn_j.load(Ordering::SeqCst) {
                    for exit in &finals {
                        // A host that stopped on a storage failure is a
                        // failed HAU, not a finished one: surface it so
                        // the controller rolls the generation back.
                        if let Some(e) = &exit.error {
                            let msg = WireMsg::WorkerError {
                                generation,
                                detail: format!("{}: {e}", exit.op_id),
                            };
                            let _ = send_msg(&mut *ctrl_w.lock(), &msg);
                        } else if sinks.contains(&exit.op_id) {
                            let msg = WireMsg::SinkDone {
                                generation,
                                op: exit.op_id,
                                snapshot: exit.op.snapshot().data,
                            };
                            let _ = send_msg(&mut *ctrl_w.lock(), &msg);
                        }
                    }
                }
            })
            .expect("spawn joiner thread");

        Ok(Run {
            generation,
            src_cmds,
            src_threads,
            cells,
            joiner: Some(joiner),
            torn,
        })
    }
}

fn connect_retry(addr: &str, wait: Duration) -> Result<TcpStream> {
    let deadline = Instant::now() + wait;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() > deadline => {
                return Err(Error::Wire(format!("connect {addr}: {e}")));
            }
            Err(_) => thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn resolve_controller(addr: &ControllerAddr, wait: Duration) -> Result<String> {
    match addr {
        ControllerAddr::Addr(a) => Ok(a.clone()),
        ControllerAddr::File(path) => {
            let deadline = Instant::now() + wait;
            loop {
                if let Ok(text) = std::fs::read_to_string(path) {
                    let text = text.trim();
                    if !text.is_empty() {
                        return Ok(text.to_string());
                    }
                }
                if Instant::now() > deadline {
                    return Err(Error::Wire(format!(
                        "controller address file {path:?} never appeared"
                    )));
                }
                thread::sleep(FILE_POLL);
            }
        }
    }
}

/// Runs a worker to completion: register, host assigned operators
/// across generations, exit on `Shutdown` (or controller loss).
pub fn run_worker(cfg: WorkerConfig) -> Result<()> {
    let ctrl_addr = resolve_controller(&cfg.controller, CONNECT_WAIT)?;
    let shared = Arc::new(Shared::new());

    // The engine: data-plane listener + I/O thread + apply pool,
    // created once per process and reused across generations.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let data_addr = listener.local_addr()?.to_string();
    listener.set_nonblocking(true)?;
    let waker = Waker::new()?;
    let (io_tx, io_rx) = unbounded();
    // Chaos runs plant a deterministic fault plan (`MS_FAULT_PLAN`) in
    // the I/O thread; production workers carry `None` and pay nothing.
    let plan = FaultPlan::from_env()
        .map_err(|e| Error::Wire(format!("MS_FAULT_PLAN: {e}")))?
        .map(Arc::new);
    let io = evloop::spawn_io(listener, waker.clone(), io_rx, plan);
    let (work_tx, work_rx) = unbounded();
    let pool = evloop::spawn_pool(evloop::pool_width(), work_rx);
    let eng = Engine {
        work: work_tx,
        io: io_tx,
        waker,
    };

    // Control plane.
    let mut ctrl = connect_retry(&ctrl_addr, CONNECT_WAIT)?;
    ctrl.set_nodelay(true)?;
    send_msg(
        &mut ctrl,
        &WireMsg::Register {
            name: cfg.name.clone(),
            data_addr,
        },
    )?;
    let ctrl_w = Arc::new(Mutex::new(ctrl.try_clone()?));
    // Heartbeats ride a dedicated connection: the shared control
    // writer can stall behind a large SinkDone/CkptDone while the
    // controller is busy, and a liveness signal queued behind it would
    // read as a dead worker. A socket of their own means heartbeat
    // cadence only ever reflects this process being alive.
    let mut hb = connect_retry(&ctrl_addr, CONNECT_WAIT)?;
    hb.set_nodelay(true)?;
    send_msg(
        &mut hb,
        &WireMsg::HeartbeatHello {
            name: cfg.name.clone(),
        },
    )?;
    let hb_shared = shared.clone();
    let hb_interval = cfg.heartbeat_interval;
    let heartbeat = thread::spawn(move || {
        while !hb_shared.stop.load(Ordering::SeqCst) {
            thread::sleep(hb_interval);
            let beat = WireMsg::Heartbeat {
                gauges: hb_shared.sample_gauges(),
            };
            if send_msg(&mut hb, &beat).is_err() {
                return;
            }
            // Telemetry piggybacks on the heartbeat cadence: one
            // message per beat with every local operator's sample, on
            // the same dedicated socket.
            let (generation, samples) = hb_shared.sample_telemetry();
            if !samples.is_empty() {
                let tel = WireMsg::Telemetry {
                    generation,
                    samples,
                };
                if send_msg(&mut hb, &tel).is_err() {
                    return;
                }
            }
            let (generation, samples) = hb_shared.sample_gate_telemetry();
            if !samples.is_empty() {
                let tel = WireMsg::GateTelemetry {
                    generation,
                    samples,
                };
                if send_msg(&mut hb, &tel).is_err() {
                    return;
                }
            }
        }
    });

    let mut run: Option<Run> = None;
    let mut outcome = Ok(());
    loop {
        match recv_msg(&mut ctrl) {
            Ok(Some(WireMsg::Assign(a))) => {
                if let Some(r) = run.take() {
                    r.teardown(&eng);
                }
                let generation = a.generation;
                match Run::start(a, &cfg, &shared, &ctrl_w, &eng) {
                    Ok(r) => run = Some(r),
                    Err(e) => {
                        // A failed deploy (corrupt checkpoint,
                        // unreachable store) fails this generation,
                        // not the daemon: report it and await the
                        // controller's next assignment.
                        let msg = WireMsg::WorkerError {
                            generation,
                            detail: e.to_string(),
                        };
                        let _ = send_msg(&mut *ctrl_w.lock(), &msg);
                    }
                }
            }
            Ok(Some(WireMsg::Checkpoint(epoch))) => {
                if let Some(r) = &run {
                    r.checkpoint(epoch);
                }
            }
            Ok(Some(WireMsg::Rollback)) => {
                if let Some(r) = run.take() {
                    r.teardown(&eng);
                }
            }
            Ok(Some(WireMsg::Shutdown)) | Ok(None) => break,
            Ok(Some(other)) => {
                outcome = Err(Error::Wire(format!("unexpected control message {other:?}")));
                break;
            }
            Err(e) => {
                outcome = Err(e);
                break;
            }
        }
    }
    if let Some(r) = run.take() {
        r.teardown(&eng);
    }
    shared.stop.store(true, Ordering::SeqCst);
    let _ = ctrl.shutdown(Shutdown::Both);
    let _ = heartbeat.join();
    // Stop the I/O thread (drops every route, and with it every cell
    // handle), then drop the engine's work sender: once no sender is
    // left, the pool threads drain out and exit.
    eng.send_io(IoCmd::Stop);
    let _ = io.join();
    drop(eng);
    for p in pool {
        let _ = p.join();
    }
    outcome
}
