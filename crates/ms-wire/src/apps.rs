//! Demo application for the TCP cluster: a wall-clock-throttled
//! counting source plus a structural operator factory.
//!
//! The cluster binaries need an application whose stream lasts long
//! enough, in *real* time, that a worker can be SIGKILLed mid-stream.
//! [`ThrottledCountSource`] is `ms-live`'s `CountSource` with a
//! per-tuple delay; interior operators double, sinks sum — so the
//! sink's final `(sum, count)` is a closed-form function of the graph
//! and the source limit, and any lost or duplicated tuple shows up in
//! the recovered answer.
//!
//! [`build_operator`] is structural: an operator with no upstream is a
//! source, one with no downstream is a sink, everything else doubles.
//! Every worker derives the same operator set from the transmitted
//! graph alone — no code shipping, mirroring the paper's precompiled
//! operator binaries (§III-C).

use std::time::Duration;

use ms_core::delta::DeltaTable;
use ms_core::error::{Error, Result};
use ms_core::graph::QueryNetwork;
use ms_core::ids::{OperatorId, PortId};
use ms_core::operator::{DeferredSnapshot, Operator, OperatorContext, OperatorSnapshot};
use ms_core::tuple::Tuple;
use ms_core::value::Value;
use ms_live::{Doubler, Summer};

/// A source that emits `0, 1, 2, …` up to a limit, sleeping a fixed
/// delay before each emission so a finite stream spans seconds of
/// wall-clock time. Deterministic: a restarted instance regenerates
/// the identical sequence, which is what lets the preservation log
/// dedup a from-scratch restart.
#[derive(Debug)]
pub struct ThrottledCountSource {
    limit: u64,
    emitted: u64,
    delay: Duration,
}

impl ThrottledCountSource {
    /// Creates a source emitting `limit` tuples, `delay` apart.
    pub fn new(limit: u64, delay: Duration) -> ThrottledCountSource {
        ThrottledCountSource {
            limit,
            emitted: 0,
            delay,
        }
    }
}

impl Operator for ThrottledCountSource {
    fn kind(&self) -> &'static str {
        "ThrottledCountSource"
    }

    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _ctx: &mut dyn OperatorContext) {}

    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        if self.emitted < self.limit {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            ctx.emit_all(vec![Value::Int(self.emitted as i64)]);
            self.emitted += 1;
        }
    }

    fn state_size(&self) -> u64 {
        16
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = ms_core::codec::SnapshotWriter::new();
        // The delay is deployment config (it rides the Assignment),
        // not operator state.
        w.put_u64(self.limit).put_u64(self.emitted);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 16,
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> Result<()> {
        let mut r = ms_core::codec::SnapshotReader::new(&s.data);
        self.limit = r.get_u64()?;
        self.emitted = r.get_u64()?;
        Ok(())
    }
}

/// Tuple values per key: consecutive source values map to the same
/// key, so an epoch's worth of tuples touches a small, contiguous
/// slice of the key space — the "large state, few keys mutated per
/// epoch" regime delta checkpoints are built for.
pub const KEY_STRIDE: u64 = 8;

/// Fixed per-key feature payload (bytes), on top of an 8-byte counter.
pub const FEATURE_BYTES: usize = 256;

/// An interior operator with real keyed state: a [`DeltaTable`] of
/// `keys` entries, each an update counter plus a [`FEATURE_BYTES`]
/// feature vector. Every tuple updates exactly one key (value `v`
/// touches key `(v / KEY_STRIDE) % keys`) and forwards `v * 2`, so
/// swapping it in for [`Doubler`] leaves the demo's closed-form sink
/// answer unchanged while giving checkpoints megabytes of state of
/// which each epoch dirties only a sliver.
///
/// The state is deterministic in the tuple history (count-derived
/// bytes), so a recovered instance must be *byte-identical* to an
/// uninterrupted one — which is how the kill-recover tests catch any
/// delta-chain corruption.
#[derive(Debug)]
pub struct KeyedStat {
    keys: u64,
    table: DeltaTable,
}

impl KeyedStat {
    /// Creates the operator with an empty `keys`-entry key space.
    pub fn new(keys: u64) -> KeyedStat {
        KeyedStat {
            keys: keys.max(1),
            table: DeltaTable::new(),
        }
    }

    fn record(key: u64, count: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(8 + FEATURE_BYTES);
        v.extend_from_slice(&count.to_le_bytes());
        v.extend((0..FEATURE_BYTES).map(|i| (key as u8) ^ (count as u8).wrapping_add(i as u8)));
        v
    }
}

impl Operator for KeyedStat {
    fn kind(&self) -> &'static str {
        "KeyedStat"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        if let Some(v) = t.fields.first().and_then(Value::as_int) {
            let key = (v as u64 / KEY_STRIDE) % self.keys;
            let count = self
                .table
                .get(key)
                .and_then(|r| r.get(..8))
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
                .unwrap_or(0)
                + 1;
            self.table.insert(key, KeyedStat::record(key, count));
            ctx.emit_all(vec![Value::Int(v * 2)]);
        }
    }

    fn state_size(&self) -> u64 {
        self.table.value_bytes()
    }

    fn snapshot(&self) -> OperatorSnapshot {
        OperatorSnapshot {
            data: self.table.snapshot(),
            logical_bytes: self.table.value_bytes(),
        }
    }

    fn snapshot_delta(&mut self) -> Option<DeferredSnapshot> {
        let delta = self.table.take_delta(self.table.value_bytes());
        Some(DeferredSnapshot::Delta(Box::new(move || delta)))
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> Result<()> {
        self.table = DeltaTable::restore(&s.data)?;
        Ok(())
    }
}

/// The reserved [`DeltaTable`] key under which [`SawtoothStat`] keeps
/// its applied-tuple counter, so the sawtooth phase rides snapshots
/// and delta chains like any other state and recovery resumes the
/// cycle exactly where the failed instance left it.
pub const SAWTOOTH_SEEN_KEY: u64 = u64::MAX;

/// [`KeyedStat`] with a deliberately *dynamic* state profile: every
/// `window` applied tuples it drops all keyed entries, so its state
/// size traces a sawtooth — ramp, collapse, ramp — instead of the
/// monotone fill the live `+aa` profiler would classify as static.
/// This is the workload the `aware_live` integration test runs: the
/// collapses produce half-drop notifications and aggregate local
/// minima for alert mode to checkpoint at.
///
/// Stream semantics are untouched (`v * 2` forwarded for every tuple),
/// so the closed-form chain sink answer — and therefore the
/// byte-identical recovery assertions — hold unchanged. The applied
/// counter lives *inside* the table ([`SAWTOOTH_SEEN_KEY`]), making
/// the whole sawtooth, phase included, a deterministic function of
/// tuple history: a recovered instance collapses at the same instants
/// the uninterrupted one did.
#[derive(Debug)]
pub struct SawtoothStat {
    keys: u64,
    window: u64,
    table: DeltaTable,
}

impl SawtoothStat {
    /// Creates the operator: `keys`-entry key space, state collapse
    /// every `window` applied tuples.
    pub fn new(keys: u64, window: u64) -> SawtoothStat {
        SawtoothStat {
            keys: keys.max(1),
            window: window.max(1),
            table: DeltaTable::new(),
        }
    }
}

impl Operator for SawtoothStat {
    fn kind(&self) -> &'static str {
        "SawtoothStat"
    }

    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        if let Some(v) = t.fields.first().and_then(Value::as_int) {
            let seen = self
                .table
                .get(SAWTOOTH_SEEN_KEY)
                .and_then(|r| r.get(..8))
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
                .unwrap_or(0)
                + 1;
            self.table
                .insert(SAWTOOTH_SEEN_KEY, seen.to_le_bytes().to_vec());
            let key = (v as u64 / KEY_STRIDE) % self.keys;
            let count = self
                .table
                .get(key)
                .and_then(|r| r.get(..8))
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
                .unwrap_or(0)
                + 1;
            self.table.insert(key, KeyedStat::record(key, count));
            if seen % self.window == 0 {
                // Collapse: drop every keyed entry (a tracked removal,
                // so delta chains carry it too) and start the next
                // ramp from an empty table.
                let keys: Vec<u64> = self
                    .table
                    .iter()
                    .map(|(k, _)| k)
                    .filter(|&k| k != SAWTOOTH_SEEN_KEY)
                    .collect();
                for k in keys {
                    self.table.remove(k);
                }
            }
            ctx.emit_all(vec![Value::Int(v * 2)]);
        }
    }

    fn state_size(&self) -> u64 {
        self.table.value_bytes()
    }

    fn snapshot(&self) -> OperatorSnapshot {
        OperatorSnapshot {
            data: self.table.snapshot(),
            logical_bytes: self.table.value_bytes(),
        }
    }

    fn snapshot_delta(&mut self) -> Option<DeferredSnapshot> {
        let delta = self.table.take_delta(self.table.value_bytes());
        Some(DeferredSnapshot::Delta(Box::new(move || delta)))
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> Result<()> {
        self.table = DeltaTable::restore(&s.data)?;
        Ok(())
    }
}

/// Builds the demo query network for a shape name: `chainN` (N ≥ 2
/// operators in a line), `diamond` (the paper's five-operator
/// walkthrough graph, Figs. 6–7), `fanin` (two independent
/// source→doubler branches converging on one sink — the shape that
/// exercises token alignment, because the sink must hold a consistent
/// cut across inputs that run at different speeds), or `fleetSxK`
/// (S skewed sources all feeding a K-stage pipeline into one sink —
/// the *logical* graph behind the paper-scale sharded deployments:
/// `fleet6x6` expanded at 8 shards per stage is 6 + 48 + 1 = 55
/// physical HAUs).
pub fn demo_network(shape: &str) -> Result<QueryNetwork> {
    let mut qn = QueryNetwork::new();
    if let Some((s, k)) = shape.strip_prefix("fleet").and_then(|rest| {
        let (s, k) = rest.split_once('x')?;
        Some((s.parse::<usize>().ok()?, k.parse::<usize>().ok()?))
    }) {
        if s < 1 || k < 1 {
            return Err(Error::Graph(format!(
                "fleet needs ≥ 1 source and ≥ 1 stage, got {s}x{k}"
            )));
        }
        let sources: Vec<OperatorId> = (0..s).map(|i| qn.add_operator(format!("src{i}"))).collect();
        let stages: Vec<OperatorId> = (0..k)
            .map(|j| qn.add_operator(format!("stage{j}")))
            .collect();
        let sink = qn.add_operator("sink");
        for &src in &sources {
            qn.connect(src, stages[0])?;
        }
        for pair in stages.windows(2) {
            qn.connect(pair[0], pair[1])?;
        }
        qn.connect(stages[k - 1], sink)?;
    } else if shape == "fanin" {
        let s0 = qn.add_operator("src_fast");
        let s1 = qn.add_operator("src_slow");
        let d2 = qn.add_operator("dbl_fast");
        let d3 = qn.add_operator("dbl_slow");
        let k4 = qn.add_operator("sink");
        qn.connect(s0, d2)?;
        qn.connect(s1, d3)?;
        qn.connect(d2, k4)?;
        qn.connect(d3, k4)?;
    } else if shape == "diamond" {
        let s = qn.add_operator("source");
        let a = qn.add_operator("split");
        let b = qn.add_operator("left");
        let c = qn.add_operator("right");
        let k = qn.add_operator("sink");
        qn.connect(s, a)?;
        qn.connect(a, b)?;
        qn.connect(a, c)?;
        qn.connect(b, k)?;
        qn.connect(c, k)?;
    } else if let Some(n) = shape
        .strip_prefix("chain")
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n < 2 {
            return Err(Error::Graph(format!("chain needs ≥ 2 operators, got {n}")));
        }
        let ops: Vec<OperatorId> = (0..n).map(|i| qn.add_operator(format!("op{i}"))).collect();
        for pair in ops.windows(2) {
            qn.connect(pair[0], pair[1])?;
        }
    } else {
        return Err(Error::Graph(format!(
            "unknown demo shape {shape:?} (want chainN, diamond, fanin or fleetSxK)"
        )));
    }
    qn.validate()?;
    Ok(qn)
}

/// How much slower each successive source runs than the first: the
/// second source's per-tuple delay is `1 + SOURCE_SKEW` times the
/// base delay. A multi-source graph therefore always has a fast and
/// a slow branch, which is what makes fan-in alignment non-trivial.
pub const SOURCE_SKEW: u64 = 3;

/// Per-tuple delay for a source operator: the base delay scaled by
/// the source's ordinal among the graph's sources, so the branches of
/// a fan-in arrive at the merge point out of step. Single-source
/// shapes get the base delay unchanged.
pub fn skewed_delay_us(qn: &QueryNetwork, op: OperatorId, base_us: u64) -> u64 {
    let ordinal = qn.sources().iter().position(|&s| s == op).unwrap_or(0) as u64;
    base_us * (1 + SOURCE_SKEW * ordinal)
}

/// Structural operator factory: source / interior / sink by topology.
///
/// In graphs with several sources, each source after the first gets a
/// progressively larger per-tuple delay (see [`skewed_delay_us`]), so
/// fan-in merges see misaligned inputs. Single-source shapes are
/// unaffected. A nonzero `keyed_state` swaps the stateless interior
/// [`Doubler`] for a [`KeyedStat`] over that many keys — same stream
/// semantics, delta-checkpointed keyed state. A nonzero
/// `sawtooth_window` on top of that selects [`SawtoothStat`], whose
/// keyed table collapses every `sawtooth_window` tuples — the dynamic
/// state profile the live `+aa` plane checkpoints at the minima of.
pub fn build_operator(
    qn: &QueryNetwork,
    op: OperatorId,
    source_limit: u64,
    source_delay_us: u64,
    keyed_state: u64,
    sawtooth_window: u64,
) -> Box<dyn Operator> {
    if qn.upstream(op).is_empty() {
        Box::new(ThrottledCountSource::new(
            source_limit,
            Duration::from_micros(skewed_delay_us(qn, op, source_delay_us)),
        ))
    } else if qn.downstream(op).is_empty() {
        Box::new(Summer::default())
    } else if keyed_state > 0 && sawtooth_window > 0 {
        Box::new(SawtoothStat::new(keyed_state, sawtooth_window))
    } else if keyed_state > 0 {
        Box::new(KeyedStat::new(keyed_state))
    } else {
        Box::new(Doubler::default())
    }
}

/// The sink answer a failure-free `chainN` run must produce: every
/// tuple `0..limit` doubled once per interior operator.
pub fn expected_chain_sum(n_ops: usize, limit: u64) -> i64 {
    let base: i64 = (0..limit as i64).sum();
    base << (n_ops.saturating_sub(2) as u32)
}

/// The sink answer a failure-free `fanin` run must produce: both
/// sources emit `0..limit`, each branch doubles once, the sink sums
/// the two branches — so `4 × Σ 0..limit`, over `2 × limit` tuples.
pub fn expected_fanin_sum(limit: u64) -> i64 {
    4 * (0..limit as i64).sum::<i64>()
}

/// The sink answer a failure-free `fleetSxK` run must produce:
/// `sources` sources each emit `0..limit`, every tuple is doubled
/// once per stage (sharding a stage changes *where* a tuple is
/// doubled, never how often), and the sink sums everything —
/// `(sum, count) = (2^stages × S × Σ 0..limit, S × limit)`.
pub fn expected_fleet_sum(sources: u64, stages: u32, limit: u64) -> (i64, u64) {
    let per_source: i64 = (0..limit as i64).sum();
    ((per_source * sources as i64) << stages, sources * limit)
}

/// The routing-key extractor every producer of a sharded consumer
/// uses: with keyed state it is exactly [`KeyedStat`]'s key function
/// (`(v / KEY_STRIDE) % keyed_state`), so one logical key always
/// lands on one shard instance and the shard-local tables partition
/// the unsharded table; stateless deployments hash the raw value.
/// Deterministic in the tuple alone — replayed tuples rejoin the same
/// shard, which is what keeps recovery byte-identical.
pub fn route_key(keyed_state: u64) -> ms_live::RouteKeyFn {
    std::sync::Arc::new(move |t: &Tuple| {
        let v = t.fields.first().and_then(Value::as_int).unwrap_or(0) as u64;
        if keyed_state > 0 {
            (v / KEY_STRIDE) % keyed_state
        } else {
            v
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::time::SimTime;
    use ms_core::tuple::Fields;

    struct Ctx {
        emitted: Vec<Fields>,
    }

    impl OperatorContext for Ctx {
        fn emit_fields(&mut self, _port: PortId, fields: Fields) {
            self.emitted.push(fields);
        }
        fn emit_all_fields(&mut self, fields: Fields) {
            self.emitted.push(fields);
        }
        fn now(&self) -> SimTime {
            SimTime::ZERO
        }
        fn self_id(&self) -> OperatorId {
            OperatorId(0)
        }
        fn rand_f64(&mut self) -> f64 {
            0.5
        }
        fn rand_u64(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn shapes_build_and_validate() {
        let chain = demo_network("chain3").unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.sources().len(), 1);
        assert_eq!(chain.sinks().len(), 1);
        let diamond = demo_network("diamond").unwrap();
        assert_eq!(diamond.len(), 5);
        assert_eq!(diamond.upstream(OperatorId(4)).len(), 2);
        let fanin = demo_network("fanin").unwrap();
        assert_eq!(fanin.len(), 5);
        assert_eq!(fanin.sources().len(), 2);
        assert_eq!(fanin.sinks().len(), 1);
        assert_eq!(fanin.upstream(OperatorId(4)).len(), 2);
        assert!(demo_network("chain1").is_err());
        assert!(demo_network("ring").is_err());
    }

    #[test]
    fn fanin_sources_are_skewed() {
        let qn = demo_network("fanin").unwrap();
        // First source runs at the base delay, second one slower.
        assert_eq!(skewed_delay_us(&qn, OperatorId(0), 100), 100);
        assert_eq!(
            skewed_delay_us(&qn, OperatorId(1), 100),
            100 * (1 + SOURCE_SKEW)
        );
        // Single-source shapes are unaffected.
        let chain = demo_network("chain3").unwrap();
        assert_eq!(skewed_delay_us(&chain, OperatorId(0), 100), 100);
        // Interior and sink roles are unchanged by multiple sources.
        assert_eq!(
            build_operator(&qn, OperatorId(0), 10, 100, 0, 0).kind(),
            "ThrottledCountSource"
        );
        assert_eq!(
            build_operator(&qn, OperatorId(2), 10, 100, 0, 0).kind(),
            "Doubler"
        );
        assert_eq!(
            build_operator(&qn, OperatorId(4), 10, 100, 0, 0).kind(),
            "Summer"
        );
    }

    #[test]
    fn fanin_sum_closed_form() {
        // limit 4: both sources emit 0..4 (sum 6 each), doubled once
        // per branch, summed at the sink: 4 × 6 = 24 over 8 tuples.
        assert_eq!(expected_fanin_sum(4), 24);
        assert_eq!(expected_fanin_sum(0), 0);
    }

    #[test]
    fn factory_is_structural() {
        let qn = demo_network("chain3").unwrap();
        assert_eq!(
            build_operator(&qn, OperatorId(0), 10, 0, 0, 0).kind(),
            "ThrottledCountSource"
        );
        assert_eq!(
            build_operator(&qn, OperatorId(1), 10, 0, 0, 0).kind(),
            "Doubler"
        );
        assert_eq!(
            build_operator(&qn, OperatorId(2), 10, 0, 0, 0).kind(),
            "Summer"
        );
        // A keyed-state request swaps only the interior stage.
        assert_eq!(
            build_operator(&qn, OperatorId(1), 10, 0, 64, 0).kind(),
            "KeyedStat"
        );
        assert_eq!(
            build_operator(&qn, OperatorId(2), 10, 0, 64, 0).kind(),
            "Summer"
        );
        // A sawtooth window on top swaps in the collapsing variant —
        // interior only, and only with keyed state.
        assert_eq!(
            build_operator(&qn, OperatorId(1), 10, 0, 64, 500).kind(),
            "SawtoothStat"
        );
        assert_eq!(
            build_operator(&qn, OperatorId(1), 10, 0, 0, 500).kind(),
            "Doubler"
        );
        assert_eq!(
            build_operator(&qn, OperatorId(2), 10, 0, 64, 500).kind(),
            "Summer"
        );
    }

    fn int_tuple(v: i64) -> Tuple {
        Tuple::new(OperatorId(0), v as u64, SimTime::ZERO, vec![Value::Int(v)])
    }

    #[test]
    fn keyed_stat_doubles_and_restores_byte_identically() {
        let mut a = KeyedStat::new(64);
        let mut ctx = Ctx {
            emitted: Vec::new(),
        };
        for v in 0..100 {
            a.on_tuple(PortId(0), int_tuple(v), &mut ctx);
        }
        assert_eq!(ctx.emitted.len(), 100);
        assert_eq!(ctx.emitted[3], vec![Value::Int(6)], "still a doubler");
        let snap = a.snapshot();
        let mut b = KeyedStat::new(64);
        b.restore(&snap).unwrap();
        assert_eq!(b.snapshot().data, snap.data, "restore is byte-identical");
        // Same history on the restored instance ⇒ same bytes.
        let mut ctx2 = Ctx {
            emitted: Vec::new(),
        };
        for v in 100..120 {
            a.on_tuple(PortId(0), int_tuple(v), &mut ctx2);
            b.on_tuple(PortId(0), int_tuple(v), &mut ctx2);
        }
        assert_eq!(a.snapshot().data, b.snapshot().data);
    }

    #[test]
    fn sawtooth_collapses_and_restores_byte_identically() {
        let mut a = SawtoothStat::new(64, 50);
        let mut ctx = Ctx {
            emitted: Vec::new(),
        };
        let mut peak = 0;
        for v in 0..49 {
            a.on_tuple(PortId(0), int_tuple(v), &mut ctx);
            peak = peak.max(a.state_size());
        }
        assert_eq!(ctx.emitted[3], vec![Value::Int(6)], "still a doubler");
        let before = a.state_size();
        // The 50th tuple collapses the keyed entries: state drops by
        // more than half (only the seen counter remains).
        a.on_tuple(PortId(0), int_tuple(49), &mut ctx);
        assert!(
            a.state_size() < before / 2,
            "state {} did not collapse from {}",
            a.state_size(),
            before
        );
        assert_eq!(ctx.emitted.len(), 50, "every tuple still forwarded");
        // Snapshot mid-cycle, replay the same history on the restored
        // instance: phase rides the snapshot, bytes stay identical.
        for v in 50..77 {
            a.on_tuple(PortId(0), int_tuple(v), &mut ctx);
        }
        let snap = a.snapshot();
        let mut b = SawtoothStat::new(64, 50);
        b.restore(&snap).unwrap();
        assert_eq!(b.snapshot().data, snap.data, "restore is byte-identical");
        for v in 77..160 {
            a.on_tuple(PortId(0), int_tuple(v), &mut ctx);
            b.on_tuple(PortId(0), int_tuple(v), &mut ctx);
        }
        assert_eq!(
            a.snapshot().data,
            b.snapshot().data,
            "collapse instants are a function of tuple history"
        );
    }

    #[test]
    fn sawtooth_deltas_carry_removals() {
        use ms_core::delta;
        use ms_core::operator::SnapshotPayload;

        let mut op = SawtoothStat::new(64, 30);
        let mut ctx = Ctx {
            emitted: Vec::new(),
        };
        for v in 0..25 {
            op.on_tuple(PortId(0), int_tuple(v), &mut ctx);
        }
        let base = op.snapshot().data;
        op.snapshot_delta().unwrap().resolve();
        // Cross the collapse inside one epoch; the delta must fold to
        // the post-collapse table exactly.
        for v in 25..40 {
            op.on_tuple(PortId(0), int_tuple(v), &mut ctx);
        }
        let delta = match op.snapshot_delta().unwrap().resolve() {
            SnapshotPayload::Delta(d) => d,
            SnapshotPayload::Full(_) => panic!("SawtoothStat captures deltas"),
        };
        let folded = delta::fold(&base, &[delta]).unwrap();
        assert_eq!(folded, op.snapshot().data, "removals fold byte-identically");
    }

    #[test]
    fn keyed_stat_deltas_fold_to_full_snapshot() {
        use ms_core::delta;
        use ms_core::operator::SnapshotPayload;

        let mut op = KeyedStat::new(256);
        let mut ctx = Ctx {
            emitted: Vec::new(),
        };
        for v in 0..200 {
            op.on_tuple(PortId(0), int_tuple(v), &mut ctx);
        }
        let base = op.snapshot().data;
        op.snapshot_delta().unwrap().resolve(); // drain dirty set at the base
        let mut deltas = Vec::new();
        for round in 0..3 {
            for v in (round * 40)..(round * 40 + 40) {
                op.on_tuple(PortId(0), int_tuple(v), &mut ctx);
            }
            match op.snapshot_delta().unwrap().resolve() {
                SnapshotPayload::Delta(d) => deltas.push(d),
                SnapshotPayload::Full(_) => panic!("KeyedStat captures deltas"),
            }
        }
        let folded = delta::fold(&base, &deltas).unwrap();
        assert_eq!(folded, op.snapshot().data, "chain folds byte-identically");
        // An epoch touching 40 of 256 keys writes a fraction of the state.
        assert!(deltas[0].encoded_bytes() * 3 < base.len());
    }

    #[test]
    fn throttled_source_snapshot_roundtrip() {
        let mut src = ThrottledCountSource::new(100, Duration::ZERO);
        let mut ctx = Ctx {
            emitted: Vec::new(),
        };
        for _ in 0..7 {
            src.on_timer(&mut ctx);
        }
        assert_eq!(ctx.emitted.len(), 7);
        let snap = src.snapshot();
        let mut fresh = ThrottledCountSource::new(100, Duration::ZERO);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.emitted, 7);
        assert_eq!(fresh.limit, 100);
    }

    #[test]
    fn chain_sum_closed_form() {
        // chain3, limit 4: (0+1+2+3) doubled once = 12.
        assert_eq!(expected_chain_sum(3, 4), 12);
        // chain4 doubles twice.
        assert_eq!(expected_chain_sum(4, 4), 24);
        assert_eq!(expected_chain_sum(2, 4), 6);
    }

    #[test]
    fn fleet_shape_builds() {
        let qn = demo_network("fleet6x6").unwrap();
        assert_eq!(qn.len(), 13); // 6 sources + 6 stages + sink
        assert_eq!(qn.sources().len(), 6);
        assert_eq!(qn.sinks().len(), 1);
        // All sources feed stage0 (op index 6).
        assert_eq!(qn.upstream(OperatorId(6)).len(), 6);
        // fleet2x1: two sources, one stage, sink.
        let small = demo_network("fleet2x1").unwrap();
        assert_eq!(small.len(), 4);
        assert!(demo_network("fleet0x3").is_err());
        assert!(demo_network("fleetx").is_err());
    }

    #[test]
    fn fleet_sum_closed_form() {
        // 2 sources × Σ0..4 = 12, doubled by 3 stages → 96, 8 tuples.
        assert_eq!(expected_fleet_sum(2, 3, 4), (96, 8));
        assert_eq!(expected_fleet_sum(6, 6, 0), (0, 0));
        // fleet6x6 at limit 400: 6 × 79800 × 64.
        assert_eq!(expected_fleet_sum(6, 6, 400), (6 * 79800 * 64, 2400));
    }

    #[test]
    fn route_key_matches_keyed_stat_partition() {
        let key = route_key(64);
        for v in 0..1000i64 {
            let t = int_tuple(v);
            assert_eq!(key(&t), (v as u64 / KEY_STRIDE) % 64);
        }
        // Stateless fallback: raw value.
        let raw = route_key(0);
        assert_eq!(raw(&int_tuple(17)), 17);
    }
}
