//! The Table-I failure model.
//!
//! Table I of the paper reports commodity-data-center failure rates as
//! AFN100 — "the average number of node failures observed across 100
//! nodes running through a year" — broken down by cause:
//!
//! | Source      | Google DC | Abe cluster |
//! |-------------|-----------|-------------|
//! | Network     | >300      | ~250        |
//! | Environment | 100–150   | NA          |
//! | Ooops       | ~100      | ~40         |
//! | Disk        | 1.7–8.6   | 2–6         |
//! | Memory      | 1.3       | NA          |
//!
//! The Google network figure is derived in §II-B1 from one year of
//! incidents: one rewiring (5% of nodes), twenty rack failures (80
//! nodes each), five rack unsteadiness events (80 nodes), fifteen
//! router failures/reloads and eight network maintenances (10% of
//! nodes each, conservatively) — 7640 node-failures over 2400 nodes,
//! AFN100 > 300. This module encodes those incident classes
//! generatively so the table can be *regenerated* by sampling, and so
//! integration tests can inject realistic correlated bursts.

use ms_core::ids::NodeId;
use ms_core::time::{SimDuration, SimTime};
use ms_sim::DetRng;
use serde::{Deserialize, Serialize};

use crate::Cluster;

/// Failure cause categories of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureSource {
    /// Rack, switch, router and DNS malfunctions. A major source of
    /// large-scale burst failures.
    Network,
    /// Power outage, overheating, maintenance. The other major burst
    /// source.
    Environment,
    /// Software faults, operator mistakes, unknown causes.
    Ooops,
    /// Uncorrectable disk errors (correctable scan/seek/CRC errors are
    /// excluded, following Table I).
    Disk,
    /// Uncorrectable memory errors (ECC-correctable soft errors are
    /// excluded).
    Memory,
}

impl FailureSource {
    /// All categories in Table I's row order.
    pub const ALL: [FailureSource; 5] = [
        FailureSource::Network,
        FailureSource::Environment,
        FailureSource::Ooops,
        FailureSource::Disk,
        FailureSource::Memory,
    ];

    /// Table I row label.
    pub fn label(self) -> &'static str {
        match self {
            FailureSource::Network => "Network",
            FailureSource::Environment => "Environment",
            FailureSource::Ooops => "Ooops",
            FailureSource::Disk => "Disk",
            FailureSource::Memory => "Memory",
        }
    }
}

/// How many nodes one incident takes down.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FailureScope {
    /// One node.
    SingleNode,
    /// Every node in one rack (highly rack-correlated bursts).
    Rack,
    /// A random fraction of all nodes (rewirings, router failures,
    /// power events).
    Fraction(f64),
}

/// One incident class: e.g. "rack failure: 20 per year, whole rack,
/// 1–6 h to recover".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IncidentClass {
    /// Descriptive name.
    pub name: &'static str,
    /// Table I category this class contributes to.
    pub source: FailureSource,
    /// Expected incidents per year for the whole data center (scaled
    /// by cluster size relative to 2400 nodes for per-node causes).
    pub per_year: f64,
    /// True if `per_year` counts per-2400-node fleet and should scale
    /// linearly with cluster size (disk/memory/ooops); false for
    /// fleet-wide infrastructure events (rewiring, maintenance).
    pub scales_with_nodes: bool,
    /// Blast radius.
    pub scope: FailureScope,
    /// Recovery time range (uniform), e.g. rack failures "take 1–6
    /// hours to recover".
    pub recovery: (SimDuration, SimDuration),
}

/// A sampled failure incident.
#[derive(Clone, Debug)]
pub struct FailureEvent {
    /// When the incident strikes.
    pub at: SimTime,
    /// Category.
    pub source: FailureSource,
    /// Incident class name.
    pub name: &'static str,
    /// Affected nodes.
    pub nodes: Vec<NodeId>,
    /// Time until the affected nodes return.
    pub recovery: SimDuration,
}

impl FailureEvent {
    /// True if this incident downs more than one node — "part of a
    /// correlated burst" in the paper's terminology.
    pub fn is_burst(&self) -> bool {
        self.nodes.len() > 1
    }
}

/// A generative failure model: a set of incident classes.
#[derive(Clone, Debug)]
pub struct FailureModel {
    classes: Vec<IncidentClass>,
    /// The fleet size the non-scaling incident rates were calibrated
    /// against (2400 for the Google model).
    reference_nodes: f64,
}

const HOUR: SimDuration = SimDuration::from_secs(3600);

impl FailureModel {
    /// The Google data-center model of §II-B1 (2400 nodes reference).
    pub fn google() -> FailureModel {
        let classes = vec![
            // --- Network: 7640 node-failures/year over 2400 nodes ---
            IncidentClass {
                name: "network rewiring",
                source: FailureSource::Network,
                per_year: 1.0,
                scales_with_nodes: false,
                scope: FailureScope::Fraction(0.05),
                recovery: (HOUR, HOUR * 6),
            },
            IncidentClass {
                name: "rack failure",
                source: FailureSource::Network,
                per_year: 20.0,
                scales_with_nodes: false,
                scope: FailureScope::Rack,
                recovery: (HOUR, HOUR * 6),
            },
            IncidentClass {
                name: "rack unsteadiness",
                source: FailureSource::Network,
                per_year: 5.0,
                scales_with_nodes: false,
                scope: FailureScope::Rack,
                recovery: (SimDuration::from_secs(600), HOUR),
            },
            IncidentClass {
                name: "router failure/reload",
                source: FailureSource::Network,
                per_year: 15.0,
                scales_with_nodes: false,
                scope: FailureScope::Fraction(0.10),
                recovery: (SimDuration::from_secs(300), HOUR),
            },
            IncidentClass {
                name: "network maintenance",
                source: FailureSource::Network,
                per_year: 8.0,
                scales_with_nodes: false,
                scope: FailureScope::Fraction(0.10),
                recovery: (SimDuration::from_secs(1800), HOUR * 2),
            },
            // --- Environment: AFN100 100-150 (≈3000 node-failures) ---
            IncidentClass {
                name: "power event",
                source: FailureSource::Environment,
                per_year: 2.0,
                scales_with_nodes: false,
                scope: FailureScope::Fraction(0.50),
                recovery: (HOUR, HOUR * 8),
            },
            IncidentClass {
                name: "overheating/maintenance",
                source: FailureSource::Environment,
                per_year: 4.0,
                scales_with_nodes: false,
                scope: FailureScope::Fraction(0.0625),
                recovery: (HOUR, HOUR * 4),
            },
            // --- Ooops: ~100 AFN100, mostly independent nodes ---
            IncidentClass {
                name: "software/operator error",
                source: FailureSource::Ooops,
                per_year: 2400.0,
                scales_with_nodes: true,
                scope: FailureScope::SingleNode,
                recovery: (SimDuration::from_secs(300), HOUR * 2),
            },
            // --- Disk: 1.7-8.6 AFN100 uncorrectable ---
            IncidentClass {
                name: "uncorrectable disk error",
                source: FailureSource::Disk,
                per_year: 120.0,
                scales_with_nodes: true,
                scope: FailureScope::SingleNode,
                recovery: (HOUR * 2, HOUR * 24),
            },
            // --- Memory: 1.3 AFN100 uncorrectable ---
            IncidentClass {
                name: "uncorrectable memory error",
                source: FailureSource::Memory,
                per_year: 31.0,
                scales_with_nodes: true,
                scope: FailureScope::SingleNode,
                recovery: (HOUR, HOUR * 8),
            },
        ];
        FailureModel {
            classes,
            reference_nodes: 2400.0,
        }
    }

    /// The NCSA Abe cluster model (InfiniBand network, RAID6 storage;
    /// lower network rate, no environment/memory data).
    pub fn abe() -> FailureModel {
        let mut m = FailureModel::google();
        m.classes
            .retain(|c| !matches!(c.source, FailureSource::Environment | FailureSource::Memory));
        for c in &mut m.classes {
            match c.source {
                // ~250 AFN100: scale the Google network classes down.
                FailureSource::Network => c.per_year *= 250.0 / 318.0,
                // ~40 AFN100.
                FailureSource::Ooops => c.per_year *= 40.0 / 100.0,
                // 2-6 AFN100: RAID6 absorbs most disk faults.
                FailureSource::Disk => c.per_year *= 4.0 / 5.0,
                _ => {}
            }
        }
        m
    }

    /// The incident classes.
    pub fn classes(&self) -> &[IncidentClass] {
        &self.classes
    }

    /// Samples every incident over `years` of operation of `cluster`.
    /// Incident counts are Poisson; arrival times are uniform over the
    /// horizon; blast radii follow each class's scope.
    pub fn sample(&self, cluster: &Cluster, years: f64, rng: &mut DetRng) -> Vec<FailureEvent> {
        let horizon_secs = years * 365.0 * 24.0 * 3600.0;
        let node_scale = cluster.len() as f64 / self.reference_nodes;
        let mut events = Vec::new();
        for class in &self.classes {
            let rate = class.per_year
                * years
                * if class.scales_with_nodes {
                    node_scale
                } else {
                    1.0
                };
            let count = rng.poisson(rate);
            for _ in 0..count {
                let at = SimTime::from_secs(rng.range_f64(0.0, horizon_secs) as u64);
                let nodes = self.blast_radius(cluster, class.scope, rng);
                if nodes.is_empty() {
                    continue;
                }
                let recovery = SimDuration::from_secs(rng.range_u64(
                    class.recovery.0.as_micros() / 1_000_000,
                    (class.recovery.1.as_micros() / 1_000_000).max(1),
                ));
                events.push(FailureEvent {
                    at,
                    source: class.source,
                    name: class.name,
                    nodes,
                    recovery,
                });
            }
        }
        events.sort_by_key(|e| e.at);
        events
    }

    fn blast_radius(
        &self,
        cluster: &Cluster,
        scope: FailureScope,
        rng: &mut DetRng,
    ) -> Vec<NodeId> {
        match scope {
            FailureScope::SingleNode => {
                vec![NodeId(rng.range_u64(0, cluster.len() as u64) as u32)]
            }
            FailureScope::Rack => {
                let rack = rng.range_u64(0, cluster.racks() as u64) as u32;
                cluster.nodes_in_rack(ms_core::ids::RackId(rack))
            }
            FailureScope::Fraction(f) => {
                let want = ((cluster.len() as f64 * f).round() as usize).max(1);
                // Contiguous span approximates the spatial correlation
                // of infrastructure failures.
                let start = rng.range_u64(0, cluster.len() as u64) as usize;
                (0..want)
                    .map(|k| NodeId(((start + k) % cluster.len()) as u32))
                    .collect()
            }
        }
    }

    /// Computes AFN100 per failure source from sampled events:
    /// `node-failures / nodes * 100 / years`.
    pub fn afn100(events: &[FailureEvent], nodes: usize, years: f64) -> Vec<(FailureSource, f64)> {
        FailureSource::ALL
            .iter()
            .map(|&src| {
                let node_failures: usize = events
                    .iter()
                    .filter(|e| e.source == src)
                    .map(|e| e.nodes.len())
                    .sum();
                (src, node_failures as f64 / nodes as f64 * 100.0 / years)
            })
            .collect()
    }

    /// Fraction of failure events that are part of a correlated burst
    /// (≥ 2 nodes). The paper observes "about 10% failures in the data
    /// center are correlated and occur in bursts".
    pub fn burst_fraction(events: &[FailureEvent]) -> f64 {
        if events.is_empty() {
            return 0.0;
        }
        events.iter().filter(|e| e.is_burst()).count() as f64 / events.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterConfig;

    fn google_cluster() -> Cluster {
        Cluster::new(ClusterConfig::google_dc())
    }

    #[test]
    fn google_afn100_matches_table1() {
        let cluster = google_cluster();
        let model = FailureModel::google();
        let mut rng = DetRng::new(1);
        let years = 20.0;
        let events = model.sample(&cluster, years, &mut rng);
        let afn = FailureModel::afn100(&events, cluster.len(), years);
        let get = |s: FailureSource| afn.iter().find(|(src, _)| *src == s).unwrap().1;
        assert!(
            get(FailureSource::Network) > 300.0,
            "network {}",
            get(FailureSource::Network)
        );
        assert!(get(FailureSource::Network) < 400.0);
        let env = get(FailureSource::Environment);
        assert!((90.0..170.0).contains(&env), "environment {env}");
        let ooops = get(FailureSource::Ooops);
        assert!((80.0..120.0).contains(&ooops), "ooops {ooops}");
        let disk = get(FailureSource::Disk);
        assert!((1.7..8.6).contains(&disk), "disk {disk}");
        let mem = get(FailureSource::Memory);
        assert!((0.8..2.0).contains(&mem), "memory {mem}");
    }

    #[test]
    fn abe_rates_are_lower() {
        let cluster = google_cluster();
        let mut rng = DetRng::new(2);
        let years = 20.0;
        let g = FailureModel::afn100(
            &FailureModel::google().sample(&cluster, years, &mut rng),
            cluster.len(),
            years,
        );
        let mut rng = DetRng::new(2);
        let a = FailureModel::afn100(
            &FailureModel::abe().sample(&cluster, years, &mut rng),
            cluster.len(),
            years,
        );
        let net_g = g
            .iter()
            .find(|(s, _)| *s == FailureSource::Network)
            .unwrap()
            .1;
        let net_a = a
            .iter()
            .find(|(s, _)| *s == FailureSource::Network)
            .unwrap()
            .1;
        assert!(net_a < net_g);
        let env_a = a
            .iter()
            .find(|(s, _)| *s == FailureSource::Environment)
            .unwrap()
            .1;
        assert_eq!(env_a, 0.0);
    }

    #[test]
    fn bursts_are_rack_correlated_and_about_ten_percent() {
        let cluster = google_cluster();
        let model = FailureModel::google();
        let mut rng = DetRng::new(3);
        let events = model.sample(&cluster, 10.0, &mut rng);
        let frac = FailureModel::burst_fraction(&events);
        assert!(
            (0.01..0.25).contains(&frac),
            "burst fraction {frac} should be around 10%"
        );
        // Rack failures must take down exactly one rack's nodes.
        let rack_event = events
            .iter()
            .find(|e| e.name == "rack failure")
            .expect("20/year: must appear in 10 years");
        assert_eq!(rack_event.nodes.len(), cluster.config().nodes_per_rack);
        let rack = cluster.rack_of(rack_event.nodes[0]);
        assert!(rack_event.nodes.iter().all(|n| cluster.rack_of(*n) == rack));
    }

    #[test]
    fn sampling_is_deterministic() {
        let cluster = google_cluster();
        let model = FailureModel::google();
        let a = model.sample(&cluster, 1.0, &mut DetRng::new(9));
        let b = model.sample(&cluster, 1.0, &mut DetRng::new(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.nodes, y.nodes);
        }
    }

    #[test]
    fn events_sorted_by_time() {
        let cluster = google_cluster();
        let events = FailureModel::google().sample(&cluster, 2.0, &mut DetRng::new(4));
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
