//! Recovery-time-vs-checkpoint-overhead frontier for EXPERIMENTS.md.
//!
//! Runs the same sawtooth chain3 workload — SIGKILL of the keyed
//! worker included — under fixed checkpoint periods and under the
//! live telemetry plane (aware initiation + adaptive cadence) at
//! several recovery budgets. Each cell is a real 3-process cluster on
//! localhost; the metrics come out of the run ledger the controller
//! writes anyway: total checkpoint bytes, barrier-latency p99, the
//! measured failure-detection → caught-up recovery time, and how many
//! barriers the classifier landed on aggregate state minima.
//!
//! Prints a markdown table plus the `"aa_frontier"` JSON block for
//! `BENCH_sweep.json` (same paste convention as `wal_append`).
//!
//! Usage: `aa_frontier` (next to `ms-controller` / `ms-worker`, i.e.
//! run via `cargo run --release -p ms-wire --bin aa_frontier`).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ms_wire::{read_decisions, read_ledger, LEDGER_FILE};

const LIMIT: u64 = 12000;
const DELAY_US: u64 = 500;
const KEYED_STATE: u64 = 4096;
const SAWTOOTH_WINDOW: u64 = 1000;

struct Cell {
    label: &'static str,
    ckpt_ms: u64,
    aware: bool,
    budget_ms: u64,
}

const CELLS: &[Cell] = &[
    Cell {
        label: "fixed-200ms",
        ckpt_ms: 200,
        aware: false,
        budget_ms: 0,
    },
    Cell {
        label: "fixed-500ms",
        ckpt_ms: 500,
        aware: false,
        budget_ms: 0,
    },
    Cell {
        label: "fixed-1000ms",
        ckpt_ms: 1000,
        aware: false,
        budget_ms: 0,
    },
    Cell {
        label: "adaptive-1s",
        ckpt_ms: 1000,
        aware: true,
        budget_ms: 1000,
    },
    Cell {
        label: "adaptive-2s",
        ckpt_ms: 1000,
        aware: true,
        budget_ms: 2000,
    },
    Cell {
        label: "adaptive-4s",
        ckpt_ms: 1000,
        aware: true,
        budget_ms: 4000,
    },
];

struct Measured {
    ckpt_bytes: u64,
    checkpoints: usize,
    barrier_p99_ms: f64,
    recovery_ms: f64,
    local_minima: usize,
    wall_secs: f64,
}

/// Kills every still-running child on drop so a failed cell never
/// leaks processes.
struct Cluster(Vec<Child>);

impl Drop for Cluster {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn sibling(name: &str) -> PathBuf {
    let mut p = std::env::current_exe().expect("current_exe");
    p.set_file_name(name);
    assert!(p.exists(), "{} not built next to aa_frontier", p.display());
    p
}

fn controller(dir: &Path, cell: &Cell) -> Command {
    let mut cmd = Command::new(sibling("ms-controller"));
    cmd.args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--addr-file".as_ref(), dir.join("addr").as_os_str()])
        .args(["--result-file".as_ref(), dir.join("result").as_os_str()])
        .args(["--workers", "2", "--shape", "chain3"])
        .args(["--limit", &LIMIT.to_string()])
        .args(["--delay-us", &DELAY_US.to_string()])
        .args(["--keyed-state", &KEYED_STATE.to_string()])
        .args(["--sawtooth-window", &SAWTOOTH_WINDOW.to_string()])
        .args(["--ckpt-ms", &cell.ckpt_ms.to_string()])
        .args(["--hb-timeout-ms", "500"])
        .args(["--respawn-wait-ms", "3000", "--deadline-secs", "90"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if cell.aware {
        cmd.args(["--aware", "1"]).args([
            "--aware-sample-ms",
            "100",
            "--aware-profile-periods",
            "2",
        ]);
    }
    if cell.budget_ms > 0 {
        cmd.args(["--recovery-budget-ms", &cell.budget_ms.to_string()]);
    }
    cmd
}

fn worker(dir: &Path, name: &str) -> Command {
    let mut cmd = Command::new(sibling("ms-worker"));
    cmd.args(["--name", name])
        .args(["--store".as_ref(), dir.join("store").as_os_str()])
        .args(["--controller-file".as_ref(), dir.join("addr").as_os_str()])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    cmd
}

fn max_complete_epoch(store: &Path) -> u64 {
    let mut per_epoch = std::collections::HashMap::new();
    let Ok(entries) = fs::read_dir(store.join("ckpt")) else {
        return 0;
    };
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if let Some(epoch) = name
            .strip_prefix('e')
            .and_then(|r| r.split_once("_op"))
            .and_then(|(e, _)| e.parse::<u64>().ok())
        {
            *per_epoch.entry(epoch).or_insert(0usize) += 1;
        }
    }
    per_epoch
        .iter()
        .filter(|(_, &n)| n >= 3)
        .map(|(&e, _)| e)
        .max()
        .unwrap_or(0)
}

fn run_cell(cell: &Cell, scratch: &Path) -> Measured {
    let dir = scratch.join(cell.label);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("cell dir");

    let t0 = Instant::now();
    let mut cluster = Cluster(Vec::new());
    cluster
        .0
        .push(controller(&dir, cell).spawn().expect("spawn controller"));
    cluster
        .0
        .push(worker(&dir, "wa").spawn().expect("spawn wa"));
    cluster
        .0
        .push(worker(&dir, "wb").spawn().expect("spawn wb"));

    // SIGKILL the sawtooth worker once two application checkpoints are
    // durable — same protocol as the `aware_live` integration test.
    let deadline = Instant::now() + Duration::from_secs(30);
    while max_complete_epoch(&dir.join("store")) < 2 {
        assert!(
            Instant::now() < deadline,
            "{}: no complete checkpoint in time",
            cell.label
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.0[2].kill().expect("kill wb");
    let _ = cluster.0[2].wait();
    cluster
        .0
        .push(worker(&dir, "wc").spawn().expect("spawn wc"));

    let exit_by = Instant::now() + Duration::from_secs(80);
    loop {
        if let Some(status) = cluster.0[0].try_wait().expect("controller wait") {
            assert!(status.success(), "{}: controller failed", cell.label);
            break;
        }
        assert!(Instant::now() < exit_by, "{}: controller hung", cell.label);
        std::thread::sleep(Duration::from_millis(25));
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    drop(cluster);

    // Everything below comes off the run ledger.
    let ledger_path = dir.join("store").join(LEDGER_FILE);
    let records = read_ledger(&ledger_path).expect("ledger parse");
    let ckpt_bytes: u64 = records.iter().map(|r| r.ckpt_bytes).sum();
    let mut per_epoch: std::collections::BTreeMap<u64, u64> = Default::default();
    for r in &records {
        per_epoch.insert(r.epoch, r.barrier_us);
    }
    let mut barriers: Vec<u64> = per_epoch.values().copied().collect();
    barriers.sort_unstable();
    let p99_idx = (barriers.len().saturating_sub(1)) * 99 / 100;
    let barrier_p99_ms = barriers.get(p99_idx).map_or(0.0, |&us| us as f64 / 1e3);

    let decisions = read_decisions(&ledger_path).expect("decision parse");
    let recovery_ms = decisions
        .iter()
        .find(|d| d.reason == "recovery")
        .map_or(0.0, |d| d.recovery_us as f64 / 1e3);
    let local_minima = decisions
        .iter()
        .filter(|d| d.reason == "local_minimum")
        .count();

    let _ = fs::remove_dir_all(&dir);
    Measured {
        ckpt_bytes,
        checkpoints: per_epoch.len(),
        barrier_p99_ms,
        recovery_ms,
        local_minima,
        wall_secs,
    }
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("ms_aa_frontier_{}", std::process::id()));
    fs::create_dir_all(&scratch).expect("scratch dir");

    println!(
        "aa_frontier: sawtooth chain3, {LIMIT} tuples @ {DELAY_US} µs, \
         window {SAWTOOTH_WINDOW}, SIGKILL mid-stream"
    );
    println!("| cell | ckpts | ckpt bytes | barrier p99 ms | recovery ms | minima |");
    println!("|---|---|---|---|---|---|");
    let mut results = Vec::new();
    for cell in CELLS {
        let m = run_cell(cell, &scratch);
        println!(
            "| {} | {} | {} | {:.1} | {:.1} | {} |",
            cell.label,
            m.checkpoints,
            m.ckpt_bytes,
            m.barrier_p99_ms,
            m.recovery_ms,
            m.local_minima
        );
        results.push(m);
    }
    let _ = fs::remove_dir_all(&scratch);

    // The snapshot recorded under BENCH_sweep.json's "aa_frontier" key
    // (same convention as "wal_append": paste the block below).
    println!("\n\"aa_frontier\": {{");
    println!(
        " \"note\": \"sawtooth chain3 ({LIMIT} tuples @ {DELAY_US} us, collapse every \
         {SAWTOOTH_WINDOW} tuples) with a mid-stream SIGKILL; fixed checkpoint periods vs the \
         live telemetry plane (aware initiation + adaptive cadence) at three recovery budgets; \
         metrics from the run ledger; recorded snapshot\","
    );
    println!(" \"cells\": [");
    for (i, (cell, m)) in CELLS.iter().zip(&results).enumerate() {
        println!(
            "  {{ \"cell\": \"{}\", \"ckpt_ms\": {}, \"aware\": {}, \"budget_ms\": {}, \
             \"checkpoints\": {}, \"ckpt_bytes\": {}, \"barrier_p99_ms\": {:.1}, \
             \"recovery_ms\": {:.1}, \"local_minima\": {}, \"wall_secs\": {:.3} }}{}",
            cell.label,
            cell.ckpt_ms,
            cell.aware,
            cell.budget_ms,
            m.checkpoints,
            m.ckpt_bytes,
            m.barrier_p99_ms,
            m.recovery_ms,
            m.local_minima,
            m.wall_secs,
            if i + 1 == CELLS.len() { "" } else { "," }
        );
    }
    println!(" ]\n}}");
}
