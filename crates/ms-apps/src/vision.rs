//! Synthetic camera frames and the image-processing primitives used by
//! BCP and SignalGuru.
//!
//! Real deployments carried JPEG frames from bus-stop cameras and
//! windshield iPhones; the reproduction substitutes *synthetic frames*
//! (DESIGN.md §2): a [`ms_core::value::Value::Blob`] whose
//! `logical_bytes` is the full frame size (what every cost model
//! charges) and whose digest is a small feature vector the kernels
//! actually compute on. Digest layout:
//!
//! | index | meaning |
//! |-------|---------|
//! | 0 | brightness (0..1) |
//! | 1 | red-channel fraction (0..1) |
//! | 2 | green-channel fraction (0..1) |
//! | 3 | people present (expected count, ≥0) |
//! | 4 | scene motion energy (0..1) |
//! | 5 | traffic-light phase (0 = red, 1 = green, fractional = amber) |
//! | 6,7 | texture noise |

use ms_core::value::Value;
use ms_sim::DetRng;

/// Digest length for synthetic frames.
pub const FRAME_DIGEST_LEN: usize = 8;

/// Scene parameters for frame synthesis.
#[derive(Clone, Copy, Debug)]
pub struct Scene {
    /// Expected number of people in view.
    pub people: f64,
    /// Traffic-light phase: 0 red … 1 green.
    pub light_phase: f64,
    /// Motion energy (vehicle/camera movement).
    pub motion: f64,
}

/// Synthesizes one frame of `logical_bytes` with noisy features.
pub fn synth_frame(rng: &mut DetRng, logical_bytes: u64, scene: Scene) -> Value {
    let noise = |rng: &mut DetRng, s: f64| (s + rng.normal(0.0, 0.05)).clamp(0.0, 1.0);
    let people = (scene.people + rng.normal(0.0, 0.6)).max(0.0);
    let digest = vec![
        noise(rng, 0.6) as f32,                                   // brightness
        noise(rng, 0.2 + 0.5 * (1.0 - scene.light_phase)) as f32, // red
        noise(rng, 0.2 + 0.5 * scene.light_phase) as f32,         // green
        people as f32,                                            // people
        noise(rng, scene.motion) as f32,                          // motion energy
        scene.light_phase.clamp(0.0, 1.0) as f32,                 // phase ground truth
        rng.f64() as f32,
        rng.f64() as f32,
    ];
    Value::Blob {
        logical_bytes,
        digest,
    }
}

/// Counts people in a frame digest (BCP's `C` operators): a noisy
/// round of the people feature.
pub fn count_people(digest: &[f32]) -> u32 {
    digest.get(3).map_or(0, |&p| p.round().max(0.0) as u32)
}

/// Color filter (SignalGuru `C`): true if the frame plausibly contains
/// a lit traffic signal (strong red or green channel).
pub fn color_filter(digest: &[f32]) -> bool {
    let red = digest.get(1).copied().unwrap_or(0.0);
    let green = digest.get(2).copied().unwrap_or(0.0);
    red > 0.35 || green > 0.35
}

/// Shape filter (SignalGuru `A`): true if the bright region is
/// circular enough — approximated from brightness and texture noise.
pub fn shape_filter(digest: &[f32]) -> bool {
    let brightness = digest.first().copied().unwrap_or(0.0);
    let texture = digest.get(6).copied().unwrap_or(0.5);
    brightness > 0.3 && texture < 0.9
}

/// Motion score between two successive frames (SignalGuru `M`):
/// traffic lights have fixed positions, so low inter-frame motion
/// means the detection is trustworthy.
pub fn motion_score(prev: &[f32], cur: &[f32]) -> f64 {
    let pm = prev.get(4).copied().unwrap_or(0.0) as f64;
    let cm = cur.get(4).copied().unwrap_or(0.0) as f64;
    let db =
        (prev.first().copied().unwrap_or(0.0) - cur.first().copied().unwrap_or(0.0)).abs() as f64;
    ((pm + cm) / 2.0 + db).min(1.0)
}

/// Extracts the signal phase estimate from a digest (0 red … 1 green)
/// with the detection confidence given the motion score.
pub fn detect_phase(digest: &[f32], motion: f64) -> (f64, f64) {
    let red = digest.get(1).copied().unwrap_or(0.0) as f64;
    let green = digest.get(2).copied().unwrap_or(0.0) as f64;
    let phase = if green + red <= 0.0 {
        0.5
    } else {
        green / (green + red)
    };
    let confidence = (1.0 - motion).clamp(0.0, 1.0);
    (phase, confidence)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(11)
    }

    #[test]
    fn frame_has_expected_shape() {
        let f = synth_frame(
            &mut rng(),
            2_000_000,
            Scene {
                people: 3.0,
                light_phase: 1.0,
                motion: 0.1,
            },
        );
        let (bytes, digest) = f.as_blob().unwrap();
        assert_eq!(bytes, 2_000_000);
        assert_eq!(digest.len(), FRAME_DIGEST_LEN);
    }

    #[test]
    fn people_counting_tracks_scene() {
        let mut r = rng();
        let scene = |p| Scene {
            people: p,
            light_phase: 0.5,
            motion: 0.2,
        };
        let avg = |r: &mut DetRng, p: f64| {
            let n = 200;
            (0..n)
                .map(|_| {
                    let f = synth_frame(r, 1000, scene(p));
                    count_people(f.as_blob().unwrap().1) as f64
                })
                .sum::<f64>()
                / n as f64
        };
        let low = avg(&mut r, 1.0);
        let high = avg(&mut r, 8.0);
        assert!((low - 1.0).abs() < 0.6, "low {low}");
        assert!((high - 8.0).abs() < 0.6, "high {high}");
    }

    #[test]
    fn green_frames_read_as_green() {
        let mut r = rng();
        let mut green_votes = 0;
        for _ in 0..100 {
            let f = synth_frame(
                &mut r,
                1000,
                Scene {
                    people: 0.0,
                    light_phase: 1.0,
                    motion: 0.05,
                },
            );
            let d = f.as_blob().unwrap().1;
            assert!(color_filter(d));
            let (phase, conf) = detect_phase(d, 0.05);
            if phase > 0.5 {
                green_votes += 1;
            }
            assert!(conf > 0.9);
        }
        assert!(green_votes > 90);
    }

    #[test]
    fn motion_score_is_low_for_static_scenes() {
        let mut r = rng();
        let mk = |r: &mut DetRng, motion| {
            synth_frame(
                r,
                1000,
                Scene {
                    people: 0.0,
                    light_phase: 0.5,
                    motion,
                },
            )
        };
        let a = mk(&mut r, 0.05);
        let b = mk(&mut r, 0.05);
        let static_score = motion_score(a.as_blob().unwrap().1, b.as_blob().unwrap().1);
        let c = mk(&mut r, 0.9);
        let d = mk(&mut r, 0.9);
        let moving_score = motion_score(c.as_blob().unwrap().1, d.as_blob().unwrap().1);
        assert!(static_score < moving_score);
    }
}
