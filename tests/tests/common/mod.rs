//! Shared test application: a deterministic three-stage pipeline whose
//! sink verifies exactly-once delivery structurally (per-producer
//! sequence continuity — no gaps, no duplicates).
// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use ms_core::codec::{SnapshotReader, SnapshotWriter};
use ms_core::graph::QueryNetwork;
use ms_core::ids::{OperatorId, PortId};
use ms_core::operator::{Operator, OperatorContext, OperatorSnapshot};
use ms_core::time::SimDuration;
use ms_core::tuple::Tuple;
use ms_core::value::Value;
use ms_runtime::SimpleApp;

/// Source: one sequence-stamped tuple per tick.
pub struct SeqSource {
    emitted: u64,
    tick: SimDuration,
}

impl SeqSource {
    /// Creates a source with the given tick.
    pub fn new(tick: SimDuration) -> SeqSource {
        SeqSource { emitted: 0, tick }
    }
}

impl Operator for SeqSource {
    fn kind(&self) -> &'static str {
        "SeqSource"
    }
    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _c: &mut dyn OperatorContext) {}
    fn on_timer(&mut self, ctx: &mut dyn OperatorContext) {
        ctx.emit_all(vec![Value::Int(self.emitted as i64), Value::blob(20_000)]);
        self.emitted += 1;
    }
    fn timer_interval(&self) -> Option<SimDuration> {
        Some(self.tick)
    }
    fn state_size(&self) -> u64 {
        8
    }
    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.emitted);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 8,
        }
    }
    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        self.emitted = SnapshotReader::new(&s.data).get_u64()?;
        Ok(())
    }
}

/// Transform: deterministic 1:1 map carrying the payload through, with
/// a bit of accumulated state.
#[derive(Default)]
pub struct Xform {
    processed: u64,
    acc: i64,
}

impl Operator for Xform {
    fn kind(&self) -> &'static str {
        "Xform"
    }
    fn on_tuple(&mut self, _p: PortId, t: Tuple, ctx: &mut dyn OperatorContext) {
        self.processed += 1;
        if let Some(v) = t.field(0).and_then(Value::as_int) {
            self.acc = self.acc.wrapping_add(v);
            ctx.emit_all(vec![Value::Int(v), Value::blob(10_000)]);
        }
    }
    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_millis(2)
    }
    fn state_size(&self) -> u64 {
        16 + self.processed.min(1000) * 100
    }
    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.processed).put_i64(self.acc);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: self.state_size(),
        }
    }
    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.processed = r.get_u64()?;
        self.acc = r.get_i64()?;
        Ok(())
    }
}

/// Sink verifying sequence continuity per producer: every tuple value
/// `v` is recorded; exactly-once holds iff `count == max + 1` and
/// `sum == max(max+1)/2` for the contiguous prefix.
#[derive(Default)]
pub struct CheckSink {
    pub count: u64,
    pub max_v: i64,
    pub sum: i64,
}

impl Operator for CheckSink {
    fn kind(&self) -> &'static str {
        "CheckSink"
    }
    fn on_tuple(&mut self, _p: PortId, t: Tuple, _c: &mut dyn OperatorContext) {
        if let Some(v) = t.field(0).and_then(Value::as_int) {
            self.count += 1;
            self.max_v = self.max_v.max(v);
            self.sum = self.sum.wrapping_add(v);
        }
    }
    fn state_size(&self) -> u64 {
        24
    }
    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.count).put_i64(self.max_v).put_i64(self.sum);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 24,
        }
    }
    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        let mut r = SnapshotReader::new(&s.data);
        self.count = r.get_u64()?;
        self.max_v = r.get_i64()?;
        self.sum = r.get_i64()?;
        Ok(())
    }
}

/// Decoded sink verdict.
pub struct SinkVerdict {
    pub count: u64,
    pub max_v: i64,
    pub sum: i64,
}

impl SinkVerdict {
    /// True iff the sink saw exactly `0..=max` once each.
    pub fn exactly_once(&self) -> bool {
        self.count == (self.max_v + 1) as u64 && self.sum == self.max_v * (self.max_v + 1) / 2
    }
}

/// An app whose operators are built by a test-local closure.
pub type ClosureApp = SimpleApp<Box<dyn Fn(OperatorId, &mut ms_sim::DetRng) -> Box<dyn Operator>>>;

/// Builds the three-stage pipeline app (source -> xform -> sink).
pub fn pipeline_app() -> (ClosureApp, OperatorId) {
    type Factory = Box<dyn Fn(OperatorId, &mut ms_sim::DetRng) -> Box<dyn Operator>>;
    let mut qn = QueryNetwork::new();
    let s = qn.add_operator("src");
    let x = qn.add_operator("xform");
    let k = qn.add_operator("sink");
    qn.connect(s, x).unwrap();
    qn.connect(x, k).unwrap();
    let app = SimpleApp::new(
        "pipeline",
        qn,
        Box::new(move |op, _rng: &mut ms_sim::DetRng| -> Box<dyn Operator> {
            if op == s {
                Box::new(SeqSource {
                    emitted: 0,
                    tick: SimDuration::from_millis(20),
                })
            } else if op == x {
                Box::new(Xform {
                    processed: 0,
                    acc: 0,
                })
            } else {
                Box::new(CheckSink::default())
            }
        }) as Factory,
    );
    (app, k)
}

/// Reads the sink verdict out of a run report.
pub fn sink_verdict(report: &ms_runtime::RunReport, sink: OperatorId) -> SinkVerdict {
    let (_, snap) = report
        .final_snapshots
        .iter()
        .find(|(op, _)| *op == sink)
        .expect("sink snapshot present");
    let mut r = SnapshotReader::new(&snap.data);
    SinkVerdict {
        count: r.get_u64().unwrap(),
        max_v: r.get_i64().unwrap(),
        sum: r.get_i64().unwrap(),
    }
}
