//! Property-based tests over the core invariants (proptest).

use ms_core::codec::{SnapshotReader, SnapshotWriter};
use ms_core::ids::{EpochId, OperatorId};
use ms_core::metrics::TimeSeries;
use ms_core::state::{estimate, StateSize};
use ms_core::time::{SimDuration, SimTime};
use ms_core::tuple::Tuple;
use ms_core::value::Value;
use ms_sim::{DetRng, EventQueue};
use ms_storage::{BwDevice, InputPreservationBuffer, SourceLog};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(Value::Str),
        (
            0u64..1 << 30,
            proptest::collection::vec(-100.0f32..100.0, 0..6)
        )
            .prop_map(|(logical_bytes, digest)| Value::Blob {
                logical_bytes,
                digest,
            }),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (
        0u32..64,
        any::<u64>(),
        0u64..1 << 40,
        proptest::collection::vec(arb_value(), 0..4),
    )
        .prop_map(|(p, seq, t, fields)| {
            Tuple::new(OperatorId(p), seq, SimTime::from_micros(t), fields)
        })
}

proptest! {
    /// Codec: every value round-trips bit-exactly.
    #[test]
    fn codec_value_roundtrip(v in arb_value()) {
        let mut w = SnapshotWriter::new();
        w.put_value(&v);
        let buf = w.finish();
        let mut r = SnapshotReader::new(&buf);
        prop_assert_eq!(r.get_value().unwrap(), v);
        prop_assert!(r.is_exhausted());
    }

    /// Codec: every tuple round-trips bit-exactly.
    #[test]
    fn codec_tuple_roundtrip(t in arb_tuple()) {
        let mut w = SnapshotWriter::new();
        w.put_tuple(&t);
        let buf = w.finish();
        let mut r = SnapshotReader::new(&buf);
        prop_assert_eq!(r.get_tuple().unwrap(), t);
    }

    /// Codec: truncating an encoded buffer never panics — it errors.
    #[test]
    fn codec_truncation_is_an_error(t in arb_tuple(), cut in 0usize..64) {
        let mut w = SnapshotWriter::new();
        w.put_tuple(&t);
        let buf = w.finish();
        if cut < buf.len() {
            let mut r = SnapshotReader::new(&buf[..buf.len() - cut - 1]);
            prop_assert!(r.get_tuple().is_err());
        }
    }

    /// Event queue: pops are globally time-ordered and FIFO within a
    /// timestamp.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q: EventQueue<(u64, usize)> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_micros(), t);
            if let Some((lt, li)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(i > li, "FIFO among equal timestamps");
                }
            }
            last = Some((at, i));
        }
    }

    /// DetRng forks: label-disjoint streams never coincide on a prefix.
    #[test]
    fn rng_forks_differ(seed in any::<u64>()) {
        let root = DetRng::new(seed);
        let a: Vec<u64> = {
            let mut r = root.fork("a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = root.fork("b");
            (0..8).map(|_| r.next_u64()).collect()
        };
        prop_assert_ne!(a, b);
    }

    /// Bandwidth devices never travel back in time and conserve work.
    #[test]
    fn device_is_monotone(sizes in proptest::collection::vec(1u64..10_000_000, 1..50)) {
        let mut d = BwDevice::new(10_000_000, SimDuration::from_millis(1));
        let mut last_done = SimTime::ZERO;
        for (i, &s) in sizes.iter().enumerate() {
            let now = SimTime::from_millis(i as u64 * 3);
            let (start, done) = d.access(now, s);
            prop_assert!(start >= now);
            prop_assert!(start >= last_done.min(start));
            prop_assert!(done > start);
            prop_assert!(done >= last_done, "FIFO completion order");
            last_done = done;
        }
        prop_assert_eq!(d.bytes_total(), sizes.iter().sum::<u64>());
    }

    /// Source log: replay from a marked epoch returns exactly the
    /// tuples at or after the boundary, trim never loses them, and a
    /// recovery truncation restores monotone appends.
    #[test]
    fn source_log_boundary_invariants(
        n in 1usize..200,
        mark_at in 0usize..200,
        trim in any::<bool>(),
    ) {
        let mark_at = mark_at.min(n);
        let mut log = SourceLog::new();
        for seq in 0..mark_at as u64 {
            log.append(Tuple::new(OperatorId(0), seq, SimTime::ZERO, vec![]));
        }
        log.mark_epoch(EpochId(1), mark_at as u64);
        for seq in mark_at as u64..n as u64 {
            log.append(Tuple::new(OperatorId(0), seq, SimTime::ZERO, vec![]));
        }
        if trim {
            log.trim_to(EpochId(1));
        }
        let replay = log.replay_from(EpochId(1));
        prop_assert_eq!(replay.len(), n - mark_at);
        for (i, t) in replay.iter().enumerate() {
            prop_assert_eq!(t.seq, (mark_at + i) as u64);
        }
        // Recovery: truncate, then re-append the regenerated suffix.
        log.truncate_to_mark(EpochId(1));
        for seq in mark_at as u64..n as u64 {
            log.append(Tuple::new(OperatorId(0), seq, SimTime::ZERO, vec![]));
        }
        prop_assert_eq!(log.replay_from(EpochId(1)).len(), n - mark_at);
    }

    /// Preservation buffer: nothing is lost across spills; a resend
    /// from any watermark returns exactly the retained suffix.
    #[test]
    fn preservation_buffer_never_loses(
        sizes in proptest::collection::vec(1u64..300_000, 1..100),
        from in 0u64..100,
        trim_to in 0u64..100,
    ) {
        let mut b = InputPreservationBuffer::new(500_000);
        for (seq, &s) in sizes.iter().enumerate() {
            b.push(Tuple::new(
                OperatorId(0),
                seq as u64,
                SimTime::ZERO,
                vec![Value::blob(s)],
            ));
        }
        let trim_to = trim_to.min(sizes.len() as u64);
        b.trim_below(trim_to);
        let from = from.min(sizes.len() as u64).max(trim_to);
        let (tuples, _) = b.resend_from(from);
        prop_assert_eq!(tuples.len() as u64, sizes.len() as u64 - from);
        for (i, t) in tuples.iter().enumerate() {
            prop_assert_eq!(t.seq, from + i as u64);
        }
    }

    /// The sampling estimator is exact for uniform sizes and bounded
    /// by the extremes for mixed sizes.
    #[test]
    fn sampled_estimator_bounds(sizes in proptest::collection::vec(1u64..1_000_000, 1..100)) {
        let items: Vec<Value> = sizes.iter().map(|&s| Value::blob(s)).collect();
        let est = estimate::sampled_default(&items);
        let lo = *sizes.iter().min().unwrap() * sizes.len() as u64;
        let hi = *sizes.iter().max().unwrap() * sizes.len() as u64;
        prop_assert!(est >= lo && est <= hi, "estimate {est} outside [{lo}, {hi}]");
        let exact: u64 = items.iter().map(StateSize::state_size).sum();
        let _ = exact; // exactness only for uniform sizes:
        if sizes.iter().all(|&s| s == sizes[0]) {
            prop_assert_eq!(est, exact);
        }
    }

    /// Linear interpolation stays within the series' value envelope.
    #[test]
    fn interpolation_is_bounded(
        points in proptest::collection::vec((0u64..10_000, 0.0f64..1e9), 2..50),
        at in 0u64..10_000,
    ) {
        let mut sorted = points;
        sorted.sort_by_key(|&(t, _)| t);
        let mut ts = TimeSeries::new();
        for (t, v) in &sorted {
            ts.push(SimTime::from_micros(*t), *v);
        }
        let v = ts.interpolate(SimTime::from_micros(at));
        let lo = sorted.iter().map(|&(_, v)| v).fold(f64::MAX, f64::min);
        let hi = sorted.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// K-means assignments always index a valid centroid and inertia
    /// is finite and non-negative.
    #[test]
    fn kmeans_assignment_validity(
        pts in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 2..4usize),
            0..60
        ),
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        // Uniform dimensionality.
        let dim = pts.first().map(Vec::len).unwrap_or(2);
        let pts: Vec<Vec<f64>> = pts.into_iter().map(|mut p| {
            p.resize(dim, 0.0);
            p
        }).collect();
        let r = ms_apps::kmeans::kmeans(&pts, k, 10, &mut DetRng::new(seed));
        prop_assert_eq!(r.assignments.len(), pts.len());
        for &a in &r.assignments {
            prop_assert!(a < r.centroids.len().max(1));
        }
        prop_assert!(r.inertia.is_finite());
        prop_assert!(r.inertia >= 0.0);
    }

    /// Zero-copy payloads: cloning a tuple (what the engine does when
    /// preserving, retaining or replaying it) shares the payload
    /// allocation; fanning it out through an operator context shares
    /// one allocation across every port; and any payload *rebuilt*
    /// from the values (what a mutating HAU would have to do) never
    /// aliases the original — there is no route to shared mutable
    /// state across HAUs.
    #[test]
    fn fields_share_on_clone_never_on_rebuild(
        t in arb_tuple(),
        fanout in 1usize..6,
        seed in any::<u64>(),
    ) {
        use ms_core::operator::OperatorContext;
        use ms_core::tuple::Fields;

        // Engine-style clone: a refcount bump, same allocation.
        let kept = t.clone();
        prop_assert!(Fields::shares_allocation(&kept.fields, &t.fields));

        // Fan-out across ports (EmitCtx is the DES engine's context):
        // every port's emission shares the one input allocation.
        let mut rng = DetRng::new(seed);
        let mut ctx = ms_runtime::EmitCtx {
            now: SimTime::ZERO,
            op: OperatorId(0),
            fanout,
            emissions: Vec::new(),
            rng: &mut rng,
        };
        ctx.emit_all_fields(t.fields.clone());
        prop_assert_eq!(ctx.emissions.len(), fanout);
        for (_, f) in &ctx.emissions {
            prop_assert!(Fields::shares_allocation(f, &t.fields));
        }

        // Rebuilding the payload from its values (the only way to
        // obtain mutable field storage) detaches from the original.
        let rebuilt = Fields::from(t.fields.to_vec());
        prop_assert!(!Fields::shares_allocation(&rebuilt, &t.fields));
        prop_assert_eq!(&rebuilt, &t.fields);
    }

    /// The codec's encoded-size accounting is exact for every value and
    /// tuple shape — what snapshot pre-sizing relies on.
    #[test]
    fn encoded_size_matches_actual_encoding(t in arb_tuple()) {
        for v in t.fields.iter() {
            let mut w = SnapshotWriter::new();
            w.put_value(v);
            prop_assert_eq!(SnapshotWriter::encoded_value_bytes(v), w.finish().len());
        }
        let mut w = SnapshotWriter::new();
        w.put_tuple(&t);
        prop_assert_eq!(SnapshotWriter::encoded_tuple_bytes(&t), w.finish().len());
    }
}
