//! `ingest_swarm`: gateway ingestion throughput and ack latency under
//! producer swarms.
//!
//! Drives one `ms-gate` gateway — a single event-loop thread — with
//! 8 / 64 / 256 concurrent stop-and-wait TCP producers, per-key
//! pre-aggregation on and off, and WAL group commit on (production)
//! vs off (one append per tuple, the pre-batching baseline). Every
//! batch's events cycle over the same 8 hot keys (the skewed-ingest
//! regime the gateway is built for), so pre-aggregation folds each
//! 32-event batch to 8 engine-edge tuples. Reported per cell:
//! accepted-event throughput, engine-edge tuple count and the
//! resulting reduction factor, and the producer-observed ack latency
//! (send → `Accepted`, which includes the WAL append the ack waits
//! on). Ends with the JSON snapshot recorded under the `ingest_swarm`
//! key of `BENCH_sweep.json`.
//!
//! `ingest_swarm --smoke` runs one short cell (32 producers, group
//! commit on) and fails unless batched throughput is nonzero — the CI
//! batched-hot-path smoke check.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use ms_core::codec::{frame, FrameDecoder};
use ms_core::gate::{GateConfig, GateMsg};
use ms_core::ids::OperatorId;
use ms_gate::{run_gate, GateMeter, GateWiring};
use ms_live::{HostMsg, LiveStorage, OutputRoute, Persister};

/// Total batches per cell, split evenly over the producers so every
/// cell admits the same event volume regardless of swarm width.
const TOTAL_BATCHES: u64 = 4096;
const EVENTS_PER_BATCH: u64 = 32;
/// The skew: every batch cycles over the same 8 hot keys, so per-key
/// pre-aggregation folds 32 events to 8 tuples (4x) per batch.
const HOT_KEYS: u64 = 8;

fn send(sock: &mut TcpStream, msg: &GateMsg) {
    sock.write_all(&frame(&msg.encode())).unwrap();
}

fn recv(sock: &mut TcpStream, dec: &mut FrameDecoder) -> GateMsg {
    loop {
        if let Some(p) = dec.next_frame().unwrap() {
            return GateMsg::decode(&p).unwrap();
        }
        let mut buf = [0u8; 4096];
        let n = sock.read(&mut buf).unwrap();
        assert!(n > 0, "gateway closed mid-conversation");
        dec.feed(&buf[..n]);
    }
}

/// One producer: `batches` stop-and-wait batches, then `Fin`. Returns
/// the per-batch ack latencies in microseconds. Connection setup and
/// `Hello` happen before the start barrier: a 256-wide simultaneous
/// connect burst can overflow the listen backlog and eat a ~1s SYN
/// retransmit, which is connection-setup noise, not ingest throughput.
fn run_producer(addr: &str, producer: u64, batches: u64, go: &Barrier) -> Vec<u64> {
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_nodelay(true).unwrap();
    let mut dec = FrameDecoder::new();
    send(&mut sock, &GateMsg::Hello { producer });
    go.wait();
    let mut lat = Vec::with_capacity(batches as usize);
    for b in 1..=batches {
        let msg = GateMsg::Batch {
            batch: b,
            events: (0..EVENTS_PER_BATCH)
                .map(|j| (j % HOT_KEYS, (producer + b + j) as i64))
                .collect(),
        };
        let t0 = Instant::now();
        send(&mut sock, &msg);
        loop {
            match recv(&mut sock, &mut dec) {
                GateMsg::Accepted { batch } if batch == b => break,
                GateMsg::Busy { retry_after_ms, .. } => {
                    // Unbounded budget: not expected, but honor it.
                    thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                    send(&mut sock, &msg);
                }
                other => panic!("producer {producer}: unexpected reply {other:?}"),
            }
        }
        lat.push(t0.elapsed().as_micros() as u64);
    }
    send(&mut sock, &GateMsg::Fin { producer });
    assert_eq!(recv(&mut sock, &mut dec), GateMsg::FinOk);
    lat
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Cell {
    producers: u64,
    preagg: bool,
    group_commit: bool,
    events: u64,
    edge_tuples: u64,
    wall_secs: f64,
    events_per_sec: f64,
    reduction: f64,
    ack_p50_us: u64,
    ack_p99_us: u64,
}

fn run_cell(producers: u64, preagg: bool, group_commit: bool, total_batches: u64) -> Cell {
    let dir = std::env::temp_dir().join(format!(
        "ms_ingest_swarm_{producers}_{preagg}_{group_commit}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = Arc::new(LiveStorage::new(1));
    let persister = Persister::spawn(store.clone());
    let persist = persister.sender();
    let (cmd_tx, cmd_rx) = unbounded();
    let (tx, rx) = unbounded::<HostMsg>();
    let meter = Arc::new(GateMeter::new());
    let addr_file = dir.join("gate.addr");
    let wiring = GateWiring {
        op_id: OperatorId(0),
        cfg: GateConfig {
            preagg,
            expected_producers: producers as u32,
            retry_after_ms: 1,
            ..GateConfig::default()
        },
        outputs: vec![OutputRoute::single(tx)],
        cmd: cmd_rx,
        listen: "127.0.0.1:0".into(),
        addr_file: Some(addr_file.clone()),
        restored: None,
        restored_seq: 0,
        replay: Vec::new(),
        meter: meter.clone(),
        telemetry: None,
        group_commit,
    };
    let store2 = store.clone();
    let gate = thread::spawn(move || run_gate(wiring, store2, persist));
    // Engine-edge drain: counts every tuple the gateway emits
    // (batches count as their tuples).
    let drain = thread::spawn(move || {
        let mut n = 0u64;
        loop {
            match rx.recv() {
                Ok(HostMsg::Data(_)) => n += 1,
                Ok(HostMsg::DataBatch(b)) => n += b.len() as u64,
                Ok(HostMsg::Token(_)) => {}
                Ok(HostMsg::Eos) | Err(_) => return n,
            }
        }
    });
    let addr = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match std::fs::read_to_string(&addr_file) {
                Ok(s) if !s.is_empty() => break s,
                _ => {
                    assert!(Instant::now() < deadline, "gateway never published addr");
                    thread::sleep(Duration::from_millis(5));
                }
            }
        }
    };

    let batches_per_producer = total_batches / producers;
    // All producers connect and say Hello first; the wall clock starts
    // when the whole swarm is ready to send.
    let go = Arc::new(Barrier::new(producers as usize + 1));
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let addr = addr.clone();
            let go = go.clone();
            thread::spawn(move || run_producer(&addr, p, batches_per_producer, &go))
        })
        .collect();
    go.wait();
    let start = Instant::now();
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        lat.extend(h.join().expect("producer panicked"));
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let edge_tuples = drain.join().unwrap();
    let exit = gate.join().unwrap();
    assert!(exit.error.is_none(), "gateway error: {:?}", exit.error);
    drop(cmd_tx);
    let _ = std::fs::remove_dir_all(&dir);

    lat.sort_unstable();
    let s = meter.sample();
    Cell {
        producers,
        preagg,
        group_commit,
        events: s.accepted_events,
        edge_tuples,
        wall_secs,
        events_per_sec: s.accepted_events as f64 / wall_secs,
        reduction: s.accepted_events as f64 / edge_tuples.max(1) as f64,
        ack_p50_us: pct(&lat, 0.50),
        ack_p99_us: pct(&lat, 0.99),
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        // CI smoke: one short batched cell must move data. Group
        // commit on — this is the production ingest path.
        let c = run_cell(32, true, true, 512);
        println!(
            "ingest_swarm --smoke: 32 producers group_commit=true  {} events  {:.0} ev/s",
            c.events, c.events_per_sec
        );
        assert!(
            c.events > 0 && c.events_per_sec > 0.0,
            "batched ingest path moved no data"
        );
        return;
    }
    println!(
        "ingest_swarm: one gateway event-loop thread, {TOTAL_BATCHES} batches x \
         {EVENTS_PER_BATCH} events over {HOT_KEYS} hot keys per cell"
    );
    // Untimed warmup: the first cell in a fresh process otherwise pays
    // thread-spawn, page-fault, and allocator warmup that the later
    // cells don't, skewing the cross-cell comparison.
    let _ = run_cell(64, true, true, 512);
    let mut cells = Vec::new();
    for &producers in &[8u64, 64, 256] {
        // Production shape (group commit on) with pre-agg on and off,
        // plus the per-tuple-append baseline at pre-agg on — the
        // batched-vs-per-tuple comparison at each swarm width.
        for &(preagg, group_commit) in &[(true, true), (false, true), (true, false)] {
            // Best of 3: on a small shared box the noise is one-sided
            // (the scheduler only ever slows a cell down), so the
            // fastest repetition is the best estimate of the true cost.
            let c = (0..3)
                .map(|_| run_cell(producers, preagg, group_commit, TOTAL_BATCHES))
                .max_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec))
                .unwrap();
            println!(
                "  {:>4} producers preagg={:<5} group_commit={:<5} {:>7} events in {:>6.3}s  \
                 {:>9.0} ev/s  edge tuples {:>7} (x{:.2} reduction)  ack p50 {:>4}us p99 {:>5}us",
                c.producers,
                c.preagg,
                c.group_commit,
                c.events,
                c.wall_secs,
                c.events_per_sec,
                c.edge_tuples,
                c.reduction,
                c.ack_p50_us,
                c.ack_p99_us
            );
            cells.push(c);
        }
    }
    // The snapshot recorded under BENCH_sweep.json's "ingest_swarm"
    // key (same convention as "edge_scaling": paste the block below).
    println!("\n\"ingest_swarm\": {{");
    println!(
        " \"note\": \"one gateway event-loop thread; {TOTAL_BATCHES} stop-and-wait batches x \
         {EVENTS_PER_BATCH} events over {HOT_KEYS} hot keys per cell; ack latency is \
         producer-observed send->Accepted incl. the WAL append; group_commit=false is the \
         per-tuple-append baseline; best of 3 repetitions per cell; recorded snapshot\","
    );
    println!(" \"total_batches\": {TOTAL_BATCHES},");
    println!(" \"events_per_batch\": {EVENTS_PER_BATCH},");
    println!(" \"hot_keys\": {HOT_KEYS},");
    println!(" \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        println!(
            "  {{ \"producers\": {}, \"preagg\": {}, \"group_commit\": {}, \"events\": {}, \
             \"edge_tuples\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \
             \"reduction\": {:.2}, \"ack_p50_us\": {}, \"ack_p99_us\": {} }}{}",
            c.producers,
            c.preagg,
            c.group_commit,
            c.events,
            c.edge_tuples,
            c.wall_secs,
            c.events_per_sec,
            c.reduction,
            c.ack_p50_us,
            c.ack_p99_us,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    println!(" ]\n}}");
}
