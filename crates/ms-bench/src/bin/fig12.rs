//! Fig. 12 — normalized throughput vs. number of checkpoints.
//!
//! For each application and scheme, runs the 10-minute window with
//! 0..=8 checkpoints and prints throughput normalized to the baseline
//! at zero checkpoints (exactly the paper's normalization). The 108
//! cells run concurrently on the sweep worker pool (`--threads` /
//! `MS_BENCH_THREADS`); per-cell wall-clock lands in
//! `BENCH_sweep.json`.

use std::path::Path;

use ms_bench::paper::{
    FIG12_BCP_BASELINE, FIG12_BCP_MSSRC, FIG12_TMI_BASELINE, FIG12_TMI_MSSRC, FIG12_ZERO_CKPT_GAIN,
};
use ms_bench::runner::{cell, cells_for, sweep_all, write_sweep_json, APPS};
use ms_bench::BenchArgs;
use ms_core::config::SchemeKind;

fn main() {
    let args = BenchArgs::parse();
    let (seed, threads) = (args.seed(), args.threads());
    let ns: Vec<u32> = (0..=8).collect();
    println!("Fig. 12: normalized throughput vs checkpoints in 10 minutes\n");

    let t0 = std::time::Instant::now();
    let timed = sweep_all(&APPS, &ns, seed, threads);
    let total = t0.elapsed().as_secs_f64();
    println!(
        "({} cells on {threads} thread(s) in {total:.1}s wall)\n",
        timed.len()
    );

    for app in APPS {
        let cells = cells_for(&timed, app);
        let base0 = cell(&cells, SchemeKind::Baseline, 0)
            .expect("baseline cell")
            .throughput;
        println!("--- {app} (normalized to baseline @ 0 checkpoints) ---");
        print!("{:<14}", "scheme \\ n");
        for n in &ns {
            print!(" {n:>6}");
        }
        println!();
        for scheme in SchemeKind::ALL {
            print!("{:<14}", scheme.label());
            for n in &ns {
                let c = cell(&cells, scheme, *n).expect("cell");
                print!(" {:>6.2}", c.throughput / base0);
            }
            println!();
        }
        // Paper reference rows where digitized series exist.
        match app {
            "TMI" => {
                print_paper_row("paper Baseline", &FIG12_TMI_BASELINE);
                print_paper_row("paper MS-src", &FIG12_TMI_MSSRC);
            }
            "BCP" => {
                print_paper_row("paper Baseline", &FIG12_BCP_BASELINE);
                print_paper_row("paper MS-src", &FIG12_BCP_MSSRC);
            }
            _ => println!(
                "(paper SignalGuru: baseline collapses toward ~0.2 at high n; \
                 MS-src follows; MS-src+ap/+aa stay ≈1.1-1.5)"
            ),
        }
        let gain = cell(&cells, SchemeKind::MsSrc, 0).unwrap().throughput / base0;
        let paper_gain = FIG12_ZERO_CKPT_GAIN
            .iter()
            .find(|(a, _)| *a == app)
            .unwrap()
            .1;
        println!(
            "source preservation gain @0 ckpts: measured {gain:.2}x, paper {paper_gain:.2}x\n"
        );
    }

    match write_sweep_json(Path::new("BENCH_sweep.json"), threads, total, &timed) {
        Ok(()) => println!("wrote BENCH_sweep.json"),
        Err(e) => eprintln!("could not write BENCH_sweep.json: {e}"),
    }
}

fn print_paper_row(label: &str, row: &[f64; 9]) {
    print!("{label:<14}");
    for v in row {
        print!(" {v:>6.2}");
    }
    println!();
}
