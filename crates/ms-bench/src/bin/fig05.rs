//! Fig. 5 — fluctuation in state size.
//!
//! Runs each application with checkpointing disabled and dumps the
//! aggregate state-size trace: TMI for N = 1, 5, 10 over 20 minutes,
//! BCP over 20 minutes, SignalGuru over 14 minutes. Prints the trace
//! (downsampled), the local minima count, and the min/avg/max envelope
//! against the paper's.

use ms_apps::{Bcp, SignalGuru, Tmi};
use ms_bench::paper::FIG5_STATE_MB;
use ms_core::config::SchemeKind;
use ms_core::time::SimDuration;
use ms_runtime::{Engine, EngineConfig, RunReport};

fn run_trace(app_label: &str, minutes: u64, build: impl FnOnce() -> RunReport) {
    let report = build();
    let trace = &report.state_trace;
    println!("--- {app_label} ({minutes} minutes) ---");
    // Downsampled series (one point per ~30 s) for plotting.
    let points = trace.points();
    let step = (points.len() / (minutes as usize * 2)).max(1);
    print!("trace MB:");
    for (i, (t, v)) in points.iter().enumerate() {
        if i % step == 0 {
            print!(" {:.0}:{:.0}", t.as_secs_f64(), v / 1e6);
        }
    }
    println!();
    let minima = trace.local_minima().len();
    println!(
        "min {:.0} MB | avg {:.0} MB | max {:.0} MB | {} local minima",
        trace.min() / 1e6,
        trace.mean() / 1e6,
        trace.max() / 1e6,
        minima
    );
}

fn cfg(minutes: u64) -> EngineConfig {
    EngineConfig {
        scheme: SchemeKind::MsSrcAp,
        ckpt: ms_core::config::CheckpointConfig::n_in_window(
            0,
            SimDuration::from_secs(600),
        ),
        warmup: SimDuration::from_secs(0),
        measure: SimDuration::from_secs(minutes * 60),
        ..EngineConfig::default()
    }
}

fn main() {
    println!("Fig. 5: state-size fluctuation (checkpointing disabled)\n");
    for n in [1u64, 5, 10] {
        run_trace(&format!("TMI N={n}"), 20, || {
            Engine::new(Tmi::with_window_minutes(n), cfg(20))
                .expect("valid app")
                .run()
        });
    }
    run_trace("BCP", 20, || {
        Engine::new(Bcp::default_app(), cfg(20)).expect("valid app").run()
    });
    run_trace("SignalGuru", 14, || {
        Engine::new(SignalGuru::default_app(), cfg(14))
            .expect("valid app")
            .run()
    });

    println!("\npaper envelopes (Fig. 5):");
    for (app, [min, avg, max]) in FIG5_STATE_MB {
        println!("  {app:<12} min ~{min:.0} MB, avg ~{avg:.0} MB, max ~{max:.0} MB");
    }
}
