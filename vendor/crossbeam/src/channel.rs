//! MPMC channels (stand-in for `crossbeam::channel`).
//!
//! Built on `std::sync::{Mutex, Condvar}`. Supports the subset the
//! workspace uses: `bounded`/`unbounded` construction, blocking
//! `send`/`recv`, `try_recv`, and [`Select`] over multiple receivers.
//! `bounded(0)` (rendezvous) is approximated as capacity 1.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// Channel currently has no messages.
    Empty,
    /// Channel is empty and all senders are gone.
    Disconnected,
}

struct Waker {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl Waker {
    fn new() -> Self {
        Waker {
            ready: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wake(&self) {
        *self.ready.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Waits until woken; bounded by a short timeout so a missed wakeup
    /// only delays the caller's readiness re-scan, never deadlocks it.
    fn wait(&self) {
        let mut ready = self.ready.lock().unwrap();
        while !*ready {
            let (guard, timeout) = self
                .cv
                .wait_timeout(ready, Duration::from_millis(10))
                .unwrap();
            ready = guard;
            if timeout.timed_out() {
                break;
            }
        }
        *ready = false;
    }
}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
    wakers: Vec<Arc<Waker>>,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn wake_selects(inner: &mut Inner<T>) {
        for w in &inner.wakers {
            w.wake();
        }
    }
}

/// Sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel holding at most `cap` messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_channel(Some(cap.max(1)))
}

/// Creates a channel with unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
            wakers: Vec::new(),
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued, or errors if all receivers
    /// are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(value);
                Shared::wake_selects(&mut inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).unwrap();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            Shared::wake_selects(&mut inner);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or errors once the channel is
    /// empty and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap();
        }
    }

    /// Takes a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        match inner.queue.pop_front() {
            Some(v) => {
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    /// True if no messages are currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn ready(&self) -> bool {
        let inner = self.shared.inner.lock().unwrap();
        !inner.queue.is_empty() || inner.senders == 0
    }

    fn register(&self, w: &Arc<Waker>) {
        self.shared.inner.lock().unwrap().wakers.push(w.clone());
    }

    fn unregister(&self, w: &Arc<Waker>) {
        self.shared
            .inner
            .lock()
            .unwrap()
            .wakers
            .retain(|x| !Arc::ptr_eq(x, w));
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

/// Object-safe view of a receiver used by [`Select`]; a channel counts
/// as ready when it has a message or is disconnected.
trait Selectable {
    fn ready(&self) -> bool;
    fn register(&self, w: &Arc<Waker>);
    fn unregister(&self, w: &Arc<Waker>);
}

impl<T> Selectable for Receiver<T> {
    fn ready(&self) -> bool {
        Receiver::ready(self)
    }
    fn register(&self, w: &Arc<Waker>) {
        Receiver::register(self, w)
    }
    fn unregister(&self, w: &Arc<Waker>) {
        Receiver::unregister(self, w)
    }
}

/// Waits over multiple receive operations (stand-in for
/// `crossbeam::channel::Select`).
pub struct Select<'a> {
    handles: Vec<&'a dyn Selectable>,
}

impl<'a> Select<'a> {
    /// Creates an empty selector.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Select {
            handles: Vec::new(),
        }
    }

    /// Adds a receive operation; returns its operation index.
    pub fn recv<T>(&mut self, rx: &'a Receiver<T>) -> usize {
        self.handles.push(rx);
        self.handles.len() - 1
    }

    /// Blocks until one registered operation is ready.
    pub fn select(&mut self) -> SelectedOperation {
        assert!(!self.handles.is_empty(), "select on empty Select");
        let waker = Arc::new(Waker::new());
        loop {
            if let Some(i) = self.handles.iter().position(|h| h.ready()) {
                return SelectedOperation { index: i };
            }
            for h in &self.handles {
                h.register(&waker);
            }
            // Re-scan after registering so a message enqueued between the
            // first scan and registration cannot be missed.
            let ready = self.handles.iter().position(|h| h.ready());
            if ready.is_none() {
                waker.wait();
            }
            for h in &self.handles {
                h.unregister(&waker);
            }
            if let Some(i) = ready {
                return SelectedOperation { index: i };
            }
        }
    }
}

/// A ready operation returned by [`Select::select`].
pub struct SelectedOperation {
    index: usize,
}

impl SelectedOperation {
    /// Index of the ready operation in registration order.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Completes the operation by receiving from `rx`.
    pub fn recv<T>(self, rx: &Receiver<T>) -> Result<T, RecvError> {
        rx.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_and_unblocks() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }

    #[test]
    fn select_picks_ready_channel() {
        let (tx1, rx1) = unbounded::<u32>();
        let (tx2, rx2) = unbounded::<u32>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx2.send(7).unwrap();
            drop(tx1);
        });
        let mut sel = Select::new();
        sel.recv(&rx1);
        sel.recv(&rx2);
        let oper = sel.select();
        match oper.index() {
            0 => assert_eq!(oper.recv(&rx1), Err(RecvError)),
            1 => assert_eq!(oper.recv(&rx2), Ok(7)),
            _ => unreachable!(),
        }
        h.join().unwrap();
    }
}
