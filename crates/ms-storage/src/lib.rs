//! Storage substrate: shared storage, local disks, checkpoint store
//! and tuple-preservation buffers.
//!
//! The paper assumes "a shared storage system in the data center where
//! computing nodes can share data … implemented by a central storage
//! system or a distributed storage system like GFS" (§III), plus a
//! local disk per node used for optional double-saving of checkpoints
//! and for the baseline's input-preservation spill (50 MB in-memory
//! buffer, dumped to disk when full, §II-B3).
//!
//! Like `ms-net`, this crate is a deterministic cost model plus data
//! plane: devices compute *when* an access completes; the stores keep
//! the actual bytes so recovery restores real state.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod device;
pub mod preserve;

pub use checkpoint::{CheckpointStore, HauCheckpoint};
pub use device::BwDevice;
pub use preserve::{InputPreservationBuffer, SourceLog, SpillAction};

use ms_core::time::SimDuration;

/// Storage configuration (bandwidths in bytes/second).
#[derive(Clone, Copy, Debug)]
pub struct StorageConfig {
    /// Aggregate effective *write* bandwidth of the shared storage
    /// service as observed by the whole cluster. The paper's EC2
    /// measurements imply ≈7.5 MB/s effective under 55-way contention
    /// (Fig. 14: e.g. SignalGuru's ~1 GB state takes ~133 s of disk
    /// I/O); this default reproduces that regime.
    pub shared_write_bw: u64,
    /// Aggregate effective *read* bandwidth of the shared storage
    /// service (recovery path). Fig. 16 implies ≈25 MB/s.
    pub shared_read_bw: u64,
    /// Per-node local disk bandwidth (spills, double-saves).
    pub local_disk_bw: u64,
    /// Fixed per-access overhead (request setup, seek, metadata).
    pub access_overhead: SimDuration,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            shared_write_bw: 7_500_000,
            shared_read_bw: 25_000_000,
            local_disk_bw: 60_000_000,
            access_overhead: SimDuration::from_millis(5),
        }
    }
}
