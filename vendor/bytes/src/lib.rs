//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the surface `ms-core::codec` uses: little-endian
//! `Buf` reads over `&[u8]`, `BufMut` writes into `Vec<u8>`, and a
//! minimal owned [`Bytes`] returned by `copy_to_bytes`.

#![warn(missing_docs)]

/// Minimal owned byte container (stand-in for `bytes::Bytes`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read side of a byte cursor (stand-in for `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Copies `len` bytes out and advances.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    /// Reads a `u8` and advances.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `i64` and advances.
    fn get_i64_le(&mut self) -> i64;
    /// Reads a little-endian `f32` and advances.
    fn get_f32_le(&mut self) -> f32;
    /// Reads a little-endian `f64` and advances.
    fn get_f64_le(&mut self) -> f64;
}

macro_rules! slice_get {
    ($self:ident, $ty:ty) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let mut raw = [0u8; N];
        raw.copy_from_slice(&$self[..N]);
        *$self = &$self[N..];
        <$ty>::from_le_bytes(raw)
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes(self[..len].to_vec());
        *self = &self[len..];
        out
    }
    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }
    fn get_u32_le(&mut self) -> u32 {
        slice_get!(self, u32)
    }
    fn get_u64_le(&mut self) -> u64 {
        slice_get!(self, u64)
    }
    fn get_i64_le(&mut self) -> i64 {
        slice_get!(self, i64)
    }
    fn get_f32_le(&mut self) -> f32 {
        slice_get!(self, f32)
    }
    fn get_f64_le(&mut self) -> f64 {
        slice_get!(self, f64)
    }
}

/// Write side of a growable buffer (stand-in for `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}
