//! Per-HAU runtime state.

use std::collections::{HashMap, VecDeque};

use ms_core::ids::{EpochId, HauId, OperatorId, PortId};
use ms_core::operator::{Operator, OperatorContext};
use ms_core::time::SimTime;
use ms_core::tuple::{Fields, StreamItem, Tuple};
use ms_sim::DetRng;
use ms_storage::InputPreservationBuffer;

/// One input channel of an HAU (from one upstream neighbour).
#[derive(Debug, Default)]
pub struct InputChan {
    /// Queued items, in arrival order.
    pub queue: VecDeque<StreamItem>,
    /// Logical bytes of queued data tuples (channel-cap accounting).
    pub bytes: u64,
    /// True while a token has been taken from this channel's head and
    /// the HAU is waiting for tokens on its other inputs — "the HAU
    /// stops processing tuples from [that neighbour]" (Fig. 6).
    pub blocked: bool,
    /// Highest tuple sequence processed, per producer operator
    /// (duplicate suppression across baseline recovery resends).
    pub watermarks: HashMap<OperatorId, u64>,
}

impl InputChan {
    /// True if a data tuple with this identity was already processed.
    /// (Watermarks store `last_seq + 1`.)
    pub fn is_duplicate(&self, t: &Tuple) -> bool {
        self.watermarks.get(&t.producer).is_some_and(|&w| t.seq < w)
    }

    /// Records a processed tuple.
    pub fn advance(&mut self, t: &Tuple) {
        let w = self.watermarks.entry(t.producer).or_insert(0);
        // Sequence 0 needs the +1 offset to distinguish "seen seq 0"
        // from "seen nothing": watermark stores seq + 1.
        *w = (*w).max(t.seq + 1);
    }

    /// True if a data tuple was already processed (watermark form:
    /// stored value is `last_seq + 1`).
    pub fn seen(&self, producer: OperatorId, seq: u64) -> bool {
        self.watermarks.get(&producer).is_some_and(|&w| seq < w)
    }
}

/// Checkpoint progress of one HAU within the current epoch.
#[derive(Debug, Default, Clone)]
pub struct CkptProgress {
    /// The epoch being worked on, if any.
    pub epoch: Option<EpochId>,
    /// Which inputs have delivered their token.
    pub token_seen: Vec<bool>,
    /// When the command/token wave reached this HAU.
    pub started_at: SimTime,
    /// When all tokens were collected.
    pub tokens_done_at: SimTime,
    /// When serialization (and fork, for async) finished.
    pub serialized_at: SimTime,
}

impl CkptProgress {
    /// Resets for a new epoch with `n` inputs.
    pub fn begin(&mut self, epoch: EpochId, n_inputs: usize, now: SimTime) {
        self.epoch = Some(epoch);
        self.token_seen = vec![false; n_inputs];
        self.started_at = now;
        self.tokens_done_at = now;
        self.serialized_at = now;
    }

    /// True once every input has delivered its token.
    pub fn all_tokens(&self) -> bool {
        self.token_seen.iter().all(|&b| b)
    }
}

/// The full runtime state of one HAU.
pub struct HauRt {
    /// Id.
    pub id: HauId,
    /// Alive (fail-stop flag).
    pub alive: bool,
    /// Operator instances (usually one), `take()`n during dispatch.
    pub ops: Vec<Option<Box<dyn Operator>>>,
    /// Operator ids matching `ops` by index.
    pub op_ids: Vec<OperatorId>,
    /// Input channels, in input-port order (upstream HAU order).
    pub inputs: Vec<InputChan>,
    /// Round-robin cursor over inputs.
    pub rr: usize,
    /// Busy horizon: the HAU's single worker thread is occupied until
    /// this instant (covers service time and synchronous snapshots).
    pub busy_until: SimTime,
    /// Whether a `ProcessNext` event is already queued.
    pub process_scheduled: bool,
    /// Synchronous snapshot in flight: processing fully suspended.
    pub suspended: bool,
    /// Asynchronous (COW child) snapshot in flight: parent continues
    /// with a copy-on-write overhead on its service times.
    pub async_active: bool,
    /// Retained output tuples per output port (MS-src+ap: local copies
    /// of everything sent between the token command and the fork).
    pub out_retain: Vec<Vec<Tuple>>,
    /// True while retaining.
    pub retaining: bool,
    /// Baseline input-preservation buffers, one per output port.
    pub preserve: Vec<InputPreservationBuffer>,
    /// Next tuple sequence per operator.
    pub next_seq: HashMap<OperatorId, u64>,
    /// Checkpoint progress.
    pub ck: CkptProgress,
    /// Baseline: this HAU's private checkpoint epoch counter.
    pub baseline_epoch: EpochId,
    /// Operator timers that came due while the worker was busy; they
    /// run at the next processing boundary (prevents timer starvation
    /// on saturated HAUs).
    pub pending_timers: Vec<usize>,
    /// Channel backlogs captured when a 1-hop token jumped the input
    /// queue (Fig. 8): `(input index, jumped tuples)`. Folded into the
    /// next snapshot as its `input_backlog`.
    pub backlog_stash: Vec<(usize, Vec<Tuple>)>,
    /// Deterministic per-HAU random stream.
    pub rng: DetRng,
}

impl HauRt {
    /// Total logical state size across constituent operators.
    pub fn state_size(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| op.as_ref().map_or(0, |o| o.state_size()))
            .sum()
    }

    /// True if any unblocked input has queued work or a timer is
    /// waiting to run.
    pub fn has_work(&self) -> bool {
        !self.pending_timers.is_empty()
            || self
                .inputs
                .iter()
                .any(|c| !c.blocked && !c.queue.is_empty())
    }

    /// Picks the next input to serve, round-robin over unblocked,
    /// non-empty channels. Returns the input index.
    pub fn next_input(&mut self) -> Option<usize> {
        let n = self.inputs.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            if !self.inputs[i].blocked && !self.inputs[i].queue.is_empty() {
                self.rr = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }

    /// Tuples currently queued across all inputs.
    pub fn queued_tuples(&self) -> usize {
        self.inputs
            .iter()
            .map(|c| c.queue.iter().filter(|i| !i.is_token()).count())
            .sum()
    }

    /// Logical bytes currently queued across all inputs (backpressure
    /// accounting).
    pub fn queued_bytes(&self) -> u64 {
        self.inputs
            .iter()
            .flat_map(|c| c.queue.iter())
            .filter(|i| !i.is_token())
            .map(|i| i.wire_bytes())
            .sum()
    }
}

/// The [`OperatorContext`] handed to operators during dispatch:
/// collects emissions for the engine to route afterwards.
pub struct EmitCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The operator being executed.
    pub op: OperatorId,
    /// Number of output ports of this operator.
    pub fanout: usize,
    /// Collected `(port, fields)` emissions. Fan-out stores one
    /// [`Fields`] handle per port, all sharing a single allocation.
    pub emissions: Vec<(PortId, Fields)>,
    /// Per-HAU random stream.
    pub rng: &'a mut DetRng,
}

impl OperatorContext for EmitCtx<'_> {
    fn emit_fields(&mut self, port: PortId, fields: Fields) {
        self.emissions.push((port, fields));
    }

    fn emit_all_fields(&mut self, fields: Fields) {
        for p in 0..self.fanout {
            self.emissions.push((PortId(p as u32), fields.clone()));
        }
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn self_id(&self) -> OperatorId {
        self.op
    }

    fn rand_f64(&mut self) -> f64 {
        self.rng.f64()
    }

    fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::tuple::Tuple;

    fn tup(producer: u32, seq: u64) -> Tuple {
        Tuple::new(OperatorId(producer), seq, SimTime::ZERO, vec![])
    }

    #[test]
    fn watermarks_dedupe() {
        let mut c = InputChan::default();
        assert!(!c.is_duplicate(&tup(1, 0)));
        c.advance(&tup(1, 0));
        assert!(c.is_duplicate(&tup(1, 0)));
        assert!(!c.is_duplicate(&tup(1, 1)));
        assert!(!c.is_duplicate(&tup(2, 0)));
        assert!(c.seen(OperatorId(1), 0));
        assert!(!c.seen(OperatorId(1), 1));
    }

    #[test]
    fn ckpt_progress_token_tracking() {
        let mut ck = CkptProgress::default();
        ck.begin(EpochId(1), 2, SimTime::ZERO);
        assert!(!ck.all_tokens());
        ck.token_seen[0] = true;
        assert!(!ck.all_tokens());
        ck.token_seen[1] = true;
        assert!(ck.all_tokens());
    }

    #[test]
    fn zero_input_hau_has_all_tokens_trivially() {
        let mut ck = CkptProgress::default();
        ck.begin(EpochId(1), 0, SimTime::ZERO);
        assert!(ck.all_tokens());
    }
}
