//! The token protocol on real OS threads (`ms-live`): run a pipeline,
//! checkpoint it mid-stream with propagating tokens, "crash", then
//! recover from the checkpoint plus preserved-source replay and show
//! the result matches the uninterrupted run exactly.
//!
//! Run with `cargo run --release -p ms-examples --bin live_pipeline`.

use ms_core::codec::SnapshotReader;
use ms_core::graph::QueryNetwork;
use ms_core::ids::OperatorId;
use ms_core::operator::Operator;
use ms_live::protocol::Doubler;
use ms_live::{CountSource, LiveRuntime, LiveStorage, StableStore, Summer};
use std::sync::Arc;

const N: u64 = 2_000;

fn chain() -> (QueryNetwork, OperatorId, OperatorId, OperatorId) {
    let mut qn = QueryNetwork::new();
    let s = qn.add_operator("source");
    let d = qn.add_operator("doubler");
    let k = qn.add_operator("sink");
    qn.connect(s, d).unwrap();
    qn.connect(d, k).unwrap();
    (qn, s, d, k)
}

fn factory(s: OperatorId, d: OperatorId) -> impl Fn(OperatorId) -> Box<dyn Operator> {
    move |op| -> Box<dyn Operator> {
        if op == s {
            Box::new(CountSource::new(N))
        } else if op == d {
            Box::new(Doubler::default())
        } else {
            Box::new(Summer::default())
        }
    }
}

fn sink_state(
    ops: &std::collections::HashMap<OperatorId, Box<dyn Operator>>,
    k: OperatorId,
) -> (i64, u64) {
    let snap = ops[&k].snapshot();
    let mut r = SnapshotReader::new(&snap.data);
    (r.get_i64().unwrap(), r.get_u64().unwrap())
}

fn main() {
    let (qn, s, d, k) = chain();
    let storage = Arc::new(LiveStorage::new(qn.len()));

    println!("live pipeline: source({N}) -> doubler -> sum, one thread per HAU");
    let mut rt = LiveRuntime::start(&qn, storage.clone(), factory(s, d)).expect("deploy");
    std::thread::sleep(std::time::Duration::from_millis(3));
    let epoch = rt.checkpoint();
    println!("checkpoint {epoch} issued while tuples were in flight");
    let ops = rt.finish().expect("clean drain");
    let (ref_sum, ref_count) = sink_state(&ops, k);
    println!("reference run: sink consumed {ref_count} tuples, sum = {ref_sum}");
    println!(
        "preserved source tuples in stable storage: {}",
        storage.preserved_tuples()
    );

    let mrc = storage.latest_complete().expect("complete checkpoint");
    println!("\n-- crash --\nrecovering every HAU from {mrc} and replaying the source log");
    let rt = LiveRuntime::restore(&qn, storage, mrc, factory(s, d)).expect("recovery deploy");
    let ops = rt.finish().expect("clean drain");
    let (sum, count) = sink_state(&ops, k);
    println!("recovered run: sink consumed {count} tuples, sum = {sum}");
    assert_eq!((sum, count), (ref_sum, ref_count));
    println!("exactly-once verified: no tuple missed, none processed twice");
}
