//! The worker's event-loop core: one I/O thread multiplexing every
//! peer socket, a small fixed apply pool running operator callbacks.
//!
//! The first TCP worker spent threads freely — one egress pump per
//! cross edge, one detached ingress thread per inbound connection, one
//! host thread per operator — which is O(edges + operators) threads
//! per process and collapses once a worker hosts its share of a
//! 55-HAU sharded topology. This module replaces all of that with a
//! thread count that is O(cores):
//!
//! * **One I/O thread** ([`spawn_io`]) owns the data-plane listener
//!   and every data socket, nonblocking, driven by
//!   [`ms_net::ready::poll`]. Inbound frames are batch-decoded and
//!   delivered to the consuming operator's inbox (a
//!   [`WireMsg::TupleBatch`] frame lands as one inbox push for the
//!   whole run); outbound frames queue in per-connection
//!   [`EgressBuf`]s and drain with vectored writes — many frames per
//!   syscall — when the socket reports writable. Idle means *blocked
//!   in poll*, not sleeping in a loop — no socket traffic, no CPU.
//! * **A fixed apply pool** ([`spawn_pool`], 2–4 threads) runs the
//!   protocol state machine ([`InteriorCore`]) of every interior/sink
//!   HAU. A [`HostCell`] is scheduled onto the pool only while its
//!   inbox is non-empty, with a `scheduled` flag guaranteeing at most
//!   one pool thread ever touches a cell at a time — the core itself
//!   needs no further synchronization.
//!
//! Failure semantics carry over from the pump design unchanged:
//!
//! * An inbound socket that dies **without** [`WireMsg::Eos`] is a
//!   peer failure: the connection is dropped but the consumer's input
//!   is left open and silent (no Eos is synthesized), so a sink can
//!   never mistake a crash for completion. The old implementation
//!   *parked a thread* in a sleep-poll loop to hold the input open;
//!   here absence of a message costs nothing.
//! * An outbound socket that breaks flips its [`EgressBuf`] to
//!   *drain*: pushes are discarded, the producer keeps running. The
//!   discarded tuples are preserved in (or derivable from) the source
//!   logs; the controller's rollback rewinds downstream state behind
//!   them.
//! * Teardown marks the generation's `torn` flag (every producer's
//!   next emission returns `false`, unwinding hosts), instructs the
//!   I/O thread to drop the generation's connections and routes
//!   ([`IoCmd::Tear`]), and schedules every cell once more so its
//!   final [`HostExit`] is flushed even if no message ever arrives.
//!
//! Streams that arrive before their `Assign` (the controller sends
//! assignments concurrently, so a peer can connect first) sit in a
//! *pending* state with **no read interest** — TCP backpressure holds
//! the bytes upstream — until [`IoCmd::Routes`] delivers the route
//! table. This replaces the old 15-second route-wait sleep loop.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crossbeam::channel::{Receiver, Sender};
use ms_core::codec::{frame, FrameDecoder};
use ms_live::{EdgeTx, HostExit, HostMsg, InteriorCore};
use ms_net::fault::{FaultDecision, FaultPlan};
use ms_net::ready::{poll, Interest, PollTarget, Waker};
use ms_net::vectored;
use parking_lot::Mutex;

use crate::message::WireMsg;

/// Poll timeout. On unix the [`Waker`] interrupts the poll, so this
/// only bounds how stale the non-unix sleep stub can get.
const POLL_TIMEOUT_MS: i32 = 250;
/// Per-read scratch size for ingress sockets.
const READ_CHUNK: usize = 16 * 1024;

// ---------------- egress ----------------

struct EgressState {
    /// Encoded frames awaiting the socket, front-to-back.
    frames: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written by a partial flush.
    head: usize,
    /// Socket gone: discard pushes (drain mode — see module docs).
    broken: bool,
}

/// The userspace send queue of one outbound data connection. Hosts
/// append encoded frames; the I/O thread drains the queue with
/// vectored writes ([`ms_net::vectored::write_frames`], `writev(2)` on
/// unix) when the socket is writable — many frames per syscall instead
/// of one. Unbounded by design: the only unbounded producers are
/// throttled sources, and the alternative (blocking a pool thread on a
/// slow socket) stalls unrelated operators.
pub(crate) struct EgressBuf {
    inner: Mutex<EgressState>,
}

impl EgressBuf {
    pub(crate) fn new() -> Arc<EgressBuf> {
        Arc::new(EgressBuf {
            inner: Mutex::new(EgressState {
                frames: VecDeque::new(),
                head: 0,
                broken: false,
            }),
        })
    }

    fn push(&self, msg: &WireMsg) {
        let mut g = self.inner.lock();
        if !g.broken {
            g.frames.push_back(frame(&msg.encode()));
        }
    }

    fn is_empty(&self) -> bool {
        let g = self.inner.lock();
        g.broken || g.frames.is_empty()
    }

    fn mark_broken(&self) {
        let mut g = self.inner.lock();
        g.broken = true;
        g.frames = VecDeque::new();
        g.head = 0;
    }

    /// Drains as many queued frames as the socket accepts, a vectored
    /// write per pass. `Ok(false)` means the socket would block with
    /// frames still queued; errors flip the buffer to drain mode.
    fn write_to(&self, s: &mut TcpStream) -> io::Result<bool> {
        let mut g = self.inner.lock();
        let r = loop {
            if g.frames.is_empty() {
                break Ok(true);
            }
            match vectored::write_frames(s, g.frames.iter().map(|f| f.as_slice()), g.head) {
                Ok(0) => break Err(io::Error::from(io::ErrorKind::WriteZero)),
                Ok(n) => {
                    let EgressState { frames, head, .. } = &mut *g;
                    *head = vectored::consume_frames(n, *head, frames);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(e),
            }
        };
        if r.is_err() {
            g.broken = true;
            g.frames = VecDeque::new();
            g.head = 0;
        }
        r
    }
}

/// Producer-side [`EdgeTx`] over one outbound connection: encode,
/// append to the [`EgressBuf`], wake the I/O thread (coalesced).
/// Returns `false` only when the generation is torn down — a broken
/// socket drains silently, exactly like the old egress pump.
pub(crate) struct EgressHandle {
    pub(crate) buf: Arc<EgressBuf>,
    pub(crate) torn: Arc<AtomicBool>,
    pub(crate) waker: Waker,
}

impl EdgeTx for EgressHandle {
    fn send(&self, msg: HostMsg) -> bool {
        if self.torn.load(Ordering::SeqCst) {
            return false;
        }
        let wire = match msg {
            HostMsg::Data(t) => WireMsg::Data(t),
            // A batch crosses the wire as one TupleBatch frame: one
            // frame header, one decode, one inbox push on the far
            // side, however skewed the edge.
            HostMsg::DataBatch(b) => WireMsg::TupleBatch(b.iter().cloned().collect()),
            HostMsg::Token(e) => WireMsg::Token(e),
            HostMsg::Eos => WireMsg::Eos,
        };
        self.buf.push(&wire);
        self.waker.wake();
        true
    }
}

// ---------------- the apply pool ----------------

/// One interior/sink HAU hosted on the apply pool: the protocol state
/// machine plus its inbox. `scheduled` makes scheduling idempotent —
/// a cell is on the pool's queue at most once, so at most one pool
/// thread runs its core at a time and message order per producer is
/// preserved (each producer appends to the inbox in emission order).
pub(crate) struct HostCell {
    core: Mutex<Option<InteriorCore>>,
    inbox: Mutex<VecDeque<(u32, HostMsg)>>,
    scheduled: AtomicBool,
    /// Generation-level teardown flag (shared with every handle of the
    /// run). A torn cell finishes on its next step.
    torn: Arc<AtomicBool>,
    /// Set once the core has finished: senders get `false` from then
    /// on, mirroring a disconnected channel.
    gone: AtomicBool,
    exits: Sender<HostExit>,
}

impl HostCell {
    pub(crate) fn new(
        core: InteriorCore,
        torn: Arc<AtomicBool>,
        exits: Sender<HostExit>,
    ) -> Arc<HostCell> {
        Arc::new(HostCell {
            core: Mutex::new(Some(core)),
            inbox: Mutex::new(VecDeque::new()),
            scheduled: AtomicBool::new(false),
            torn,
            gone: AtomicBool::new(false),
            exits,
        })
    }

    /// Puts the cell on the pool queue unless it is already there.
    pub(crate) fn schedule(self: &Arc<Self>, work: &Sender<Arc<HostCell>>) {
        if !self.scheduled.swap(true, Ordering::AcqRel) {
            let _ = work.send(self.clone());
        }
    }

    /// One pool-thread visit: drain the inbox through the core, finish
    /// the core if it is done (or the generation is torn), and re-run
    /// if messages raced in behind the drain.
    fn step(self: &Arc<Self>) {
        loop {
            let batch: Vec<(u32, HostMsg)> = {
                let mut q = self.inbox.lock();
                q.drain(..).collect()
            };
            {
                let mut guard = self.core.lock();
                if let Some(core) = guard.as_mut() {
                    core.publish_backpressure(batch.len() as u64);
                    for (port, msg) in batch {
                        core.on_msg(port as usize, msg);
                    }
                    if self.torn.load(Ordering::SeqCst) || core.is_done() {
                        let core = guard.take().expect("core present");
                        self.gone.store(true, Ordering::SeqCst);
                        let _ = self.exits.send(core.finish());
                    }
                }
            }
            // Clear `scheduled` first, then re-check: a producer that
            // appended after the drain either sees `scheduled` still
            // set (and we catch its message here) or re-queues the
            // cell itself. Either way nothing is stranded.
            self.scheduled.store(false, Ordering::Release);
            let rerun = !self.inbox.lock().is_empty()
                || (self.torn.load(Ordering::SeqCst) && self.core.lock().is_some());
            if rerun && !self.scheduled.swap(true, Ordering::AcqRel) {
                continue;
            }
            return;
        }
    }
}

/// Local-edge (or ingress-route) [`EdgeTx`]: append to the consumer
/// cell's inbox and schedule it. Port is the consumer's input index
/// for this edge.
#[derive(Clone)]
pub(crate) struct CellTx {
    pub(crate) cell: Arc<HostCell>,
    pub(crate) port: u32,
    pub(crate) work: Sender<Arc<HostCell>>,
}

impl EdgeTx for CellTx {
    fn send(&self, msg: HostMsg) -> bool {
        if self.cell.gone.load(Ordering::SeqCst) || self.cell.torn.load(Ordering::SeqCst) {
            return false;
        }
        self.cell.inbox.lock().push_back((self.port, msg));
        self.cell.schedule(&self.work);
        true
    }
}

/// Spawns the apply pool: `n` threads draining one shared work queue.
/// Threads exit when every [`Sender`] clone of the queue is gone.
pub(crate) fn spawn_pool(n: usize, work_rx: Receiver<Arc<HostCell>>) -> Vec<JoinHandle<()>> {
    (0..n)
        .map(|i| {
            let rx = work_rx.clone();
            thread::Builder::new()
                .name(format!("ms-apply-{i}"))
                .spawn(move || {
                    while let Ok(cell) = rx.recv() {
                        cell.step();
                    }
                })
                .expect("spawn apply pool thread")
        })
        .collect()
}

/// The apply-pool width for this machine: a couple of threads is
/// enough to keep operator work off the I/O thread without growing
/// the per-process thread budget past O(cores).
pub(crate) fn pool_width() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 4)
}

// ---------------- the I/O thread ----------------

/// Commands the worker sends the I/O thread (paired with a
/// [`Waker::wake`] so a blocked poll picks them up immediately).
pub(crate) enum IoCmd {
    /// Adopt one outbound data connection (already nonblocking, hello
    /// already sent) and flush its [`EgressBuf`] as the socket allows.
    Egress {
        /// Generation the connection belongs to.
        generation: u64,
        /// The connected, nonblocking socket.
        stream: TcpStream,
        /// The buffer hosts append frames to.
        buf: Arc<EgressBuf>,
    },
    /// Install a generation's ingress route table: `(from, to)` →
    /// consumer inbox. Resolves any pending streams that connected
    /// before the assignment arrived.
    Routes {
        /// Generation the routes belong to.
        generation: u64,
        /// `(producer op, consumer op)` → the consumer's edge handle.
        map: HashMap<(u32, u32), CellTx>,
    },
    /// Drop every connection and route of generations `<= generation`.
    /// Streams still awaiting their hello are kept and checked against
    /// the raised floor when the hello arrives.
    Tear {
        /// Highest generation to tear down.
        generation: u64,
    },
    /// Exit the I/O thread, dropping all state.
    Stop,
}

enum IngressState {
    /// Connected, hello not yet read.
    AwaitHello,
    /// Hello read, but the route table for its generation has not
    /// arrived: no read interest (TCP backpressure) until
    /// [`IoCmd::Routes`] resolves it.
    Pending { generation: u64, from: u32, to: u32 },
    /// Streaming into a consumer inbox. `from`/`to` identify the edge
    /// for per-edge fault injection.
    Routed {
        generation: u64,
        from: u32,
        to: u32,
        tx: CellTx,
    },
}

struct IngressConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    state: IngressState,
}

struct EgressConn {
    generation: u64,
    stream: TcpStream,
    buf: Arc<EgressBuf>,
}

struct Io {
    listener: TcpListener,
    waker: Waker,
    cmds: Receiver<IoCmd>,
    ingress: Vec<IngressConn>,
    egress: Vec<EgressConn>,
    routes: HashMap<(u64, u32, u32), CellTx>,
    /// Generations below this are stale; hellos for them are dropped.
    min_gen: u64,
    /// Deterministic fault injection consulted once per routed ingress
    /// frame (chaos runs only; `None` in production).
    plan: Option<Arc<FaultPlan>>,
}

/// What one poll entry refers to this iteration.
#[derive(Clone, Copy)]
enum Slot {
    Waker,
    Listener,
    Ingress(usize),
    Egress(usize),
}

/// Spawns the I/O thread over the (nonblocking) data-plane listener.
/// `waker` must be the same waker handed to every [`EgressHandle`]
/// and used when sending on `cmds`.
pub(crate) fn spawn_io(
    listener: TcpListener,
    waker: Waker,
    cmds: Receiver<IoCmd>,
    plan: Option<Arc<FaultPlan>>,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name("ms-io".into())
        .spawn(move || {
            let mut io = Io {
                listener,
                waker,
                cmds,
                ingress: Vec::new(),
                egress: Vec::new(),
                routes: HashMap::new(),
                min_gen: 0,
                plan,
            };
            io.run();
        })
        .expect("spawn io thread")
}

impl Io {
    fn run(&mut self) {
        loop {
            if !self.drain_cmds() {
                return;
            }
            let (targets, slots) = self.build_poll_set();
            let ready = match poll(&targets, POLL_TIMEOUT_MS) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let mut dead_in: Vec<usize> = Vec::new();
            let mut dead_out: Vec<usize> = Vec::new();
            for ev in ready {
                match slots[ev.token] {
                    Slot::Waker => self.waker.drain(),
                    Slot::Listener => self.accept_ready(),
                    Slot::Ingress(i) => {
                        if ev.readable && !self.ingress_ready(i) {
                            dead_in.push(i);
                        }
                    }
                    Slot::Egress(j) => {
                        if ev.writable || ev.hangup {
                            let c = &mut self.egress[j];
                            if c.buf.write_to(&mut c.stream).is_err() {
                                dead_out.push(j);
                            }
                        }
                    }
                }
            }
            // Drop dead connections, highest index first so the
            // remaining indices stay valid.
            dead_in.sort_unstable_by(|a, b| b.cmp(a));
            for i in dead_in {
                self.ingress.swap_remove(i);
            }
            dead_out.sort_unstable_by(|a, b| b.cmp(a));
            for j in dead_out {
                self.egress.swap_remove(j);
            }
        }
    }

    /// Applies queued commands; `false` means Stop.
    fn drain_cmds(&mut self) -> bool {
        while let Ok(cmd) = self.cmds.try_recv() {
            match cmd {
                IoCmd::Egress {
                    generation,
                    stream,
                    buf,
                } => {
                    if generation >= self.min_gen {
                        self.egress.push(EgressConn {
                            generation,
                            stream,
                            buf,
                        });
                    } else {
                        buf.mark_broken();
                    }
                }
                IoCmd::Routes { generation, map } => {
                    if generation < self.min_gen {
                        continue;
                    }
                    for ((from, to), tx) in map {
                        self.routes.insert((generation, from, to), tx);
                    }
                    // Resolve streams that connected ahead of the
                    // assignment. Frames already buffered (bytes that
                    // rode in with the hello) flow now; the socket
                    // itself is picked up by the next poll, which is
                    // level-triggered.
                    let mut resolved_dead = Vec::new();
                    for (i, conn) in self.ingress.iter_mut().enumerate() {
                        let (pg, from, to) = match conn.state {
                            IngressState::Pending {
                                generation: pg,
                                from,
                                to,
                            } if pg == generation => (pg, from, to),
                            _ => continue,
                        };
                        if let Some(tx) = self.routes.get(&(pg, from, to)) {
                            conn.state = IngressState::Routed {
                                generation: pg,
                                from,
                                to,
                                tx: tx.clone(),
                            };
                            if !drain_frames(
                                &mut conn.decoder,
                                &mut conn.state,
                                self.plan.as_deref(),
                            ) {
                                resolved_dead.push(i);
                            }
                        }
                    }
                    resolved_dead.sort_unstable_by(|a, b| b.cmp(a));
                    for i in resolved_dead {
                        self.ingress.swap_remove(i);
                    }
                }
                IoCmd::Tear { generation } => {
                    self.min_gen = self.min_gen.max(generation + 1);
                    self.routes.retain(|(g, _, _), _| *g > generation);
                    self.ingress.retain(|c| match &c.state {
                        IngressState::AwaitHello => true,
                        IngressState::Pending { generation: g, .. }
                        | IngressState::Routed { generation: g, .. } => *g > generation,
                    });
                    self.egress.retain(|c| {
                        if c.generation <= generation {
                            c.buf.mark_broken();
                            false
                        } else {
                            true
                        }
                    });
                }
                IoCmd::Stop => return false,
            }
        }
        true
    }

    fn build_poll_set(&self) -> (Vec<(PollTarget, usize, Interest)>, Vec<Slot>) {
        let mut targets = Vec::with_capacity(2 + self.ingress.len() + self.egress.len());
        let mut slots = Vec::with_capacity(targets.capacity());
        let mut add = |fd: PollTarget, slot: Slot, want: Interest| {
            targets.push((fd, slots.len(), want));
            slots.push(slot);
        };
        add(self.waker.fd(), Slot::Waker, Interest::READ);
        add(raw_fd(&self.listener), Slot::Listener, Interest::READ);
        for (i, c) in self.ingress.iter().enumerate() {
            // Pending streams keep no read interest: the bytes wait in
            // the socket (and eventually the peer's send buffer) until
            // the route arrives. Hangup is still reported.
            let want = match c.state {
                IngressState::Pending { .. } => Interest::default(),
                _ => Interest::READ,
            };
            add(raw_fd(&c.stream), Slot::Ingress(i), want);
        }
        for (j, c) in self.egress.iter().enumerate() {
            if !c.buf.is_empty() {
                add(raw_fd(&c.stream), Slot::Egress(j), Interest::WRITE);
            }
        }
        (targets, slots)
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.ingress.push(IngressConn {
                        stream,
                        decoder: FrameDecoder::new(),
                        state: IngressState::AwaitHello,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Reads one ready ingress socket to `WouldBlock` and pushes the
    /// decoded frames along. `false` = connection finished (clean Eos)
    /// or failed (bare close / torn frame / protocol violation); in
    /// the failure case no Eos is delivered — see module docs.
    fn ingress_ready(&mut self, i: usize) -> bool {
        if matches!(self.ingress[i].state, IngressState::Pending { .. }) {
            // Only hangup gets us here for a pending stream; check
            // whether the peer is really gone without consuming data.
            let mut probe = [0u8; 1];
            return !matches!(self.ingress[i].stream.peek(&mut probe), Ok(0) | Err(_));
        }
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            // Re-borrowed each pass: `advance` needs `&mut self`.
            let conn = &mut self.ingress[i];
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    // EOF: process what we have, then drop. A stream
                    // that ended without Eos is a peer failure — the
                    // consumer's input stays open and silent.
                    drain_frames(&mut conn.decoder, &mut conn.state, self.plan.as_deref());
                    return false;
                }
                Ok(n) => {
                    conn.decoder.feed(&scratch[..n]);
                    if !self.advance(i) {
                        return false;
                    }
                    if n < READ_CHUNK {
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Advances one ingress connection's state machine over its
    /// buffered frames. `false` = drop the connection.
    fn advance(&mut self, i: usize) -> bool {
        loop {
            let conn = &mut self.ingress[i];
            match conn.state {
                IngressState::AwaitHello => {
                    let frame = match conn.decoder.next_frame() {
                        Ok(Some(f)) => f,
                        Ok(None) => return true,
                        Err(_) => return false,
                    };
                    let (generation, from, to) = match WireMsg::decode(&frame) {
                        Ok(WireMsg::StreamHello {
                            generation,
                            from,
                            to,
                        }) => (generation, from.0, to.0),
                        _ => return false,
                    };
                    if generation < self.min_gen {
                        return false;
                    }
                    match self.routes.get(&(generation, from, to)) {
                        Some(tx) => {
                            conn.state = IngressState::Routed {
                                generation,
                                from,
                                to,
                                tx: tx.clone(),
                            };
                        }
                        None => {
                            conn.state = IngressState::Pending {
                                generation,
                                from,
                                to,
                            };
                            return true;
                        }
                    }
                }
                IngressState::Pending { .. } => return true,
                IngressState::Routed { .. } => {
                    return drain_frames(&mut conn.decoder, &mut conn.state, self.plan.as_deref());
                }
            }
        }
    }
}

/// Decodes and delivers every buffered frame of a routed stream.
/// `false` = the connection should be dropped (Eos delivered, decode
/// failure, the consumer is gone, or an injected fault severed the
/// edge).
///
/// With a fault `plan`, every frame consults the per-edge decision
/// first. A `Delay` sleeps on the I/O thread before delivery — crude,
/// but exactly what a slow link does to everything multiplexed behind
/// it. `Drop` and `Sever` both kill the connection *without* an Eos,
/// indistinguishable from a switch failure: under the fail-stop model
/// a frame may never be skipped on a connection that lives on.
fn drain_frames(
    decoder: &mut FrameDecoder,
    state: &mut IngressState,
    plan: Option<&FaultPlan>,
) -> bool {
    let (generation, from, to, tx) = match state {
        IngressState::Routed {
            generation,
            from,
            to,
            tx,
        } => (*generation, *from, *to, tx),
        _ => return true,
    };
    loop {
        let frame = match decoder.next_frame() {
            Ok(Some(f)) => f,
            Ok(None) => return true,
            Err(_) => return false,
        };
        if let Some(plan) = plan {
            match plan.on_frame(generation, from, to) {
                FaultDecision::Deliver => {}
                FaultDecision::Delay(d) => thread::sleep(d),
                FaultDecision::Drop | FaultDecision::Sever => return false,
            }
        }
        let msg = match WireMsg::decode(&frame) {
            Ok(WireMsg::Data(t)) => HostMsg::Data(t),
            // Batch-decode: the whole run becomes one shared slice and
            // one inbox push — the apply pool schedules one HostCell
            // visit for the batch instead of one per tuple. The fault
            // plan above was consulted once for the frame, i.e. once
            // per batch: injected faults stay frame-granular.
            Ok(WireMsg::TupleBatch(ts)) => HostMsg::DataBatch(ts.into()),
            Ok(WireMsg::Token(e)) => HostMsg::Token(e),
            Ok(WireMsg::Eos) => {
                tx.send(HostMsg::Eos);
                return false;
            }
            _ => return false,
        };
        if !tx.send(msg) {
            return false;
        }
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> PollTarget {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> PollTarget {
    -1
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::message::send_msg;
    use crossbeam::channel::unbounded;
    use ms_core::ids::OperatorId;
    use ms_core::ids::{EpochId, PortId};
    use ms_core::operator::{Operator, OperatorContext, OperatorSnapshot};
    use ms_core::tuple::Tuple;
    use ms_core::value::Value;
    use ms_live::{HostWiring, Persister};
    use ms_live::{LiveStorage, StableStore};
    use std::time::Duration;

    /// A sink that sums Int fields (local stand-in for apps::Summer
    /// without the crate cycle).
    #[derive(Default)]
    struct Sum(i64);
    impl Operator for Sum {
        fn kind(&self) -> &'static str {
            "TestSum"
        }
        fn on_tuple(&mut self, _port: PortId, t: Tuple, _ctx: &mut dyn OperatorContext) {
            for f in t.fields.iter() {
                if let Value::Int(v) = f {
                    self.0 += v;
                }
            }
        }
        fn state_size(&self) -> u64 {
            8
        }
        fn snapshot(&self) -> OperatorSnapshot {
            OperatorSnapshot {
                data: self.0.to_le_bytes().to_vec(),
                logical_bytes: 8,
            }
        }
        fn restore(&mut self, snap: &OperatorSnapshot) -> ms_core::error::Result<()> {
            let mut b = [0u8; 8];
            b.copy_from_slice(&snap.data);
            self.0 = i64::from_le_bytes(b);
            Ok(())
        }
    }

    /// `recv` with a deadline (the vendored channel has no
    /// `recv_timeout`): polls `try_recv` until `d` elapses.
    fn recv_within<T>(rx: &Receiver<T>, d: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + d;
        loop {
            match rx.try_recv() {
                Ok(v) => return Some(v),
                Err(_) if std::time::Instant::now() >= deadline => return None,
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Everything a test needs to drive one summing sink cell: the
    /// cell itself, its exit channel, and the work queue a pool (or
    /// the test directly) drains.
    struct SinkRig {
        cell: Arc<HostCell>,
        exit_rx: Receiver<HostExit>,
        work_tx: Sender<Arc<HostCell>>,
        work_rx: Receiver<Arc<HostCell>>,
        _persister: Persister,
    }

    fn sink_cell(torn: &Arc<AtomicBool>, n_in: usize) -> SinkRig {
        let storage: Arc<dyn StableStore> = Arc::new(LiveStorage::new(4));
        let persister = Persister::spawn(storage);
        let ptx = persister.sender();
        let wiring = HostWiring {
            op_id: OperatorId(1),
            op: Box::new(Sum::default()),
            inputs: (0..n_in).map(|_| unbounded().1).collect(),
            outputs: Vec::new(),
            cmd: None,
            restored_seq: 0,
            replay: Vec::new(),
            resume_seq: Vec::new(),
            in_flight: Vec::new(),
            auto_stop: true,
            last_durable: None,
            persist_in_flight: true,
            meter: None,
            telemetry: None,
        };
        let core = InteriorCore::new(wiring, ptx);
        let (exit_tx, exit_rx) = unbounded();
        let cell = HostCell::new(core, torn.clone(), exit_tx);
        let (work_tx, work_rx) = unbounded();
        SinkRig {
            cell,
            exit_rx,
            work_tx,
            work_rx,
            _persister: persister,
        }
    }

    #[test]
    fn cell_applies_batches_and_finishes_on_eos() {
        let torn = Arc::new(AtomicBool::new(false));
        let SinkRig {
            cell,
            exit_rx,
            work_tx,
            work_rx,
            _persister,
        } = sink_cell(&torn, 1);
        let pool = spawn_pool(2, work_rx);
        let tx = CellTx {
            cell: cell.clone(),
            port: 0,
            work: work_tx.clone(),
        };
        for v in 0..100i64 {
            assert!(tx.send(HostMsg::Data(Tuple::new(
                OperatorId(0),
                v as u64,
                ms_core::time::SimTime::ZERO,
                vec![Value::Int(v)],
            ))));
        }
        tx.send(HostMsg::Token(EpochId(1)));
        tx.send(HostMsg::Eos);
        let exit = recv_within(&exit_rx, Duration::from_secs(5)).unwrap();
        assert!(exit.error.is_none());
        let mut b = [0u8; 8];
        b.copy_from_slice(&exit.op.snapshot().data);
        assert_eq!(i64::from_le_bytes(b), (0..100).sum::<i64>());
        // Finished cell refuses further sends.
        assert!(!tx.send(HostMsg::Eos));
        drop(work_tx);
        drop(tx);
        for p in pool {
            p.join().unwrap();
        }
    }

    #[test]
    fn torn_cell_flushes_exit_without_traffic() {
        let torn = Arc::new(AtomicBool::new(false));
        let SinkRig {
            cell,
            exit_rx,
            work_tx,
            work_rx,
            _persister,
        } = sink_cell(&torn, 1);
        let pool = spawn_pool(2, work_rx);
        torn.store(true, Ordering::SeqCst);
        cell.schedule(&work_tx);
        let exit = recv_within(&exit_rx, Duration::from_secs(5)).unwrap();
        assert_eq!(exit.op_id, OperatorId(1));
        drop(work_tx);
        drop(cell);
        for p in pool {
            p.join().unwrap();
        }
    }

    #[test]
    fn io_routes_stream_even_when_hello_races_routes() {
        // Connect and send the hello BEFORE the route table is
        // installed: the stream must park as Pending and resolve on
        // IoCmd::Routes, with no data lost.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let waker = Waker::new().unwrap();
        let (cmd_tx, cmd_rx) = unbounded();
        let io = spawn_io(listener, waker.clone(), cmd_rx, None);

        let mut peer = TcpStream::connect(addr).unwrap();
        send_msg(
            &mut peer,
            &WireMsg::StreamHello {
                generation: 1,
                from: OperatorId(0),
                to: OperatorId(1),
            },
        )
        .unwrap();
        for v in 0..10i64 {
            send_msg(
                &mut peer,
                &WireMsg::Data(Tuple::new(
                    OperatorId(0),
                    v as u64,
                    ms_core::time::SimTime::ZERO,
                    vec![Value::Int(v)],
                )),
            )
            .unwrap();
        }
        // Give the io thread time to accept and park the stream.
        std::thread::sleep(Duration::from_millis(100));

        let torn = Arc::new(AtomicBool::new(false));
        let SinkRig {
            cell,
            exit_rx,
            work_tx,
            work_rx,
            _persister,
        } = sink_cell(&torn, 1);
        let pool = spawn_pool(2, work_rx);
        let mut map = HashMap::new();
        map.insert(
            (0u32, 1u32),
            CellTx {
                cell: cell.clone(),
                port: 0,
                work: work_tx.clone(),
            },
        );
        assert!(cmd_tx.send(IoCmd::Routes { generation: 1, map }).is_ok());
        waker.wake();
        send_msg(&mut peer, &WireMsg::Eos).unwrap();

        let exit = recv_within(&exit_rx, Duration::from_secs(5)).unwrap();
        let mut b = [0u8; 8];
        b.copy_from_slice(&exit.op.snapshot().data);
        assert_eq!(i64::from_le_bytes(b), (0..10).sum::<i64>());

        assert!(cmd_tx.send(IoCmd::Stop).is_ok());
        waker.wake();
        io.join().unwrap();
        drop(work_tx);
        drop(cell);
        for p in pool {
            p.join().unwrap();
        }
    }

    #[test]
    fn bare_close_does_not_deliver_eos() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let waker = Waker::new().unwrap();
        let (cmd_tx, cmd_rx) = unbounded();
        let io = spawn_io(listener, waker.clone(), cmd_rx, None);

        let torn = Arc::new(AtomicBool::new(false));
        let SinkRig {
            cell,
            exit_rx,
            work_tx,
            work_rx,
            _persister,
        } = sink_cell(&torn, 1);
        let pool = spawn_pool(2, work_rx);
        let mut map = HashMap::new();
        map.insert(
            (0u32, 1u32),
            CellTx {
                cell: cell.clone(),
                port: 0,
                work: work_tx.clone(),
            },
        );
        assert!(cmd_tx.send(IoCmd::Routes { generation: 1, map }).is_ok());
        waker.wake();

        let mut peer = TcpStream::connect(addr).unwrap();
        send_msg(
            &mut peer,
            &WireMsg::StreamHello {
                generation: 1,
                from: OperatorId(0),
                to: OperatorId(1),
            },
        )
        .unwrap();
        send_msg(
            &mut peer,
            &WireMsg::Data(Tuple::new(
                OperatorId(0),
                0,
                ms_core::time::SimTime::ZERO,
                vec![Value::Int(7)],
            )),
        )
        .unwrap();
        drop(peer); // crash, not Eos

        // The consumer must NOT finish: no Eos was ever sent.
        assert!(recv_within(&exit_rx, Duration::from_millis(600)).is_none());

        // Teardown still flushes the exit.
        torn.store(true, Ordering::SeqCst);
        cell.schedule(&work_tx);
        let exit = recv_within(&exit_rx, Duration::from_secs(5)).unwrap();
        let mut b = [0u8; 8];
        b.copy_from_slice(&exit.op.snapshot().data);
        assert_eq!(i64::from_le_bytes(b), 7);

        assert!(cmd_tx.send(IoCmd::Stop).is_ok());
        waker.wake();
        io.join().unwrap();
        drop(work_tx);
        drop(cell);
        for p in pool {
            p.join().unwrap();
        }
    }
}
