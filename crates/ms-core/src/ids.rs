//! Strongly-typed identifiers.
//!
//! Operators, HAUs, nodes, racks, ports and checkpoint epochs all use
//! small-integer identifiers; newtypes prevent cross-wiring (e.g.
//! indexing a node table with an operator id).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index, for table lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies one operator in a query network.
    OperatorId,
    "op"
);
id_type!(
    /// Identifies one High Availability Unit — the smallest unit of work
    /// that can be checkpointed and recovered independently (§II-A). In
    /// the paper's evaluation every operator constitutes its own HAU.
    HauId,
    "hau"
);
id_type!(
    /// Identifies a computing node in the cluster.
    NodeId,
    "node"
);
id_type!(
    /// Identifies a rack; failures are rack-correlated (§II-B1).
    RackId,
    "rack"
);
id_type!(
    /// Identifies an input or output port of an operator/HAU. Port `k`
    /// of an HAU corresponds to its `k`-th upstream (for inputs) or
    /// downstream (for outputs) neighbour, mirroring the paper's
    /// `input_port_k()` functions (Fig. 9).
    PortId,
    "port"
);

/// Identifies one application-wide checkpoint. Epochs are issued
/// monotonically by the token origin (source HAUs in MS-src, the
/// controller in MS-src+ap/+aa); a checkpoint is *complete* once every
/// HAU has finished its individual checkpoint for that epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct EpochId(pub u64);

impl EpochId {
    /// The epoch before any checkpoint has been taken.
    pub const INITIAL: EpochId = EpochId(0);

    /// The next epoch.
    pub const fn next(self) -> EpochId {
        EpochId(self.0 + 1)
    }
}

impl fmt::Debug for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch{}", self.0)
    }
}

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", OperatorId(3)), "op3");
        assert_eq!(format!("{:?}", HauId(7)), "hau7");
        assert_eq!(format!("{}", NodeId(0)), "node0");
        assert_eq!(format!("{}", EpochId(2)), "epoch2");
    }

    #[test]
    fn epoch_monotonicity() {
        let e = EpochId::INITIAL;
        assert!(e.next() > e);
        assert_eq!(e.next().next(), EpochId(2));
    }

    #[test]
    fn index_roundtrip() {
        let id: OperatorId = 5usize.into();
        assert_eq!(id.index(), 5);
    }
}
