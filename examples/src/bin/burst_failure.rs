//! Surviving a correlated burst failure (the paper's motivating
//! scenario, §II-B1): a rack failure takes out a batch of TMI's nodes
//! mid-run; Meteor Shower rolls the whole application back to the most
//! recent complete checkpoint, replays the preserved source tuples,
//! and keeps streaming.
//!
//! Run with `cargo run --release -p ms-examples --bin burst_failure`.

use ms_apps::Tmi;
use ms_cluster::{Cluster, ClusterConfig, FailureModel};
use ms_core::config::{CheckpointConfig, SchemeKind};
use ms_core::ids::NodeId;
use ms_core::time::{SimDuration, SimTime};
use ms_runtime::{Engine, EngineConfig, FailTarget, FailurePlan};
use ms_sim::DetRng;

fn main() {
    // Draw a realistic burst from the Table-I failure model: the first
    // rack-failure incident of a sampled year, mapped onto the 56-node
    // deployment.
    let dc = Cluster::new(ClusterConfig::google_dc());
    let mut rng = DetRng::new(7);
    let events = FailureModel::google().sample(&dc, 1.0, &mut rng);
    let burst = events
        .iter()
        .find(|e| e.name == "rack failure")
        .expect("rack failures happen ~20x/year");
    // Map the first 14 affected nodes onto compute nodes 1..=14 (a
    // quarter of the deployment failing at once).
    let nodes: Vec<NodeId> = (1..=14).map(NodeId).collect();
    println!(
        "injected burst: '{}' ({} nodes in the model; mapped to {} deployment nodes)",
        burst.name,
        burst.nodes.len(),
        nodes.len()
    );

    let cfg = EngineConfig {
        scheme: SchemeKind::MsSrcAp,
        ckpt: CheckpointConfig::n_in_window(3, SimDuration::from_secs(600)),
        warmup: SimDuration::from_secs(60),
        measure: SimDuration::from_secs(600),
        failure: Some(FailurePlan {
            at: SimTime::from_secs(360),
            target: FailTarget::Nodes(nodes),
        }),
        ..EngineConfig::default()
    };
    let report = Engine::new(Tmi::default_app(), cfg)
        .expect("valid app")
        .run();

    println!(
        "\nTMI under MS-src+ap: processed {} tuples ({:.0}/s) across the window",
        report.metrics.processed_tuples,
        report.throughput()
    );
    for r in &report.recoveries {
        println!(
            "recovery: failed at {}, detected at {}, recovered at {}",
            r.failed_at, r.detected_at, r.recovered_at
        );
        println!(
            "  restored {} HAUs from {} | recovery time {:.2}s | replayed {} preserved tuples",
            r.restarted_haus,
            r.epoch,
            r.recovery_time().as_secs_f64(),
            r.replayed_tuples
        );
        for (phase, d) in r.breakdown.parts() {
            println!("  {phase}: {:.2}s", d.as_secs_f64());
        }
    }
    let after_failure = report
        .metrics
        .instantaneous_latency
        .points()
        .iter()
        .filter(|(t, _)| t.as_secs_f64() > 420.0)
        .count();
    println!("tuples completing after recovery: {after_failure} (the stream kept flowing)");
    println!(
        "\n(the baseline scheme \"can only handle single node failures\" — a burst\n\
         of this size is unrecoverable for it; Meteor Shower's whole-application\n\
         rollback plus source replay is what makes the burst survivable)"
    );
}
