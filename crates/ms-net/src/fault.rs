//! Deterministic fault injection for the real transport.
//!
//! The simulator in this crate models failures analytically; the live
//! TCP transport (`ms-wire`) needs the same failures *injected* into a
//! running cluster, repeatably. A [`FaultPlan`] is a seeded, declarative
//! set of per-edge rules — delay, drop, sever — consulted by the
//! worker's I/O loop once per ingress frame. Every decision is a pure
//! function of `(seed, generation, edge, frame index)`, so the same
//! plan against the same traffic yields the same fault sequence: chaos
//! scenarios become regression tests instead of dice rolls.
//!
//! The failure model stays fail-stop (§III of the paper: packets are
//! "delivered in-order and will not be lost silently"). That constrains
//! the action vocabulary:
//!
//! * **delay** sleeps before delivering — reordering-free slowness is
//!   always legal on a TCP stream;
//! * **sever** kills the connection *without* an `Eos`, exactly what a
//!   switch failure looks like to the endpoints;
//! * **drop** discards the matched frame **and then severs** — silently
//!   delivering later frames after a gap would forge a lossy link that
//!   the fail-stop recovery protocol is entitled to assume impossible.
//!
//! Rules can be scoped to early generations (`gen<=N`), which is how a
//! partition "heals": the controller's rollback redeploys under a
//! higher generation number that the rule no longer matches.
//!
//! Plan syntax (the `MS_FAULT_PLAN` env var / `--fault-plan` flag):
//!
//! ```text
//! seed=42;sever:1->2:after=200,gen<=1;delay:*->2:us=500,every=7
//! ```
//!
//! i.e. `;`-separated clauses: an optional `seed=N`, then rules of the
//! form `ACTION:FROM->TO:PARAMS` where `FROM`/`TO` are operator ids or
//! `*`, and `PARAMS` are `,`-separated `key=value` pairs.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// What the I/O loop must do with one ingress frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver the frame normally.
    Deliver,
    /// Sleep this long, then deliver the frame.
    Delay(Duration),
    /// Discard this frame and sever the connection (no `Eos`). The
    /// discard is only legal because the sever follows: the peer
    /// observes a dead channel, never a silent gap.
    Drop,
    /// Sever the connection (no `Eos`) before delivering this frame.
    Sever,
}

/// One fault rule: an action, the edge pattern it applies to, and an
/// optional generation ceiling.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FaultRule {
    action: Action,
    /// Source operator id, `None` = any.
    from: Option<u32>,
    /// Destination operator id, `None` = any.
    to: Option<u32>,
    /// Rule fires only while `generation <= max_gen`. `None` = always.
    max_gen: Option<u64>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Action {
    /// Delay every `every`-th frame by `us` microseconds.
    Delay { us: u64, every: u64 },
    /// Sever the edge at the `after`-th frame (0-based index >= after).
    Sever { after: u64 },
    /// Drop (and sever) with probability `pct`% per frame, decided by
    /// the seeded hash.
    Drop { pct: u64 },
}

impl FaultRule {
    fn matches(&self, generation: u64, from: u32, to: u32) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.max_gen.is_none_or(|g| generation <= g)
    }
}

/// A seeded, deterministic fault plan consulted once per ingress frame.
///
/// Internally keeps a per-`(generation, from, to)` frame counter so
/// positional rules (`after=`, `every=`) see a stable index; the
/// counter lives behind a mutex, but each edge is only ever advanced by
/// the single I/O thread that owns its socket, so there is no
/// contention in practice.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    /// Frames seen so far per (generation, from, to).
    counters: Mutex<HashMap<(u64, u32, u32), u64>>,
}

impl FaultPlan {
    /// Parses a plan from the spec grammar described at module level.
    /// Returns a human-readable error for malformed specs — a chaos
    /// harness with a typo must fail loudly, not run faultless.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed {v:?} in fault plan"))?;
                continue;
            }
            rules.push(parse_rule(clause)?);
        }
        if rules.is_empty() {
            return Err(format!("fault plan {spec:?} declares no rules"));
        }
        Ok(FaultPlan {
            seed,
            rules,
            counters: Mutex::new(HashMap::new()),
        })
    }

    /// Builds a plan from the `MS_FAULT_PLAN` environment variable.
    /// `Ok(None)` when the variable is unset or empty; `Err` when it is
    /// set but malformed.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("MS_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Decides the fate of the next frame on edge `from -> to` under
    /// `generation`. Advances that edge's frame counter as a side
    /// effect; rules are evaluated in declaration order and the first
    /// non-[`FaultDecision::Deliver`] outcome wins.
    pub fn on_frame(&self, generation: u64, from: u32, to: u32) -> FaultDecision {
        let idx = {
            let mut counters = self.counters.lock().unwrap();
            let c = counters.entry((generation, from, to)).or_insert(0);
            let idx = *c;
            *c += 1;
            idx
        };
        self.decide(generation, from, to, idx)
    }

    /// The pure decision function: no counter side effects, so property
    /// tests can pin the full decision sequence for a fixed seed.
    pub fn decide(&self, generation: u64, from: u32, to: u32, frame_idx: u64) -> FaultDecision {
        for rule in &self.rules {
            if !rule.matches(generation, from, to) {
                continue;
            }
            match rule.action {
                Action::Sever { after } => {
                    if frame_idx >= after {
                        return FaultDecision::Sever;
                    }
                }
                Action::Delay { us, every } => {
                    if frame_idx % every.max(1) == 0 {
                        return FaultDecision::Delay(Duration::from_micros(us));
                    }
                }
                Action::Drop { pct } => {
                    if fault_hash(self.seed, generation, from, to, frame_idx) % 100 < pct {
                        return FaultDecision::Drop;
                    }
                }
            }
        }
        FaultDecision::Deliver
    }

    /// The plan's seed (for logging the run's fault configuration).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// `ACTION:FROM->TO:PARAMS`.
fn parse_rule(clause: &str) -> Result<FaultRule, String> {
    let mut parts = clause.splitn(3, ':');
    let action = parts.next().unwrap_or_default();
    let edge = parts
        .next()
        .ok_or_else(|| format!("rule {clause:?}: missing edge (expected ACTION:FROM->TO:...)"))?;
    let params = parts.next().unwrap_or("");

    let (from_s, to_s) = edge
        .split_once("->")
        .ok_or_else(|| format!("rule {clause:?}: edge {edge:?} is not FROM->TO"))?;
    let from = parse_endpoint(from_s, clause)?;
    let to = parse_endpoint(to_s, clause)?;

    let mut kv: HashMap<&str, u64> = HashMap::new();
    let mut max_gen = None;
    for p in params.split(',') {
        let p = p.trim();
        if p.is_empty() {
            continue;
        }
        if let Some(g) = p.strip_prefix("gen<=") {
            max_gen = Some(
                g.parse::<u64>()
                    .map_err(|_| format!("rule {clause:?}: bad generation bound {g:?}"))?,
            );
            continue;
        }
        let (k, v) = p
            .split_once('=')
            .ok_or_else(|| format!("rule {clause:?}: parameter {p:?} is not key=value"))?;
        let v = v
            .parse::<u64>()
            .map_err(|_| format!("rule {clause:?}: parameter {p:?} is not an integer"))?;
        kv.insert(k, v);
    }

    let action = match action {
        "delay" => Action::Delay {
            us: *kv
                .get("us")
                .ok_or_else(|| format!("rule {clause:?}: delay needs us=N"))?,
            every: kv.get("every").copied().unwrap_or(1),
        },
        "sever" => Action::Sever {
            after: *kv
                .get("after")
                .ok_or_else(|| format!("rule {clause:?}: sever needs after=N"))?,
        },
        "drop" => Action::Drop {
            pct: *kv
                .get("p")
                .ok_or_else(|| format!("rule {clause:?}: drop needs p=PCT"))?,
        },
        other => return Err(format!("rule {clause:?}: unknown action {other:?}")),
    };
    Ok(FaultRule {
        action,
        from,
        to,
        max_gen,
    })
}

fn parse_endpoint(s: &str, clause: &str) -> Result<Option<u32>, String> {
    let s = s.trim();
    if s == "*" {
        return Ok(None);
    }
    s.parse::<u32>()
        .map(Some)
        .map_err(|_| format!("rule {clause:?}: endpoint {s:?} is neither an op id nor '*'"))
}

/// splitmix64 over the decision coordinates: a pure, well-mixed hash so
/// probabilistic rules are reproducible bit-for-bit across runs and
/// platforms.
fn fault_hash(seed: u64, generation: u64, from: u32, to: u32, frame_idx: u64) -> u64 {
    let mut x = seed
        ^ generation.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((from as u64) << 32 | to as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ frame_idx.wrapping_mul(0x94D0_49BB_1331_11EB);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let p = FaultPlan::parse("seed=42;sever:1->2:after=200,gen<=1;delay:*->2:us=500,every=7")
            .unwrap();
        assert_eq!(p.seed(), 42);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(
            p.rules[0],
            FaultRule {
                action: Action::Sever { after: 200 },
                from: Some(1),
                to: Some(2),
                max_gen: Some(1),
            }
        );
        assert_eq!(
            p.rules[1],
            FaultRule {
                action: Action::Delay { us: 500, every: 7 },
                from: None,
                to: Some(2),
                max_gen: None,
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "seed=1",                  // no rules
            "sever:1->2",              // missing after=
            "delay:1->2:every=3",      // missing us=
            "sever:one->2:after=1",    // bad endpoint
            "explode:1->2:x=1",        // unknown action
            "sever:1-2:after=1",       // bad edge arrow
            "drop:1->2:p=x",           // non-integer param
            "sever:1->2:after=1,gen<", // torn gen bound
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn sever_fires_at_and_after_threshold() {
        let p = FaultPlan::parse("sever:1->2:after=3").unwrap();
        let seq: Vec<_> = (0..5).map(|_| p.on_frame(1, 1, 2)).collect();
        assert_eq!(
            seq,
            vec![
                FaultDecision::Deliver,
                FaultDecision::Deliver,
                FaultDecision::Deliver,
                FaultDecision::Sever,
                FaultDecision::Sever,
            ]
        );
    }

    #[test]
    fn generation_scope_heals_the_edge() {
        let p = FaultPlan::parse("sever:1->2:after=0,gen<=1").unwrap();
        assert_eq!(p.on_frame(1, 1, 2), FaultDecision::Sever);
        // The post-rollback generation no longer matches: healed.
        assert_eq!(p.on_frame(2, 1, 2), FaultDecision::Deliver);
    }

    #[test]
    fn wildcard_edges_match_everything_and_counters_are_per_edge() {
        let p = FaultPlan::parse("delay:*->*:us=100,every=2").unwrap();
        // Each edge has its own frame index, so the every-2 cadence is
        // phase-aligned per edge, not global.
        for _ in 0..2 {
            assert_eq!(
                p.on_frame(1, 0, 1),
                FaultDecision::Delay(Duration::from_micros(100))
            );
            assert_eq!(
                p.on_frame(1, 7, 9),
                FaultDecision::Delay(Duration::from_micros(100))
            );
            assert_eq!(p.on_frame(1, 0, 1), FaultDecision::Deliver);
            assert_eq!(p.on_frame(1, 7, 9), FaultDecision::Deliver);
        }
    }

    #[test]
    fn first_matching_rule_wins() {
        let p = FaultPlan::parse("sever:1->2:after=0;delay:*->*:us=9").unwrap();
        assert_eq!(p.on_frame(1, 1, 2), FaultDecision::Sever);
        assert_eq!(
            p.on_frame(1, 0, 1),
            FaultDecision::Delay(Duration::from_micros(9))
        );
    }

    #[test]
    fn drop_is_seed_deterministic() {
        let a = FaultPlan::parse("seed=7;drop:0->1:p=30").unwrap();
        let b = FaultPlan::parse("seed=7;drop:0->1:p=30").unwrap();
        let sa: Vec<_> = (0..256).map(|i| a.decide(1, 0, 1, i)).collect();
        let sb: Vec<_> = (0..256).map(|i| b.decide(1, 0, 1, i)).collect();
        assert_eq!(sa, sb);
        assert!(sa.contains(&FaultDecision::Drop), "p=30 never fired in 256");
        assert!(sa.contains(&FaultDecision::Deliver), "p=30 always fired");
    }

    #[test]
    fn env_constructor_handles_unset_and_malformed() {
        // Unset/empty is handled without touching the process env (the
        // test runner is multi-threaded); exercise parse-level paths.
        assert!(FaultPlan::parse("   ").is_err());
        assert!(FaultPlan::parse("seed=9;delay:0->1:us=1").is_ok());
    }
}
