//! A compact, self-contained binary codec for operator snapshots, plus
//! the frame layer used by the real TCP transport.
//!
//! Checkpoints must serialize operator state to stable storage and
//! restore it bit-identically on recovery (§III-A step 2, §IV-C phase
//! 3). The workspace's approved dependency list has no serde *format*
//! crate, so this module provides the (small) wire format: length-
//! prefixed, little-endian, with per-item type tags so decoding errors
//! are detected instead of misinterpreted.
//!
//! The framing helpers ([`write_frame`], [`read_frame`],
//! [`FrameDecoder`]) carry arbitrary encoded payloads over a byte
//! stream (a `TcpStream` in `ms-wire`, a file in its stable store):
//! each frame is a 4-byte little-endian payload length followed by the
//! payload. TCP guarantees in-order, loss-free delivery (§III); the
//! length prefix restores *message* boundaries on top of that byte
//! stream, and a bounded [`MAX_FRAME_BYTES`] keeps a corrupt or
//! hostile length from forcing a giant allocation.

use bytes::{Buf, BufMut};

use crate::error::{Error, Result};
use crate::ids::OperatorId;
use crate::time::SimTime;
use crate::tuple::Tuple;
use crate::value::Value;

/// Type tags guarding each encoded item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum Tag {
    U64 = 1,
    I64 = 2,
    F64 = 3,
    Str = 4,
    Bytes = 5,
    ValueInt = 16,
    ValueFloat = 17,
    ValueStr = 18,
    ValueList = 19,
    ValueBlob = 20,
    Tuple = 32,
}

impl Tag {
    fn from_u8(b: u8) -> Result<Tag> {
        Ok(match b {
            1 => Tag::U64,
            2 => Tag::I64,
            3 => Tag::F64,
            4 => Tag::Str,
            5 => Tag::Bytes,
            16 => Tag::ValueInt,
            17 => Tag::ValueFloat,
            18 => Tag::ValueStr,
            19 => Tag::ValueList,
            20 => Tag::ValueBlob,
            32 => Tag::Tuple,
            other => return Err(Error::Codec(format!("unknown tag byte {other}"))),
        })
    }
}

/// Serializes operator state into a byte buffer.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> SnapshotWriter {
        SnapshotWriter::default()
    }

    /// Creates a writer whose buffer is pre-sized for roughly
    /// `logical_bytes` of encoded state. Operators know their state
    /// size up front (`state_size()`), so snapshotting can allocate
    /// once instead of growing the buffer through repeated doubling.
    pub fn with_capacity(logical_bytes: usize) -> SnapshotWriter {
        SnapshotWriter {
            buf: Vec::with_capacity(logical_bytes),
        }
    }

    /// Reserves room for at least `additional` more encoded bytes.
    pub fn reserve(&mut self, additional: usize) -> &mut Self {
        self.buf.reserve(additional);
        self
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes an unsigned 64-bit integer.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u8(Tag::U64 as u8);
        self.buf.put_u64_le(v);
        self
    }

    /// Writes a signed 64-bit integer.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.put_u8(Tag::I64 as u8);
        self.buf.put_i64_le(v);
        self
    }

    /// Writes a 64-bit float.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_u8(Tag::F64 as u8);
        self.buf.put_f64_le(v);
        self
    }

    /// Writes a string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.buf.put_u8(Tag::Str as u8);
        self.buf.put_u64_le(v.len() as u64);
        self.buf.put_slice(v.as_bytes());
        self
    }

    /// Writes a raw byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u8(Tag::Bytes as u8);
        self.buf.put_u64_le(v.len() as u64);
        self.buf.put_slice(v);
        self
    }

    /// Writes a [`Value`].
    pub fn put_value(&mut self, v: &Value) -> &mut Self {
        match v {
            Value::Int(x) => {
                self.buf.put_u8(Tag::ValueInt as u8);
                self.buf.put_i64_le(*x);
            }
            Value::Float(x) => {
                self.buf.put_u8(Tag::ValueFloat as u8);
                self.buf.put_f64_le(*x);
            }
            Value::Str(s) => {
                self.buf.put_u8(Tag::ValueStr as u8);
                self.buf.put_u64_le(s.len() as u64);
                self.buf.put_slice(s.as_bytes());
            }
            Value::List(vs) => {
                self.buf.put_u8(Tag::ValueList as u8);
                self.buf.put_u64_le(vs.len() as u64);
                for v in vs {
                    self.put_value(v);
                }
            }
            Value::Blob {
                logical_bytes,
                digest,
            } => {
                self.buf.put_u8(Tag::ValueBlob as u8);
                self.buf.put_u64_le(*logical_bytes);
                self.buf.put_u64_le(digest.len() as u64);
                for d in digest {
                    self.buf.put_f32_le(*d);
                }
            }
        }
        self
    }

    /// Writes a [`Tuple`].
    pub fn put_tuple(&mut self, t: &Tuple) -> &mut Self {
        self.buf.put_u8(Tag::Tuple as u8);
        self.buf.put_u32_le(t.producer.0);
        self.buf.put_u64_le(t.seq);
        self.buf.put_u64_le(t.source_time.as_micros());
        self.buf.put_u64_le(t.fields.len() as u64);
        for f in &t.fields {
            self.put_value(f);
        }
        self
    }

    /// Exact encoded size of one [`Value`] under [`SnapshotWriter::put_value`].
    /// Note this is the *wire* size, not the logical size: a `Blob`
    /// encodes as a fixed header plus its digest, regardless of how many
    /// logical bytes it stands for, so pre-sizing snapshot buffers with
    /// this (rather than `state_size()`) stays proportional to the real
    /// allocation.
    pub fn encoded_value_bytes(v: &Value) -> usize {
        match v {
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 9 + s.len(),
            Value::List(vs) => 9 + vs.iter().map(Self::encoded_value_bytes).sum::<usize>(),
            Value::Blob { digest, .. } => 17 + 4 * digest.len(),
        }
    }

    /// Exact encoded size of one [`Tuple`] under [`SnapshotWriter::put_tuple`].
    pub fn encoded_tuple_bytes(t: &Tuple) -> usize {
        29 + t
            .fields
            .iter()
            .map(Self::encoded_value_bytes)
            .sum::<usize>()
    }

    /// Writes a homogeneous sequence using the provided element writer.
    pub fn put_seq<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut write: impl FnMut(&mut Self, T),
    ) -> &mut Self {
        self.put_u64(items.len() as u64);
        for item in items {
            write(self, item);
        }
        self
    }
}

// ---------------- frame layer ----------------

/// Largest frame payload the decoder will accept (64 MiB). A length
/// prefix beyond this is treated as stream corruption, not a request
/// to allocate.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Largest frame payload in a checkpoint *file* (1 GiB). Checkpoint
/// files are trusted local artifacts written atomically by this very
/// process family — unlike a TCP peer's bytes — and a full snapshot's
/// size scales with operator state, so they get a far looser bound
/// than the wire. Readers of checkpoint files must use
/// [`FrameDecoder::with_limit`] with this cap.
pub const MAX_FILE_FRAME_BYTES: usize = 1 << 30;

/// Bytes of framing overhead per frame (the length prefix).
pub const FRAME_HEADER_BYTES: usize = 4;

fn check_frame_len(len: usize) -> Result<()> {
    if len > MAX_FRAME_BYTES {
        return Err(Error::Wire(format!(
            "frame length {len} exceeds MAX_FRAME_BYTES {MAX_FRAME_BYTES}"
        )));
    }
    Ok(())
}

/// Encodes one frame (length prefix + payload) into a fresh buffer.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.extend_from_slice(payload);
    out
}

/// Encodes a run of tuples as concatenated length-prefixed frames —
/// one frame per tuple, each payload exactly
/// [`SnapshotWriter::put_tuple`]'s encoding — into a single pre-sized
/// buffer. The result is byte-identical to framing each tuple
/// individually, which is what lets the preservation log group-commit
/// a whole batch with one buffer and one write while keeping its
/// on-disk format (and torn-tail detection) unchanged.
pub fn frame_tuples<'a, I>(tuples: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a Tuple>,
    I::IntoIter: Clone,
{
    let iter = tuples.into_iter();
    let total: usize = iter
        .clone()
        .map(|t| FRAME_HEADER_BYTES + SnapshotWriter::encoded_tuple_bytes(t))
        .sum();
    let mut w = SnapshotWriter::with_capacity(total);
    for t in iter {
        w.buf
            .put_u32_le(SnapshotWriter::encoded_tuple_bytes(t) as u32);
        w.put_tuple(t);
    }
    w.finish()
}

/// Writes one frame to a byte sink (socket, file). The payload must
/// not exceed [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> Result<()> {
    check_frame_len(payload.len())?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame from a byte source. Returns `Ok(None)` on a clean
/// end-of-stream (EOF exactly at a frame boundary); EOF in the middle
/// of a frame is a torn frame and errors.
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::Wire(format!(
                    "torn frame: EOF after {got} of {FRAME_HEADER_BYTES} header bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    check_frame_len(len)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Wire(format!("torn frame: EOF inside {len}-byte payload"))
        } else {
            e.into()
        }
    })?;
    Ok(Some(payload))
}

/// Incremental frame decoder for callers that receive bytes in
/// arbitrary chunks (non-blocking reads, replaying a log tail). Feed
/// bytes in with [`FrameDecoder::feed`], pop complete frames with
/// [`FrameDecoder::next_frame`]; partial frames stay buffered until
/// their remaining bytes arrive, so torn reads — down to one byte at a
/// time — reassemble losslessly.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted away once
    /// they outnumber the live remainder.
    pos: usize,
    /// Largest payload this decoder accepts before declaring the
    /// stream corrupt.
    limit: usize,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            limit: MAX_FRAME_BYTES,
        }
    }
}

impl FrameDecoder {
    /// Creates an empty decoder with the wire cap ([`MAX_FRAME_BYTES`]).
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Creates an empty decoder accepting payloads up to `limit` bytes
    /// (e.g. [`MAX_FILE_FRAME_BYTES`] for checkpoint files).
    pub fn with_limit(limit: usize) -> FrameDecoder {
        FrameDecoder {
            limit,
            ..FrameDecoder::default()
        }
    }

    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame, if one is fully buffered.
    /// `Ok(None)` means "need more bytes"; an oversized length prefix
    /// errors immediately.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let avail = self.buf.len() - self.pos;
        if avail < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let header: [u8; FRAME_HEADER_BYTES] = self.buf[self.pos..self.pos + FRAME_HEADER_BYTES]
            .try_into()
            .expect("header slice");
        let len = u32::from_le_bytes(header) as usize;
        if len > self.limit {
            return Err(Error::Wire(format!(
                "frame length {len} exceeds decoder limit {}",
                self.limit
            )));
        }
        if avail < FRAME_HEADER_BYTES + len {
            return Ok(None);
        }
        let start = self.pos + FRAME_HEADER_BYTES;
        let payload = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        if self.pos >= self.buf.len() - self.pos {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(payload))
    }
}

/// Deserializes operator state from a byte buffer.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
}

impl<'a> SnapshotReader<'a> {
    /// Wraps an encoded buffer.
    pub fn new(buf: &'a [u8]) -> SnapshotReader<'a> {
        SnapshotReader { buf }
    }

    /// True if the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.buf.is_empty()
    }

    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.buf.remaining() < n {
            Err(Error::Codec(format!(
                "truncated snapshot: need {n} bytes for {what}, have {}",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    fn expect_tag(&mut self, want: Tag) -> Result<()> {
        self.need(1, "tag")?;
        let got = Tag::from_u8(self.buf.get_u8())?;
        if got != want {
            return Err(Error::Codec(format!("expected {want:?}, found {got:?}")));
        }
        Ok(())
    }

    /// Reads an unsigned 64-bit integer.
    pub fn get_u64(&mut self) -> Result<u64> {
        self.expect_tag(Tag::U64)?;
        self.need(8, "u64")?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads a signed 64-bit integer.
    pub fn get_i64(&mut self) -> Result<i64> {
        self.expect_tag(Tag::I64)?;
        self.need(8, "i64")?;
        Ok(self.buf.get_i64_le())
    }

    /// Reads a 64-bit float.
    pub fn get_f64(&mut self) -> Result<f64> {
        self.expect_tag(Tag::F64)?;
        self.need(8, "f64")?;
        Ok(self.buf.get_f64_le())
    }

    fn get_len(&mut self) -> Result<usize> {
        self.need(8, "length")?;
        let len = self.buf.get_u64_le();
        if len > self.buf.remaining() as u64 {
            return Err(Error::Codec(format!(
                "length {len} exceeds remaining {}",
                self.buf.remaining()
            )));
        }
        Ok(len as usize)
    }

    /// Reads a string.
    pub fn get_str(&mut self) -> Result<String> {
        self.expect_tag(Tag::Str)?;
        let len = self.get_len()?;
        let bytes = self.buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec()).map_err(|e| Error::Codec(e.to_string()))
    }

    /// Reads a raw byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        self.expect_tag(Tag::Bytes)?;
        let len = self.get_len()?;
        Ok(self.buf.copy_to_bytes(len).to_vec())
    }

    /// Reads a [`Value`].
    pub fn get_value(&mut self) -> Result<Value> {
        self.need(1, "value tag")?;
        let tag = Tag::from_u8(self.buf.get_u8())?;
        Ok(match tag {
            Tag::ValueInt => {
                self.need(8, "int value")?;
                Value::Int(self.buf.get_i64_le())
            }
            Tag::ValueFloat => {
                self.need(8, "float value")?;
                Value::Float(self.buf.get_f64_le())
            }
            Tag::ValueStr => {
                let len = self.get_len()?;
                let bytes = self.buf.copy_to_bytes(len);
                Value::Str(
                    String::from_utf8(bytes.to_vec()).map_err(|e| Error::Codec(e.to_string()))?,
                )
            }
            Tag::ValueList => {
                let len = self.get_len()?;
                let mut vs = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    vs.push(self.get_value()?);
                }
                Value::List(vs)
            }
            Tag::ValueBlob => {
                self.need(16, "blob header")?;
                let logical_bytes = self.buf.get_u64_le();
                let n = self.buf.get_u64_le() as usize;
                self.need(n * 4, "blob digest")?;
                let mut digest = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    digest.push(self.buf.get_f32_le());
                }
                Value::Blob {
                    logical_bytes,
                    digest,
                }
            }
            other => return Err(Error::Codec(format!("expected a Value tag, got {other:?}"))),
        })
    }

    /// Reads a [`Tuple`].
    pub fn get_tuple(&mut self) -> Result<Tuple> {
        self.expect_tag(Tag::Tuple)?;
        self.need(4 + 8 + 8 + 8, "tuple header")?;
        let producer = OperatorId(self.buf.get_u32_le());
        let seq = self.buf.get_u64_le();
        let source_time = SimTime::from_micros(self.buf.get_u64_le());
        let nfields = self.buf.get_u64_le() as usize;
        let mut fields = Vec::with_capacity(nfields.min(1 << 16));
        for _ in 0..nfields {
            fields.push(self.get_value()?);
        }
        Ok(Tuple {
            producer,
            seq,
            source_time,
            fields: fields.into(),
        })
    }

    /// Reads a homogeneous sequence using the provided element reader.
    pub fn get_seq<T>(&mut self, mut read: impl FnMut(&mut Self) -> Result<T>) -> Result<Vec<T>> {
        let len = self.get_u64()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(read(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.put_u64(42).put_i64(-7).put_f64(2.5).put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = SnapshotReader::new(&buf);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_i64().unwrap(), -7);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn value_roundtrip() {
        let v = Value::List(vec![
            Value::Int(1),
            Value::Float(0.5),
            Value::Str("s".into()),
            Value::Blob {
                logical_bytes: 1 << 20,
                digest: vec![1.0, 2.0],
            },
        ]);
        let mut w = SnapshotWriter::new();
        w.put_value(&v);
        let buf = w.finish();
        let mut r = SnapshotReader::new(&buf);
        assert_eq!(r.get_value().unwrap(), v);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = Tuple::new(
            OperatorId(9),
            1234,
            SimTime::from_micros(777),
            vec![Value::Int(5), Value::blob(100)],
        );
        let mut w = SnapshotWriter::new();
        w.put_tuple(&t);
        let buf = w.finish();
        let mut r = SnapshotReader::new(&buf);
        assert_eq!(r.get_tuple().unwrap(), t);
    }

    #[test]
    fn seq_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.put_seq([10u64, 20, 30].into_iter(), |w, v| {
            w.put_u64(v);
        });
        let buf = w.finish();
        let mut r = SnapshotReader::new(&buf);
        let out = r.get_seq(|r| r.get_u64()).unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn encoded_size_helpers_are_exact() {
        let values = [
            Value::Int(1),
            Value::Float(0.5),
            Value::Str("hello".into()),
            Value::List(vec![Value::Int(1), Value::Str("ab".into())]),
            Value::Blob {
                logical_bytes: 1 << 30,
                digest: vec![1.0, 2.0, 3.0],
            },
        ];
        for v in &values {
            let mut w = SnapshotWriter::new();
            w.put_value(v);
            assert_eq!(
                SnapshotWriter::encoded_value_bytes(v),
                w.finish().len(),
                "size mismatch for {v:?}"
            );
        }
        let t = Tuple::new(OperatorId(3), 7, SimTime::from_micros(11), values.to_vec());
        let mut w = SnapshotWriter::new();
        w.put_tuple(&t);
        assert_eq!(SnapshotWriter::encoded_tuple_bytes(&t), w.finish().len());
    }

    #[test]
    fn tag_mismatch_is_detected() {
        let mut w = SnapshotWriter::new();
        w.put_u64(1);
        let buf = w.finish();
        let mut r = SnapshotReader::new(&buf);
        assert!(r.get_i64().is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = SnapshotWriter::new();
        w.put_str("a longer string payload");
        let buf = w.finish();
        let mut r = SnapshotReader::new(&buf[..buf.len() - 4]);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn hostile_length_is_rejected() {
        // A length prefix far beyond the buffer must error, not allocate.
        let mut raw = vec![4u8]; // Tag::Str
        raw.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut r = SnapshotReader::new(&raw);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn frame_roundtrip_over_a_stream() {
        let payloads: [&[u8]; 3] = [b"", b"x", b"hello frames"];
        let mut stream = Vec::new();
        for p in payloads {
            write_frame(&mut stream, p).unwrap();
        }
        let mut cursor = std::io::Cursor::new(stream);
        for p in payloads {
            assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), p);
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None); // clean EOF
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"payload").unwrap();
        // EOF inside the payload.
        let mut cursor = std::io::Cursor::new(&stream[..stream.len() - 3]);
        assert!(matches!(read_frame(&mut cursor), Err(Error::Wire(_))));
        // EOF inside the header.
        let mut cursor = std::io::Cursor::new(&stream[..2]);
        assert!(matches!(read_frame(&mut cursor), Err(Error::Wire(_))));
    }

    #[test]
    fn oversized_frame_is_rejected_on_both_sides() {
        let mut sink = Vec::new();
        let big = vec![0u8; 8];
        // Writer side: only the declared-length check can fire without
        // allocating MAX_FRAME_BYTES here, so fake a hostile header for
        // the reader/decoder sides.
        assert!(write_frame(&mut sink, &big).is_ok());
        let hostile = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        let mut cursor = std::io::Cursor::new(hostile.to_vec());
        assert!(matches!(read_frame(&mut cursor), Err(Error::Wire(_))));
        let mut dec = FrameDecoder::new();
        dec.feed(&hostile);
        assert!(matches!(dec.next_frame(), Err(Error::Wire(_))));
    }

    #[test]
    fn decoder_limit_is_configurable() {
        // A checkpoint-file reader raises the cap; payloads between
        // the wire and file caps decode with the loose limit and fail
        // with the default one.
        let payload = vec![3u8; 16];
        let framed = frame(&payload);
        let mut loose = FrameDecoder::with_limit(16);
        loose.feed(&framed);
        assert_eq!(loose.next_frame().unwrap(), Some(payload));
        let mut tight = FrameDecoder::with_limit(15);
        tight.feed(&framed);
        assert!(matches!(tight.next_frame(), Err(Error::Wire(_))));
    }

    #[test]
    fn frame_tuples_is_byte_identical_to_individual_frames() {
        let tuples: Vec<Tuple> = (0..4)
            .map(|seq| {
                Tuple::new(
                    OperatorId(2),
                    seq,
                    SimTime::from_micros(seq * 3),
                    vec![Value::Int(seq as i64), Value::Str(format!("p{seq}"))],
                )
            })
            .collect();
        let mut individual = Vec::new();
        for t in &tuples {
            let mut w = SnapshotWriter::new();
            w.put_tuple(t);
            individual.extend_from_slice(&frame(&w.finish()));
        }
        let batched = frame_tuples(tuples.iter());
        assert_eq!(batched, individual);
        // And the batch decodes back through the plain frame decoder.
        let mut dec = FrameDecoder::new();
        dec.feed(&batched);
        for t in &tuples {
            let p = dec.next_frame().unwrap().unwrap();
            assert_eq!(&SnapshotReader::new(&p).get_tuple().unwrap(), t);
        }
        assert_eq!(dec.buffered(), 0);
        assert!(frame_tuples(std::iter::empty()).is_empty());
    }

    #[test]
    fn decoder_reassembles_one_byte_feeds() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], (0..=255).collect()];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&frame(p));
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in stream {
            dec.feed(&[b]);
            while let Some(p) = dec.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, payloads);
        assert_eq!(dec.buffered(), 0);
    }
}
