//! Checkpoint tokens (§III).
//!
//! A token is "a piece of data embedded in the dataflow as an extra
//! field in a tuple. It conveys a checkpoint command, and incurs very
//! small overhead." Tokens delimit the *stream boundary*: in a stream
//! between two neighbouring HAUs, tuples preceding the token belong to
//! the downstream HAU's checkpoint, tuples succeeding it to the
//! upstream HAU's (Fig. 6). That boundary is what guarantees no tuple
//! is missed or processed twice across a recovery.

use serde::{Deserialize, Serialize};

use crate::ids::{EpochId, HauId};

/// How far a token travels before being consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// MS-src tokens: forwarded hop by hop down the query network after
    /// each HAU's (synchronous) individual checkpoint.
    Propagating,
    /// MS-src+ap / MS-src+ap+aa tokens: emitted by every HAU to its
    /// immediate downstream neighbours upon the controller's broadcast
    /// command, then *discarded* after triggering the receiver's
    /// checkpoint ("1-hop tokens", §III-B).
    OneHop,
}

/// A checkpoint token flowing through a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// The application-wide checkpoint this token belongs to.
    pub epoch: EpochId,
    /// The HAU that placed this token into the stream.
    pub emitter: HauId,
    /// Propagating (MS-src) or 1-hop (MS-src+ap).
    pub kind: TokenKind,
}

impl Token {
    /// Wire size charged by the network cost model. Tokens ride in the
    /// dataflow as an extra field of a tuple, so their cost is a few
    /// bytes of header.
    pub const WIRE_BYTES: u64 = 16;

    /// Creates a propagating (MS-src) token.
    pub fn propagating(epoch: EpochId, emitter: HauId) -> Token {
        Token {
            epoch,
            emitter,
            kind: TokenKind::Propagating,
        }
    }

    /// Creates a 1-hop (MS-src+ap) token.
    pub fn one_hop(epoch: EpochId, emitter: HauId) -> Token {
        Token {
            epoch,
            emitter,
            kind: TokenKind::OneHop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_tag_kind() {
        let t = Token::propagating(EpochId(1), HauId(2));
        assert_eq!(t.kind, TokenKind::Propagating);
        let t = Token::one_hop(EpochId(1), HauId(2));
        assert_eq!(t.kind, TokenKind::OneHop);
        assert_eq!(t.epoch, EpochId(1));
        assert_eq!(t.emitter, HauId(2));
    }
}
