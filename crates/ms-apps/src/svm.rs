//! A linear SVM trained with SGD on the hinge loss — the prediction
//! kernel of SignalGuru's `P` operators (§II-B2: "SVM Prediction
//! Model" predicting traffic-signal transition times).

use ms_sim::DetRng;

/// A linear classifier `sign(w·x + b)`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearSvm {
    /// Feature weights.
    pub w: Vec<f64>,
    /// Bias.
    pub b: f64,
}

impl LinearSvm {
    /// Zero-initialized model of the given dimensionality.
    pub fn new(dim: usize) -> LinearSvm {
        LinearSvm {
            w: vec![0.0; dim],
            b: 0.0,
        }
    }

    /// The decision value `w·x + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.w.iter().zip(x).map(|(w, x)| w * x).sum::<f64>() + self.b
    }

    /// The predicted label (`+1` / `-1`).
    pub fn predict(&self, x: &[f64]) -> i8 {
        if self.decision(x) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// One SGD epoch of hinge-loss training with L2 regularization,
    /// visiting samples in a seeded random order. Labels must be ±1.
    pub fn train_epoch(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[i8],
        lr: f64,
        lambda: f64,
        rng: &mut DetRng,
    ) {
        debug_assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return;
        }
        let mut order: Vec<usize> = (0..xs.len()).collect();
        // Fisher–Yates with the deterministic stream.
        for i in (1..order.len()).rev() {
            let j = rng.range_u64(0, (i + 1) as u64) as usize;
            order.swap(i, j);
        }
        for &i in &order {
            let y = f64::from(ys[i]);
            let margin = y * self.decision(&xs[i]);
            // L2 shrink.
            for w in &mut self.w {
                *w *= 1.0 - lr * lambda;
            }
            if margin < 1.0 {
                for (w, &x) in self.w.iter_mut().zip(&xs[i]) {
                    *w += lr * y * x;
                }
                self.b += lr * y;
            }
        }
    }

    /// Trains for `epochs` epochs; returns final training accuracy.
    pub fn train(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[i8],
        epochs: usize,
        lr: f64,
        rng: &mut DetRng,
    ) -> f64 {
        for _ in 0..epochs {
            self.train_epoch(xs, ys, lr, 1e-4, rng);
        }
        self.accuracy(xs, ys)
    }

    /// Fraction of samples classified correctly.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[i8]) -> f64 {
        if xs.is_empty() {
            return 1.0;
        }
        let hits = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        hits as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(rng: &mut DetRng, n: usize) -> (Vec<Vec<f64>>, Vec<i8>) {
        // Separating plane: x0 + 2*x1 - 1 > 0.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x = vec![rng.range_f64(-2.0, 2.0), rng.range_f64(-2.0, 2.0)];
            let side = x[0] + 2.0 * x[1] - 1.0;
            if side.abs() < 0.2 {
                continue; // margin gap
            }
            ys.push(if side > 0.0 { 1 } else { -1 });
            xs.push(x);
        }
        (xs, ys)
    }

    #[test]
    fn learns_a_separable_problem() {
        let mut rng = DetRng::new(5);
        let (xs, ys) = linearly_separable(&mut rng, 400);
        let mut m = LinearSvm::new(2);
        let acc = m.train(&xs, &ys, 30, 0.05, &mut rng);
        assert!(acc > 0.97, "training accuracy {acc}");
    }

    #[test]
    fn deterministic_training() {
        let mut r1 = DetRng::new(9);
        let (xs, ys) = linearly_separable(&mut r1, 200);
        let mut a = LinearSvm::new(2);
        let mut b = LinearSvm::new(2);
        a.train(&xs, &ys, 5, 0.1, &mut DetRng::new(1));
        b.train(&xs, &ys, 5, 0.1, &mut DetRng::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_training_is_a_noop() {
        let mut m = LinearSvm::new(3);
        let acc = m.train(&[], &[], 10, 0.1, &mut DetRng::new(1));
        assert_eq!(acc, 1.0);
        assert_eq!(m.w, vec![0.0; 3]);
    }
}
