//! Operator building blocks shared by the three applications.

use ms_core::codec::{SnapshotReader, SnapshotWriter};
use ms_core::ids::PortId;
use ms_core::operator::{Operator, OperatorContext, OperatorSnapshot};
use ms_core::time::SimDuration;
use ms_core::tuple::Tuple;

/// A counting sink.
#[derive(Default)]
pub struct SinkOp {
    /// Tuples received.
    pub received: u64,
}

impl Operator for SinkOp {
    fn kind(&self) -> &'static str {
        "Sink"
    }

    fn on_tuple(&mut self, _p: PortId, _t: Tuple, _ctx: &mut dyn OperatorContext) {
        self.received += 1;
    }

    fn service_time(&self, _t: &Tuple) -> SimDuration {
        SimDuration::from_micros(500)
    }

    fn state_size(&self) -> u64 {
        8
    }

    fn snapshot(&self) -> OperatorSnapshot {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.received);
        OperatorSnapshot {
            data: w.finish(),
            logical_bytes: 8,
        }
    }

    fn restore(&mut self, s: &OperatorSnapshot) -> ms_core::Result<()> {
        self.received = SnapshotReader::new(&s.data).get_u64()?;
        Ok(())
    }
}

/// Test double for [`OperatorContext`], used by the per-app unit
/// tests.
#[cfg(test)]
pub(crate) mod testctx {
    use ms_core::ids::{OperatorId, PortId};
    use ms_core::operator::OperatorContext;
    use ms_core::time::SimTime;
    use ms_core::tuple::Fields;

    /// Collects emissions; deterministic LCG randomness.
    pub struct TestCtx {
        /// Emissions observed.
        pub emitted: Vec<(PortId, Fields)>,
        fanout: usize,
        seed: u64,
        /// Value returned by `now()`.
        pub now: SimTime,
    }

    impl TestCtx {
        pub fn new(fanout: usize) -> TestCtx {
            TestCtx {
                emitted: Vec::new(),
                fanout,
                seed: 1,
                now: SimTime::ZERO,
            }
        }
    }

    impl OperatorContext for TestCtx {
        fn emit_fields(&mut self, port: PortId, fields: Fields) {
            self.emitted.push((port, fields));
        }
        fn emit_all_fields(&mut self, fields: Fields) {
            for p in 0..self.fanout {
                self.emitted.push((PortId(p as u32), fields.clone()));
            }
        }
        fn now(&self) -> SimTime {
            self.now
        }
        fn self_id(&self) -> OperatorId {
            OperatorId(0)
        }
        fn rand_f64(&mut self) -> f64 {
            (self.rand_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
        fn rand_u64(&mut self) -> u64 {
            self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.seed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_core::ids::OperatorId;
    use ms_core::time::SimTime;

    #[test]
    fn sink_counts_and_roundtrips() {
        let mut s = SinkOp::default();
        let mut ctx = testctx::TestCtx::new(0);
        for i in 0..3 {
            s.on_tuple(
                PortId(0),
                Tuple::new(OperatorId(0), i, SimTime::ZERO, vec![]),
                &mut ctx,
            );
        }
        assert_eq!(s.received, 3);
        let snap = s.snapshot();
        let mut fresh = SinkOp::default();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.received, 3);
    }
}
