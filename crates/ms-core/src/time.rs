//! Virtual time.
//!
//! Every layer of the reproduction — the discrete-event kernel, the
//! network and storage cost models, the checkpoint schemes and the
//! evaluation harness — agrees on a single clock domain: microseconds
//! since simulation start, stored in a `u64`. A microsecond tick is fine
//! enough to resolve per-tuple service times (tens of microseconds) and
//! large enough that a `u64` covers ~584,000 years of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// sentinel for deadlines that are not currently armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond and saturating at zero for negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float factor, rounding to
    /// the nearest microsecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// Computes the virtual time needed to move `bytes` at `bytes_per_sec`.
///
/// This is the single conversion used by every bandwidth-driven cost
/// model (network links, shared storage, local disks), so rounding is
/// consistent across substrates. Zero bandwidth yields
/// [`SimDuration::MAX`] (the transfer never completes), which models a
/// fully partitioned or failed device.
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> SimDuration {
    if bytes_per_sec == 0 {
        return SimDuration::MAX;
    }
    let us = (bytes as u128 * 1_000_000u128).div_ceil(bytes_per_sec as u128);
    SimDuration::from_micros(us.min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!((t - SimTime::from_secs(10)).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(4) * 3, SimDuration::from_secs(12));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_basic() {
        // 100 MB at 100 MB/s is one second.
        assert_eq!(
            transfer_time(100_000_000, 100_000_000),
            SimDuration::from_secs(1)
        );
        // Rounds up to at least one microsecond for any nonzero payload.
        assert_eq!(transfer_time(1, 1_000_000_000), SimDuration::from_micros(1));
        assert_eq!(transfer_time(0, 1_000), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_zero_bandwidth_is_never() {
        assert_eq!(transfer_time(1, 0), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(0.25),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs(1).mul_f64(-3.0), SimDuration::ZERO);
    }
}
