//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the minimal API surface it actually uses: the [`RngCore`]
//! vocabulary trait that `ms-sim::DetRng` implements. All actual
//! random-number generation in this workspace is done by `DetRng`
//! itself (SplitMix64); nothing here generates numbers.

#![warn(missing_docs)]

/// The core random-number-generator interface (as in `rand` 0.9).
pub trait RngCore {
    /// Next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}
