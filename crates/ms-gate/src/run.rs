//! [`run_gate`]: the gateway event loop — one thread, any number of
//! producer connections.
//!
//! The loop multiplexes a nonblocking listener plus every producer
//! socket on [`ms_net::ready::poll`], exactly like `ms-wire`'s
//! event-loop worker: no thread-per-connection, O(1) gateway threads
//! regardless of producer count. Per connection it keeps a
//! [`FrameDecoder`] for inbound frames and a pending-ack buffer
//! drained on write readiness, so a slow producer can never stall the
//! loop.
//!
//! The durability order per accepted batch is the whole contract:
//! admit → stamp tuples → append to the preservation log (`Err` is
//! fatal: the gate stops streaming rather than ack unpreserved data)
//! → route onto engine edges → queue `Accepted`. Under group commit
//! (the default), the loop *stages* every batch admitted during one
//! poll turn — across all ready producer connections — and commits
//! the lot with a single [`StableStore::append_log_batch`]: one lock,
//! one encode buffer, one `write(2)` for the whole group. Only after
//! that append returns are the tuples routed and the `Accepted` /
//! `FinOk` acks queued, so the contract is unchanged: an ack still
//! implies durability, and a storage error still kills the gate with
//! nothing from the group acked. A SIGKILL between WAL and ack
//! re-delivers via the producer's retry, which the rebuilt dedup
//! table answers with `Accepted` and no re-admission.
//!
//! Checkpoints ride the same [`SourceCmd`] channel as every source
//! host: mark the stream boundary durably, hand the dedup snapshot to
//! the persister, broadcast the token, reopen the admission window.

use std::fs;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{Receiver, Sender, TryRecvError};
use ms_core::codec::{frame, FrameDecoder, SnapshotWriter, FRAME_HEADER_BYTES};
use ms_core::error::{Error, Result};
use ms_core::gate::{GateConfig, GateMsg};
use ms_core::ids::{EpochId, OperatorId, PortId};
use ms_core::metrics::OperatorMeter;
use ms_core::operator::{DeferredSnapshot, Operator, OperatorContext, OperatorSnapshot};
use ms_core::tuple::Tuple;
use ms_live::{HostExit, OutputRoute, PersistItem, SourceCmd, StableStore};
use ms_net::ready::{poll, Interest, PollTarget};

use crate::admission::{Admission, GateCore};
use crate::meter::GateMeter;

/// Poll timeout: bounds how stale a [`SourceCmd`] can go unseen while
/// no socket is active.
const POLL_MS: i32 = 20;
const READ_CHUNK: usize = 64 * 1024;

#[cfg(unix)]
fn fd(sock: &impl std::os::unix::io::AsRawFd) -> PollTarget {
    sock.as_raw_fd()
}
#[cfg(not(unix))]
fn fd<T>(_sock: &T) -> PollTarget {
    0
}

/// Everything [`run_gate`] needs to host one gateway HAU.
pub struct GateWiring {
    /// The gateway's operator id (stamped on emitted tuples).
    pub op_id: OperatorId,
    /// Admission/pre-agg configuration.
    pub cfg: GateConfig,
    /// One route per logical consumer; every emitted tuple is
    /// delivered to each route (a gateway fans out like a source).
    pub outputs: Vec<OutputRoute>,
    /// Controller command channel (checkpoint/stop) — a gateway is a
    /// source host.
    pub cmd: Receiver<SourceCmd>,
    /// Listen address (`"127.0.0.1:0"` picks a free port).
    pub listen: String,
    /// Where to publish the bound address (temp file + atomic rename),
    /// so producers discover the gate after every (re)deploy. `None`
    /// skips publication.
    pub addr_file: Option<PathBuf>,
    /// Restored checkpoint (dedup snapshot + `next_seq`), if any.
    pub restored: Option<OperatorSnapshot>,
    /// First emission sequence (the restored checkpoint's `next_seq`,
    /// else 0).
    pub restored_seq: u64,
    /// Preserved tuples to resend before accepting traffic (recovery);
    /// also rebuilds the dedup table for batches WAL'd after the mark.
    pub replay: Vec<Tuple>,
    /// Gateway-specific counters (always on; cheap atomics).
    pub meter: Arc<GateMeter>,
    /// Standard per-operator meter (checkpoint phases, tuples out);
    /// `None` disables.
    pub telemetry: Option<Arc<OperatorMeter>>,
    /// Commit every batch admitted in one poll turn with a single
    /// group append (one WAL write across producers) instead of one
    /// append per tuple. Production gates keep this on; the off
    /// position exists to measure the per-tuple baseline.
    pub group_commit: bool,
}

/// The inert [`Operator`] a finished gateway hands back in its
/// [`HostExit`] — it carries the final dedup snapshot so generic exit
/// handling (which expects an operator) keeps working.
pub struct GateOp {
    state: OperatorSnapshot,
}

impl GateOp {
    /// Wraps a final gateway state.
    pub fn new(state: OperatorSnapshot) -> GateOp {
        GateOp { state }
    }
}

impl Operator for GateOp {
    fn kind(&self) -> &'static str {
        "Gate"
    }
    fn on_tuple(&mut self, _port: PortId, _tuple: Tuple, _ctx: &mut dyn OperatorContext) {}
    fn state_size(&self) -> u64 {
        self.state.logical_bytes
    }
    fn snapshot(&self) -> OperatorSnapshot {
        self.state.clone()
    }
    fn restore(&mut self, snapshot: &OperatorSnapshot) -> Result<()> {
        self.state = snapshot.clone();
        Ok(())
    }
}

/// One producer connection.
struct Conn {
    sock: TcpStream,
    dec: FrameDecoder,
    /// Pending ack bytes, drained on write readiness.
    out: Vec<u8>,
    /// Bound by the connection's `Hello`.
    producer: Option<u64>,
    gone: bool,
}

impl Conn {
    fn new(sock: TcpStream) -> Conn {
        Conn {
            sock,
            dec: FrameDecoder::new(),
            out: Vec::new(),
            producer: None,
            gone: false,
        }
    }

    fn queue(&mut self, msg: &GateMsg) {
        self.out.extend_from_slice(&frame(&msg.encode()));
    }

    /// Writes as much of the pending ack buffer as the socket takes.
    fn flush(&mut self) {
        while !self.out.is_empty() {
            match self.sock.write(&self.out) {
                Ok(0) => {
                    self.gone = true;
                    return;
                }
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.gone = true;
                    return;
                }
            }
        }
    }

    /// Reads everything currently available into the frame decoder.
    fn read_available(&mut self) {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match self.sock.read(&mut buf) {
                Ok(0) => {
                    self.gone = true;
                    return;
                }
                Ok(n) => self.dec.feed(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.gone = true;
                    return;
                }
            }
        }
    }
}

/// One accepted batch staged for this poll turn's group commit.
struct PendingAccept {
    /// Index of the producer connection to ack.
    conn: usize,
    /// Batch id for the `Accepted` ack.
    batch: u64,
    /// Producer events the batch carried (pre-agg input count).
    events: u64,
    /// `(offset, len)` of the batch's tuples inside [`Turn::wal`].
    range: (usize, usize),
    /// Admission instant, for the ack-latency meter.
    start: Instant,
}

/// Everything admitted during one poll turn, awaiting the turn's
/// single group append. Nothing in here is routed or acked until that
/// append returns — the staged form *is* the ack-after-WAL contract.
#[derive(Default)]
struct Turn {
    /// WAL records — pre-aggregated tuples and Fin markers — in
    /// admission (= sequence) order across every ready connection.
    wal: Vec<Tuple>,
    accepts: Vec<PendingAccept>,
    /// Connections owed a `FinOk` once the turn commits.
    fins: Vec<usize>,
}

impl Turn {
    fn is_empty(&self) -> bool {
        self.wal.is_empty() && self.accepts.is_empty() && self.fins.is_empty()
    }
}

/// Handles every decoded frame on one connection, staging admitted
/// work into `turn` for the end-of-turn group commit. Protocol
/// violations just drop the connection (producers are unreliable by
/// design); acks queued here (duplicates, sheds) are not flushed
/// until the turn commits, so no ack can overtake the group's WAL
/// append.
fn process_frames(
    conn_idx: usize,
    conn: &mut Conn,
    core: &mut GateCore,
    next_seq: &mut u64,
    turn: &mut Turn,
    meter: &GateMeter,
    all_fin: &mut bool,
) {
    while !conn.gone {
        let payload = match conn.dec.next_frame() {
            Ok(Some(p)) => p,
            Ok(None) => break,
            Err(_) => {
                conn.gone = true;
                break;
            }
        };
        let Ok(msg) = GateMsg::decode(&payload) else {
            conn.gone = true;
            break;
        };
        match msg {
            GateMsg::Hello { producer } => conn.producer = Some(producer),
            GateMsg::Batch { batch, events } => {
                let Some(producer) = conn.producer else {
                    conn.gone = true;
                    break;
                };
                let start = Instant::now();
                match core.admit(next_seq, producer, batch, &events) {
                    Admission::Accept(tuples) => {
                        // Stage for the group commit: the tuples are
                        // owned, so they move straight into the WAL
                        // batch — no per-tuple clone on this path.
                        let range = (turn.wal.len(), tuples.len());
                        turn.wal.extend(tuples);
                        turn.accepts.push(PendingAccept {
                            conn: conn_idx,
                            batch,
                            events: events.len() as u64,
                            range,
                            start,
                        });
                    }
                    Admission::Duplicate => {
                        // The original admission was WAL'd before its
                        // ack, so a duplicate can re-ack without
                        // touching storage. The queued bytes still
                        // only flush after this turn's commit.
                        conn.queue(&GateMsg::Accepted { batch });
                        meter.record_ack_us(start.elapsed().as_micros() as u64);
                    }
                    Admission::Shed => {
                        meter.record_shed();
                        conn.queue(&GateMsg::Busy {
                            batch,
                            retry_after_ms: core.retry_after_ms(),
                        });
                    }
                }
            }
            GateMsg::Fin { producer } => {
                conn.producer.get_or_insert(producer);
                // Ack-after-WAL for Fin too: the marker rides this
                // turn's group append, and FinOk is only queued after
                // it returns — so a durable FinOk still implies a
                // durable marker, a rollback past the last checkpoint
                // replays it, and the recovered gate counts the
                // producer as done. Retried Fins re-ack without
                // re-appending.
                if !core.is_finished(producer) {
                    let marker = core.fin_marker(next_seq, producer);
                    turn.wal.push(marker);
                }
                if core.fin(producer) {
                    *all_fin = true;
                }
                turn.fins.push(conn_idx);
            }
            // Gateway-to-producer messages arriving at the gateway are
            // a protocol violation.
            GateMsg::Accepted { .. } | GateMsg::Busy { .. } | GateMsg::FinOk => {
                conn.gone = true;
            }
        }
    }
}

/// Commits one poll turn: a single group append covering every batch
/// and Fin marker admitted this turn, then — and only then — routing,
/// metering, and ack queueing. `Err` means stable storage failed —
/// fatal for the whole gate, with nothing from the group acked.
#[allow(clippy::too_many_arguments)]
fn commit_turn(
    turn: &mut Turn,
    conns: &mut [Conn],
    outputs: &[OutputRoute],
    store: &Arc<dyn StableStore>,
    op_id: OperatorId,
    meter: &GateMeter,
    telemetry: &Option<Arc<OperatorMeter>>,
    group_commit: bool,
) -> Result<()> {
    if !turn.wal.is_empty() {
        if group_commit {
            store.append_log_batch(op_id, &turn.wal)?;
        } else {
            // Baseline mode: one lock/encode/write per tuple.
            for t in &turn.wal {
                store.append_log(op_id, t.clone())?;
            }
        }
    }
    for acc in turn.accepts.drain(..) {
        let tuples = &turn.wal[acc.range.0..acc.range.0 + acc.range.1];
        let mut wal_bytes = 0u64;
        let mut payload_bytes = 0u64;
        for t in tuples {
            wal_bytes += (SnapshotWriter::encoded_tuple_bytes(t) + FRAME_HEADER_BYTES) as u64;
            payload_bytes += t.payload_bytes();
        }
        for route in outputs {
            route.data_batch(tuples);
        }
        let n = tuples.len() as u64;
        if let Some(m) = telemetry {
            if n > 0 {
                m.add_tuples_out(n, payload_bytes);
            }
        }
        meter.record_accept(acc.events, n, wal_bytes);
        if let Some(c) = conns.get_mut(acc.conn) {
            c.queue(&GateMsg::Accepted { batch: acc.batch });
        }
        meter.record_ack_us(acc.start.elapsed().as_micros() as u64);
    }
    for ci in turn.fins.drain(..) {
        if let Some(c) = conns.get_mut(ci) {
            c.queue(&GateMsg::FinOk);
        }
    }
    turn.wal.clear();
    Ok(())
}

/// Runs one gateway HAU to completion on the current thread. Exits
/// when every expected producer has sent `Fin`, on [`SourceCmd::Stop`],
/// or on a stable-storage failure (reported in the exit record).
pub fn run_gate(
    mut w: GateWiring,
    store: Arc<dyn StableStore>,
    persist: Sender<PersistItem>,
) -> HostExit {
    let mut core = GateCore::new(w.op_id, w.cfg);
    let mut next_seq = w.restored_seq;
    let mut error: Option<Error> = None;

    let finish = |core: &GateCore, outputs: &[OutputRoute], error: Option<Error>| -> HostExit {
        for route in outputs {
            route.eos();
        }
        HostExit {
            op_id: w.op_id,
            op: Box::new(GateOp::new(core.snapshot())),
            error,
        }
    };

    if let Some(snapshot) = &w.restored {
        if let Err(e) = core.restore(snapshot) {
            return finish(&core, &w.outputs, Some(e));
        }
    }
    // Recovery: resend preserved tuples (they were durable — and their
    // batches possibly acked — before the crash), fold their batch ids
    // and Fin markers back into the admission state, and continue
    // sequence numbering past them. Fin markers are WAL-only: they
    // must not reach downstream operators, whose tuple counts would
    // diverge from the unfailed run.
    core.rebuild_from_replay(&w.replay);
    if let Some(last) = w.replay.last() {
        next_seq = next_seq.max(last.seq + 1);
    }
    let resend: Vec<Tuple> = w
        .replay
        .drain(..)
        .filter(|t| !crate::admission::is_fin_marker(t))
        .collect();
    if !resend.is_empty() {
        // The whole preserved run goes downstream as one batch per
        // route — replay is the worst case for per-tuple framing.
        for route in &w.outputs {
            let _ = route.data_batch(&resend);
        }
    }
    // Every expected producer already Fin'd before the crash: their
    // FinOk acks were durable promises, so the recovered gate closes
    // the stream instead of waiting forever for Fins that will never
    // be re-sent (the producers exited on their acks).
    let mut all_fin = core.all_finished();

    let listener = match TcpListener::bind(&w.listen) {
        Ok(l) => l,
        Err(e) => return finish(&core, &w.outputs, Some(e.into())),
    };
    if let Err(e) = listener.set_nonblocking(true) {
        return finish(&core, &w.outputs, Some(e.into()));
    }
    if let Some(path) = &w.addr_file {
        let addr = match listener.local_addr() {
            Ok(a) => a.to_string(),
            Err(e) => return finish(&core, &w.outputs, Some(e.into())),
        };
        let tmp = path.with_extension("tmp");
        if let Err(e) = fs::write(&tmp, &addr).and_then(|()| fs::rename(&tmp, path)) {
            return finish(&core, &w.outputs, Some(e.into()));
        }
    }

    let mut conns: Vec<Conn> = Vec::new();
    let mut stopping = false;
    let mut turn = Turn::default();
    'outer: loop {
        // Controller commands first: checkpoint marks must cut on the
        // batch boundary the loop currently sits at.
        loop {
            match w.cmd.try_recv() {
                Ok(SourceCmd::Checkpoint(epoch)) => {
                    if let Err(e) = take_checkpoint(
                        &core,
                        &store,
                        &persist,
                        w.op_id,
                        epoch,
                        next_seq,
                        &w.outputs,
                        &w.telemetry,
                    ) {
                        error = Some(e);
                        break 'outer;
                    }
                    core.reset_window();
                }
                Ok(SourceCmd::Stop) => stopping = true,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    stopping = true;
                    break;
                }
            }
        }
        if stopping || all_fin {
            break;
        }

        let mut entries: Vec<(PollTarget, usize, Interest)> = Vec::with_capacity(conns.len() + 1);
        entries.push((fd(&listener), 0, Interest::READ));
        for (i, c) in conns.iter().enumerate() {
            let want = if c.out.is_empty() {
                Interest::READ
            } else {
                Interest::BOTH
            };
            entries.push((fd(&c.sock), i + 1, want));
        }
        let ready = match poll(&entries, POLL_MS) {
            Ok(r) => r,
            Err(e) => {
                error = Some(e.into());
                break;
            }
        };
        for ev in ready {
            if ev.token == 0 {
                // Accept everything pending; each new socket joins the
                // poll set next iteration.
                loop {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            let _ = sock.set_nodelay(true);
                            if sock.set_nonblocking(true).is_ok() {
                                conns.push(Conn::new(sock));
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => break,
                    }
                }
                continue;
            }
            let conn_idx = ev.token - 1;
            let Some(conn) = conns.get_mut(conn_idx) else {
                continue;
            };
            if ev.writable {
                conn.flush();
            }
            if ev.readable {
                conn.read_available();
            }
            process_frames(
                conn_idx,
                conn,
                &mut core,
                &mut next_seq,
                &mut turn,
                &w.meter,
                &mut all_fin,
            );
        }
        // Group commit: everything admitted this turn — across every
        // ready producer — goes durable in one append, and only then
        // are the acks queued and flushed. Connection indices are
        // stable here because retain() runs after.
        if !turn.is_empty() {
            if let Err(e) = commit_turn(
                &mut turn,
                &mut conns,
                &w.outputs,
                &store,
                w.op_id,
                &w.meter,
                &w.telemetry,
                w.group_commit,
            ) {
                error = Some(e);
                break 'outer;
            }
        }
        for c in &mut conns {
            if !c.out.is_empty() {
                c.flush();
            }
        }
        conns.retain(|c| !c.gone);
    }
    // Best-effort delivery of pending acks (FinOk mostly) before the
    // stream closes.
    for c in &mut conns {
        c.flush();
    }
    finish(&core, &w.outputs, error)
}

/// The source checkpoint protocol, verbatim: durable mark first, then
/// the snapshot to the persister, then the token downstream.
#[allow(clippy::too_many_arguments)]
fn take_checkpoint(
    core: &GateCore,
    store: &Arc<dyn StableStore>,
    persist: &Sender<PersistItem>,
    op_id: OperatorId,
    epoch: EpochId,
    next_seq: u64,
    outputs: &[OutputRoute],
    telemetry: &Option<Arc<OperatorMeter>>,
) -> Result<()> {
    store.mark_epoch(op_id, epoch, next_seq)?;
    let snap = core.snapshot();
    if let Some(m) = telemetry {
        m.set_state_bytes(snap.logical_bytes);
    }
    let _ = persist.send(PersistItem {
        epoch,
        op: op_id,
        snapshot: DeferredSnapshot::Ready(snap),
        base: None,
        next_seq,
        in_flight: Vec::new(),
        resume_seq: Vec::new(),
        align_us: 0,
        meter: telemetry.clone(),
    });
    for route in outputs {
        route.token(epoch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use ms_core::gate::EVENT_BYTES;
    use ms_core::value::Value;
    use ms_live::{HostMsg, LiveStorage, Persister};
    use std::time::Duration;

    fn send(sock: &mut TcpStream, msg: &GateMsg) {
        sock.write_all(&frame(&msg.encode())).unwrap();
    }

    fn recv(sock: &mut TcpStream, dec: &mut FrameDecoder) -> GateMsg {
        loop {
            if let Some(p) = dec.next_frame().unwrap() {
                return GateMsg::decode(&p).unwrap();
            }
            let mut buf = [0u8; 4096];
            let n = sock.read(&mut buf).unwrap();
            assert!(n > 0, "gateway closed mid-conversation");
            dec.feed(&buf[..n]);
        }
    }

    fn recv_host(rx: &Receiver<HostMsg>) -> HostMsg {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match rx.try_recv() {
                Ok(m) => return m,
                Err(TryRecvError::Empty) => {
                    assert!(
                        Instant::now() < deadline,
                        "timed out waiting on engine edge"
                    );
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(TryRecvError::Disconnected) => panic!("gateway edge disconnected"),
            }
        }
    }

    fn wait_addr(path: &std::path::Path) -> String {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(s) = fs::read_to_string(path) {
                if !s.is_empty() {
                    return s;
                }
            }
            assert!(Instant::now() < deadline, "gateway never published addr");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    struct Gate {
        addr: String,
        cmd_tx: Sender<SourceCmd>,
        rx: Receiver<HostMsg>,
        store: Arc<LiveStorage>,
        handle: std::thread::JoinHandle<HostExit>,
        _dir: PathBuf,
    }

    fn start_gate(tag: &str, cfg: GateConfig) -> Gate {
        let dir = std::env::temp_dir().join(format!("ms_gate_run_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let store = Arc::new(LiveStorage::new(1));
        let persister = Persister::spawn(store.clone());
        let persist = persister.sender();
        let (cmd_tx, cmd_rx) = unbounded();
        let (tx, rx) = unbounded::<HostMsg>();
        let addr_file = dir.join("gate.addr");
        let wiring = GateWiring {
            op_id: OperatorId(0),
            cfg,
            outputs: vec![OutputRoute::single(tx)],
            cmd: cmd_rx,
            listen: "127.0.0.1:0".into(),
            addr_file: Some(addr_file.clone()),
            restored: None,
            restored_seq: 0,
            replay: Vec::new(),
            meter: Arc::new(GateMeter::new()),
            telemetry: None,
            group_commit: true,
        };
        let store2 = store.clone();
        let handle = std::thread::spawn(move || {
            let exit = run_gate(wiring, store2, persist);
            drop(persister);
            exit
        });
        let addr = wait_addr(&addr_file);
        Gate {
            addr,
            cmd_tx,
            rx,
            store,
            handle,
            _dir: dir,
        }
    }

    #[test]
    fn acks_after_wal_dedups_and_closes_on_fin() {
        let g = start_gate(
            "fin",
            GateConfig {
                expected_producers: 2,
                ..GateConfig::default()
            },
        );
        let mut a = TcpStream::connect(&g.addr).unwrap();
        let mut da = FrameDecoder::new();
        send(&mut a, &GateMsg::Hello { producer: 1 });
        send(
            &mut a,
            &GateMsg::Batch {
                batch: 1,
                events: vec![(5, 10), (5, 20), (8, 1)],
            },
        );
        assert_eq!(recv(&mut a, &mut da), GateMsg::Accepted { batch: 1 });
        // The ack means the WAL already holds the pre-aggregated
        // tuples: keys 5 and 8 → two records.
        assert_eq!(g.store.preserved_tuples(), 2);
        // A retry of the same batch re-acks without re-admitting.
        send(
            &mut a,
            &GateMsg::Batch {
                batch: 1,
                events: vec![(5, 10), (5, 20), (8, 1)],
            },
        );
        assert_eq!(recv(&mut a, &mut da), GateMsg::Accepted { batch: 1 });
        assert_eq!(g.store.preserved_tuples(), 2, "duplicate admitted nothing");
        // Checkpoint: the token rides the engine edge behind the data.
        g.cmd_tx.send(SourceCmd::Checkpoint(EpochId(1))).unwrap();
        let mut got_tuples = Vec::new();
        loop {
            match recv_host(&g.rx) {
                HostMsg::Data(t) => got_tuples.push(t),
                HostMsg::DataBatch(b) => got_tuples.extend(b.iter().cloned()),
                HostMsg::Token(e) => {
                    assert_eq!(e, EpochId(1));
                    break;
                }
                HostMsg::Eos => panic!("premature EOS"),
            }
        }
        assert_eq!(got_tuples.len(), 2);
        assert_eq!(
            got_tuples[0].field(0).and_then(Value::as_int),
            Some(30),
            "per-key fold: 10+20 on key 5"
        );
        // Fin from both producers closes the stream.
        send(&mut a, &GateMsg::Fin { producer: 1 });
        assert_eq!(recv(&mut a, &mut da), GateMsg::FinOk);
        let mut b = TcpStream::connect(&g.addr).unwrap();
        let mut db = FrameDecoder::new();
        send(&mut b, &GateMsg::Fin { producer: 2 });
        assert_eq!(recv(&mut b, &mut db), GateMsg::FinOk);
        loop {
            match recv_host(&g.rx) {
                HostMsg::Eos => break,
                _ => continue,
            }
        }
        let exit = g.handle.join().unwrap();
        assert!(exit.error.is_none());
        assert_eq!(exit.op.kind(), "Gate");
    }

    #[test]
    fn over_budget_batches_are_shed_with_retry_hint() {
        let g = start_gate(
            "shed",
            GateConfig {
                budget_bytes: EVENT_BYTES, // one event per window
                expected_producers: 1,
                retry_after_ms: 7,
                ..GateConfig::default()
            },
        );
        let mut a = TcpStream::connect(&g.addr).unwrap();
        let mut da = FrameDecoder::new();
        send(&mut a, &GateMsg::Hello { producer: 1 });
        send(
            &mut a,
            &GateMsg::Batch {
                batch: 1,
                events: vec![(1, 1), (2, 2)],
            },
        );
        assert_eq!(
            recv(&mut a, &mut da),
            GateMsg::Busy {
                batch: 1,
                retry_after_ms: 7
            }
        );
        assert_eq!(
            g.store.preserved_tuples(),
            0,
            "shed batches never touch the WAL"
        );
        // A within-budget batch still gets through.
        send(
            &mut a,
            &GateMsg::Batch {
                batch: 1,
                events: vec![(3, 3)],
            },
        );
        assert_eq!(recv(&mut a, &mut da), GateMsg::Accepted { batch: 1 });
        assert_eq!(g.store.preserved_tuples(), 1);
        send(&mut a, &GateMsg::Fin { producer: 1 });
        assert_eq!(recv(&mut a, &mut da), GateMsg::FinOk);
        let exit = g.handle.join().unwrap();
        assert!(exit.error.is_none());
    }

    #[test]
    fn fin_is_wal_durable_before_finok_and_retry_does_not_reappend() {
        let g = start_gate(
            "fin_wal",
            GateConfig {
                expected_producers: 2,
                ..GateConfig::default()
            },
        );
        let mut a = TcpStream::connect(&g.addr).unwrap();
        let mut da = FrameDecoder::new();
        send(&mut a, &GateMsg::Fin { producer: 1 });
        assert_eq!(recv(&mut a, &mut da), GateMsg::FinOk);
        assert_eq!(
            g.store.preserved_tuples(),
            1,
            "the FinOk ack implies the Fin marker is already durable"
        );
        // A retried Fin (the ack was lost, the producer resends)
        // re-acks without appending a second marker.
        send(&mut a, &GateMsg::Fin { producer: 1 });
        assert_eq!(recv(&mut a, &mut da), GateMsg::FinOk);
        assert_eq!(g.store.preserved_tuples(), 1);
        send(&mut a, &GateMsg::Fin { producer: 2 });
        assert_eq!(recv(&mut a, &mut da), GateMsg::FinOk);
        let exit = g.handle.join().unwrap();
        assert!(exit.error.is_none());
    }

    #[test]
    fn fins_replayed_from_wal_close_the_recovered_gate() {
        // The regression the Fin marker exists for: every producer
        // Fin'd (and was acked) after the last complete checkpoint,
        // then the gate's worker died. The recovered gate rebuilds the
        // finished set from replayed markers and closes the stream
        // instead of waiting forever for Fins that will never be
        // re-sent — and the markers themselves never reach downstream.
        let dir = std::env::temp_dir().join(format!("ms_gate_finrep_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let store = Arc::new(LiveStorage::new(1));
        let persister = Persister::spawn(store.clone());
        let persist = persister.sender();
        let (cmd_tx, cmd_rx) = unbounded();
        let (tx, rx) = unbounded::<HostMsg>();
        let mut pre = GateCore::new(
            OperatorId(0),
            GateConfig {
                expected_producers: 1,
                ..GateConfig::default()
            },
        );
        let mut seq = 0;
        let Admission::Accept(mut replay) = pre.admit(&mut seq, 7, 1, &[(1, 4)]) else {
            panic!("accept expected");
        };
        let data_tuples = replay.clone();
        replay.push(pre.fin_marker(&mut seq, 7));
        let wiring = GateWiring {
            op_id: OperatorId(0),
            cfg: GateConfig {
                expected_producers: 1,
                ..GateConfig::default()
            },
            outputs: vec![OutputRoute::single(tx)],
            cmd: cmd_rx,
            listen: "127.0.0.1:0".into(),
            addr_file: None,
            restored: None,
            restored_seq: 0,
            replay,
            meter: Arc::new(GateMeter::new()),
            telemetry: None,
            group_commit: true,
        };
        let handle = std::thread::spawn(move || run_gate(wiring, store, persist));
        // No producer ever connects. The gate must still terminate:
        // replayed data, then Eos — and no marker in between.
        let mut got = Vec::new();
        while got.len() < data_tuples.len() {
            match recv_host(&rx) {
                HostMsg::Data(t) => got.push(t),
                HostMsg::DataBatch(b) => got.extend(b.iter().cloned()),
                other => panic!("expected replayed data, got {other:?}"),
            }
        }
        assert_eq!(got, data_tuples);
        match recv_host(&rx) {
            HostMsg::Eos => {}
            other => panic!("expected Eos after replay, got {other:?}"),
        }
        let exit = handle.join().unwrap();
        assert!(exit.error.is_none());
        drop(cmd_tx);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_rebuilds_dedup_and_resends_preserved_tuples() {
        // Simulate recovery wiring directly: preserved tuples go back
        // out and their batch ids answer retries as duplicates.
        let dir = std::env::temp_dir().join(format!("ms_gate_replay_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let store = Arc::new(LiveStorage::new(1));
        let persister = Persister::spawn(store.clone());
        let persist = persister.sender();
        let (cmd_tx, cmd_rx) = unbounded();
        let (tx, rx) = unbounded::<HostMsg>();
        // Build the "pre-crash" tuples through a core.
        let mut pre = GateCore::new(OperatorId(0), GateConfig::default());
        let mut seq = 0;
        let Admission::Accept(walled) = pre.admit(&mut seq, 7, 3, &[(1, 4), (2, 6)]) else {
            panic!("accept expected");
        };
        let addr_file = dir.join("gate.addr");
        let wiring = GateWiring {
            op_id: OperatorId(0),
            cfg: GateConfig {
                expected_producers: 1,
                ..GateConfig::default()
            },
            outputs: vec![OutputRoute::single(tx)],
            cmd: cmd_rx,
            listen: "127.0.0.1:0".into(),
            addr_file: Some(addr_file.clone()),
            restored: None,
            restored_seq: 0,
            replay: walled.clone(),
            meter: Arc::new(GateMeter::new()),
            telemetry: None,
            group_commit: true,
        };
        let store2 = store.clone();
        let handle = std::thread::spawn(move || run_gate(wiring, store2, persist));
        let addr = wait_addr(&addr_file);
        // The replayed tuples arrive downstream before any new data.
        let mut got = Vec::new();
        while got.len() < walled.len() {
            match recv_host(&rx) {
                HostMsg::Data(t) => got.push(t),
                HostMsg::DataBatch(b) => got.extend(b.iter().cloned()),
                other => panic!("expected replayed data, got {other:?}"),
            }
        }
        assert_eq!(got, walled);
        // The producer retries the batch that was WAL'd pre-crash:
        // acked as duplicate, nothing re-emitted.
        let mut a = TcpStream::connect(&addr).unwrap();
        let mut da = FrameDecoder::new();
        send(&mut a, &GateMsg::Hello { producer: 7 });
        send(
            &mut a,
            &GateMsg::Batch {
                batch: 3,
                events: vec![(1, 4), (2, 6)],
            },
        );
        assert_eq!(recv(&mut a, &mut da), GateMsg::Accepted { batch: 3 });
        assert_eq!(store.preserved_tuples(), 0, "duplicate batch not re-logged");
        send(&mut a, &GateMsg::Fin { producer: 7 });
        assert_eq!(recv(&mut a, &mut da), GateMsg::FinOk);
        let exit = handle.join().unwrap();
        assert!(exit.error.is_none());
        drop(cmd_tx);
        let _ = fs::remove_dir_all(&dir);
    }
}
