//! A minimal poll(2)-style readiness layer for the real transport.
//!
//! The event-loop worker multiplexes every peer socket on one I/O
//! thread; this module supplies the two primitives that makes that
//! possible without an external event library:
//!
//! * [`poll`] — level-triggered readiness over a set of raw file
//!   descriptors, a thin safe wrapper over the `poll(2)` system call
//!   (no `libc` crate: the one symbol is declared by hand, and the
//!   `pollfd` layout is fixed by POSIX).
//! * [`Waker`] — a self-pipe the I/O thread registers alongside its
//!   sockets, so other threads can interrupt a blocking [`poll`] to
//!   deliver commands or flush egress. Wakes are coalesced: any number
//!   of `wake()` calls between two poll iterations cost at most one
//!   pipe write.
//!
//! On non-unix targets the layer degrades to a short-sleep
//! report-all-ready stub so the crate still builds; the cluster
//! binaries and tests that depend on real readiness are unix-only
//! anyway (SIGKILL recovery is).

use std::io;

/// What a caller wants to know about one descriptor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or has hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read+write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One ready descriptor out of a [`poll`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadyEvent {
    /// The caller-supplied token identifying the descriptor.
    pub token: usize,
    /// Readable now (includes EOF: a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Peer hung up or the descriptor errored; the owner should read
    /// to EOF / tear the connection down.
    pub hangup: bool,
}

#[cfg(unix)]
mod sys {
    use super::{Interest, ReadyEvent};
    use std::io;
    use std::os::unix::io::RawFd;

    // POSIX-fixed layout; see poll(2).
    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Level-triggered readiness over `(fd, token, interest)` entries.
    /// Blocks up to `timeout_ms` (negative = forever) and returns the
    /// ready subset. `EINTR` retries transparently.
    pub fn poll_fds(
        entries: &[(RawFd, usize, Interest)],
        timeout_ms: i32,
    ) -> io::Result<Vec<ReadyEvent>> {
        let mut fds: Vec<PollFd> = entries
            .iter()
            .map(|&(fd, _, want)| PollFd {
                fd,
                events: if want.readable { POLLIN } else { 0 }
                    | if want.writable { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        loop {
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            let mut out = Vec::with_capacity(n as usize);
            for (pfd, &(_, token, _)) in fds.iter().zip(entries) {
                let r = pfd.revents;
                if r != 0 {
                    out.push(ReadyEvent {
                        token,
                        readable: r & (POLLIN | POLLHUP | POLLERR) != 0,
                        writable: r & POLLOUT != 0,
                        hangup: r & (POLLHUP | POLLERR) != 0,
                    });
                }
            }
            return Ok(out);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::{Interest, ReadyEvent};
    use std::io;

    /// Portability stub: sleep out the timeout and report every entry
    /// ready, so callers degrade to bounded busy-polling.
    pub fn poll_fds(
        entries: &[(i32, usize, Interest)],
        timeout_ms: i32,
    ) -> io::Result<Vec<ReadyEvent>> {
        if timeout_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms.min(20) as u64));
        }
        Ok(entries
            .iter()
            .map(|&(_, token, want)| ReadyEvent {
                token,
                readable: want.readable,
                writable: want.writable,
                hangup: false,
            })
            .collect())
    }
}

/// The raw descriptor type accepted by [`poll`] (`RawFd` on unix).
#[cfg(unix)]
pub type PollTarget = std::os::unix::io::RawFd;
/// The raw descriptor type accepted by [`poll`] (stub on non-unix).
#[cfg(not(unix))]
pub type PollTarget = i32;

/// Blocks until at least one entry is ready or the timeout elapses
/// (`timeout_ms < 0` blocks forever), returning the ready subset.
/// Level-triggered: a descriptor that stays readable is reported again
/// on the next call. The entry slice is rebuilt per call, which at the
/// worker's scale (a few hundred descriptors) costs microseconds.
pub fn poll(
    entries: &[(PollTarget, usize, Interest)],
    timeout_ms: i32,
) -> io::Result<Vec<ReadyEvent>> {
    sys::poll_fds(entries, timeout_ms)
}

#[cfg(unix)]
mod waker_impl {
    use std::io::{self, Read, Write};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// A self-pipe that interrupts a blocking [`super::poll`].
    ///
    /// The I/O thread registers [`Waker::fd`] with read interest; any
    /// thread calls [`Waker::wake`]. Wakes coalesce through `pending`:
    /// between one `drain` and the next, at most one byte crosses the
    /// pipe no matter how many producers call `wake`, so the pipe can
    /// never fill and `wake` never blocks.
    #[derive(Clone)]
    pub struct Waker {
        read: Arc<UnixStream>,
        write: Arc<UnixStream>,
        pending: Arc<AtomicBool>,
    }

    impl Waker {
        /// Creates the pipe pair (both ends nonblocking).
        pub fn new() -> io::Result<Waker> {
            let (read, write) = UnixStream::pair()?;
            read.set_nonblocking(true)?;
            write.set_nonblocking(true)?;
            Ok(Waker {
                read: Arc::new(read),
                write: Arc::new(write),
                pending: Arc::new(AtomicBool::new(false)),
            })
        }

        /// The descriptor the I/O thread registers with read interest.
        pub fn fd(&self) -> RawFd {
            self.read.as_raw_fd()
        }

        /// Interrupts the poller (no-op if a wake is already pending).
        pub fn wake(&self) {
            if !self.pending.swap(true, Ordering::AcqRel) {
                let _ = (&*self.write).write(&[1]);
            }
        }

        /// Drains the pipe and re-arms. The I/O thread calls this on
        /// readiness of [`Waker::fd`] *before* reading the command
        /// queue: a producer that enqueues after the drain sets
        /// `pending` afresh and lands a new byte, so its command is
        /// seen next iteration at the latest.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            while matches!((&*self.read).read(&mut buf), Ok(n) if n > 0) {}
            self.pending.store(false, Ordering::Release);
        }
    }
}

#[cfg(not(unix))]
mod waker_impl {
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Stub waker for non-unix targets: no pipe, so a poller relying
    /// on the stub [`super::poll`]'s bounded timeout picks wakes up on
    /// its next iteration.
    #[derive(Clone)]
    pub struct Waker {
        pending: Arc<AtomicBool>,
    }

    impl Waker {
        /// Creates the stub.
        pub fn new() -> io::Result<Waker> {
            Ok(Waker {
                pending: Arc::new(AtomicBool::new(false)),
            })
        }

        /// A dummy descriptor (never ready under the stub poll).
        pub fn fd(&self) -> super::PollTarget {
            -1
        }

        /// Records the wake.
        pub fn wake(&self) {
            self.pending.store(true, Ordering::Release);
        }

        /// Clears the wake.
        pub fn drain(&self) {
            self.pending.store(false, Ordering::Release);
        }
    }
}

pub use waker_impl::Waker;

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poll_reports_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        // Nothing to read yet: poll times out empty.
        let entries = [(server.as_raw_fd(), 7usize, Interest::READ)];
        let ready = poll(&entries, 50).unwrap();
        assert!(ready.is_empty());

        client.write_all(b"x").unwrap();
        let ready = poll(&entries, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token, 7);
        assert!(ready[0].readable);
        assert!(!ready[0].hangup);
    }

    #[test]
    fn poll_reports_hangup_on_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        drop(client);

        let entries = [(server.as_raw_fd(), 0usize, Interest::READ)];
        let ready = poll(&entries, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        // A closed peer is at least readable (EOF); POLLHUP is
        // platform-dependent but Linux sets it for TCP.
        assert!(ready[0].readable);
    }

    #[test]
    fn poll_reports_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();
        let entries = [(client.as_raw_fd(), 1usize, Interest::WRITE)];
        let ready = poll(&entries, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert!(ready[0].writable);
    }

    #[test]
    fn waker_interrupts_poll_and_coalesces() {
        let w = Waker::new().unwrap();
        let entries = [(w.fd(), 0usize, Interest::READ)];
        // Not woken: times out.
        assert!(poll(&entries, 30).unwrap().is_empty());
        // Many wakes, one byte: a single drain clears them all.
        for _ in 0..100 {
            w.wake();
        }
        let ready = poll(&entries, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        w.drain();
        assert!(poll(&entries, 30).unwrap().is_empty());
        // Re-armed after drain.
        w.wake();
        assert_eq!(poll(&entries, 1000).unwrap().len(), 1);
        w.drain();
    }
}
