//! Key-partitioned operator expansion: turning a *logical* query
//! network into a *physical* one in which each interior operator runs
//! as `N` hash-sharded HAU instances.
//!
//! The paper's evaluation topology runs 55 HAUs; getting there from a
//! handful of logical operators means scaling the keyed interiors
//! horizontally. [`expand`] performs the deploy-time rewrite: sources
//! and sinks stay singletons, every interior operator becomes `shards`
//! instances, and every logical edge becomes the full bipartite set of
//! physical edges between the two groups. Producers then route each
//! tuple to exactly one instance of each logical consumer with
//! [`shard_of`] over the tuple's key — a deterministic hash, so the
//! same key always lands on the same shard in every generation and
//! every recovery.
//!
//! The expansion is identity for `shards <= 1`: the physical network
//! is the logical network, byte-for-byte the same deployment the
//! unsharded cluster ran.

use crate::error::Result;
use crate::graph::QueryNetwork;
use crate::ids::OperatorId;

/// Deterministic key→shard assignment: splitmix64 finalizer over the
/// key, reduced modulo the shard count. Stable across processes, runs
/// and recoveries — no seed, no per-process state.
pub fn shard_of(key: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// The logical→physical map produced by [`expand`]: one group of
/// physical instances per logical operator, in logical-operator order;
/// instances within a group in shard order. Sources, sinks and
/// unsharded deployments have singleton groups.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardPlan {
    /// `groups[logical.0]` = the physical instances of that logical
    /// operator, shard order.
    pub groups: Vec<Vec<OperatorId>>,
}

impl ShardPlan {
    /// The identity plan for an unsharded network of `n` operators.
    pub fn identity(n: usize) -> ShardPlan {
        ShardPlan {
            groups: (0..n).map(|i| vec![OperatorId(i as u32)]).collect(),
        }
    }

    /// The logical operator a physical instance belongs to.
    pub fn logical_of(&self, physical: OperatorId) -> Option<OperatorId> {
        self.groups
            .iter()
            .position(|g| g.contains(&physical))
            .map(|i| OperatorId(i as u32))
    }

    /// The shard ordinal of a physical instance within its group
    /// (always 0 for singletons).
    pub fn shard_index(&self, physical: OperatorId) -> Option<usize> {
        self.groups
            .iter()
            .find_map(|g| g.iter().position(|&p| p == physical))
    }
}

/// Expands a logical network into a physical one: interior operators
/// (neither source nor sink) become `shards` instances named
/// `{name}.s{j}`, and each logical edge becomes every pairwise edge
/// between the producer's and consumer's instance groups. `shards <= 1`
/// is the identity expansion. Edges are added in the logical network's
/// canonical edge order (from-major, output-port order), producer
/// instances outermost — so for a physical producer, its downstream
/// list is contiguous runs of consumer groups in logical-edge order,
/// which is what lets the worker rebuild one hash route per logical
/// consumer from the [`ShardPlan`] alone.
pub fn expand(logical: &QueryNetwork, shards: usize) -> Result<(QueryNetwork, ShardPlan)> {
    if shards <= 1 {
        // Rebuild rather than clone so the identity claim is literal:
        // same names, same ids, same ports.
        let mut qn = QueryNetwork::new();
        for op in logical.operators() {
            qn.add_operator(logical.meta(op).name.clone());
        }
        for (f, t) in logical.edges() {
            qn.connect(f, t)?;
        }
        qn.validate()?;
        return Ok((qn, ShardPlan::identity(logical.len())));
    }
    let mut qn = QueryNetwork::new();
    let mut groups: Vec<Vec<OperatorId>> = Vec::with_capacity(logical.len());
    for op in logical.operators() {
        let name = &logical.meta(op).name;
        let interior = !logical.upstream(op).is_empty() && !logical.downstream(op).is_empty();
        if interior {
            groups.push(
                (0..shards)
                    .map(|j| qn.add_operator(format!("{name}.s{j}")))
                    .collect(),
            );
        } else {
            groups.push(vec![qn.add_operator(name.clone())]);
        }
    }
    for (f, t) in logical.edges() {
        for &fi in &groups[f.0 as usize] {
            for &ti in &groups[t.0 as usize] {
                qn.connect(fi, ti)?;
            }
        }
    }
    qn.validate()?;
    Ok((qn, ShardPlan { groups }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::diamond_example;

    fn chain3() -> QueryNetwork {
        let mut qn = QueryNetwork::new();
        let a = qn.add_operator("src");
        let b = qn.add_operator("mid");
        let c = qn.add_operator("sink");
        qn.connect(a, b).unwrap();
        qn.connect(b, c).unwrap();
        qn
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let s = shard_of(key, 8);
            assert!(s < 8);
            assert_eq!(s, shard_of(key, 8), "same key, same shard");
        }
        assert_eq!(shard_of(42, 1), 0);
        assert_eq!(shard_of(42, 0), 0);
    }

    #[test]
    fn identity_expansion_matches_logical() {
        let logical = chain3();
        let (qn, plan) = expand(&logical, 1).unwrap();
        assert_eq!(qn.len(), 3);
        assert_eq!(qn.edge_count(), 2);
        assert_eq!(plan, ShardPlan::identity(3));
        assert_eq!(qn.meta(OperatorId(1)).name, "mid");
        let (qn0, plan0) = expand(&logical, 0).unwrap();
        assert_eq!(qn0.len(), 3);
        assert_eq!(plan0, ShardPlan::identity(3));
    }

    #[test]
    fn chain_interior_shards_into_full_mesh() {
        let logical = chain3();
        let (qn, plan) = expand(&logical, 4).unwrap();
        // src + 4 mids + sink.
        assert_eq!(qn.len(), 6);
        assert_eq!(plan.groups[0].len(), 1);
        assert_eq!(plan.groups[1].len(), 4);
        assert_eq!(plan.groups[2].len(), 1);
        // src → each mid, each mid → sink.
        assert_eq!(qn.edge_count(), 8);
        let src = plan.groups[0][0];
        assert_eq!(qn.downstream(src).len(), 4);
        for (j, &mid) in plan.groups[1].iter().enumerate() {
            assert_eq!(qn.meta(mid).name, format!("mid.s{j}"));
            assert_eq!(plan.logical_of(mid), Some(OperatorId(1)));
            assert_eq!(plan.shard_index(mid), Some(j));
            assert_eq!(qn.downstream(mid), &[plan.groups[2][0]]);
        }
        qn.validate().unwrap();
    }

    #[test]
    fn diamond_expands_and_stays_valid() {
        let (logical, _, _) = diamond_example();
        let (qn, plan) = expand(&logical, 3).unwrap();
        // source + sink singletons; split/left/right interior × 3.
        assert_eq!(plan.groups.iter().map(Vec::len).sum::<usize>(), qn.len());
        assert_eq!(qn.len(), 2 + 3 * 3);
        qn.validate().unwrap();
        // Every physical op maps back to exactly one logical op.
        for op in qn.operators() {
            assert!(plan.logical_of(op).is_some());
        }
    }

    #[test]
    fn producer_downstream_is_contiguous_per_logical_consumer() {
        // split (logical 1) fans out to left (2) and right (3): each
        // physical split instance's downstream list must be left's
        // group then right's group, contiguous.
        let (logical, _, _) = diamond_example();
        let (qn, plan) = expand(&logical, 2).unwrap();
        for &s in &plan.groups[1] {
            let down = qn.downstream(s);
            assert_eq!(down.len(), 4);
            assert_eq!(&down[..2], plan.groups[2].as_slice());
            assert_eq!(&down[2..], plan.groups[3].as_slice());
        }
    }
}
