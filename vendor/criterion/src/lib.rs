//! Offline stand-in for `criterion`.
//!
//! A small wall-clock benchmark harness exposing the subset of the
//! criterion API the workspace's `hotpaths` bench uses. No statistics
//! beyond a mean: each benchmark warms up, then runs a timed batch and
//! prints mean time per iteration (plus element throughput when
//! declared). Honors a positional substring filter and criterion's
//! `--test` flag (run everything once, no timing), and ignores other
//! harness flags cargo passes.

#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output `iter_batched` keeps in flight. The stand-in
/// always runs batches of one, so the variants only exist for API
/// compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Benchmark driver; construct via [`Criterion::from_args`] (the
/// `criterion_main!` macro does this).
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Criterion {
    /// Builds a driver from the process arguments, tolerating the
    /// flags cargo's bench/test harnesses pass.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Prints the closing summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the sample count (accepted for compatibility; the stand-in
    /// sizes its timed batch by wall-clock, not sample count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.c.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.c.test_mode {
            f(&mut b);
            println!("{full}: ok (test mode)");
            return self;
        }
        // Warm up and estimate cost, then scale to a ~100ms batch.
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        b.iters = (Duration::from_millis(100).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000_000)
            as u64;
        f(&mut b);
        let mean_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (mean_ns * 1e-9) / 1e6;
                println!("{full}: {mean_ns:.1} ns/iter ({rate:.2} Melem/s)");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (mean_ns * 1e-9) / 1e6;
                println!("{full}: {mean_ns:.1} ns/iter ({rate:.2} MB/s)");
            }
            None => println!("{full}: {mean_ns:.1} ns/iter"),
        }
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($f(c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($g:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($g(&mut c);)+
            c.final_summary();
        }
    };
}
