//! The paper's evaluation topology over *real TCP* on localhost: one
//! controller (hosted on a thread here) and **eight worker
//! processes**, each a genuine OS process running the same daemon code
//! as the `ms-worker` binary — this example re-executes itself with
//! `--worker` to spawn them. The logical graph is `fleet6x6` (6
//! sources → 6 chained keyed stages → 1 sink); with `--shards 8`
//! every stage expands to 8 hash-partitioned HAU instances, so the
//! cluster deploys 6 + 48 + 1 = **55 HAUs**, the paper's scale.
//!
//! Each worker hosts its ~7 HAUs on the event-loop core: one I/O
//! thread multiplexing every peer socket plus a fixed 2–4 thread
//! apply pool, so the whole 55-HAU topology fits in 8 small
//! processes instead of hundreds of threads.
//!
//! Run with `cargo run --release -p ms-examples --bin wire_cluster`.
//!
//! For the full failure story — SIGKILL a worker process mid-stream
//! and watch the controller roll back, redeploy, and replay — see the
//! `kill_recover` and `scale_cluster` integration tests, which
//! automate it at chain and fleet scale respectively.

use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::Duration;

use ms_core::codec::SnapshotReader;
use ms_wire::apps::expected_fleet_sum;
use ms_wire::{
    by_shard_summary, read_ledger, run_controller, run_worker, summarize, ControllerAddr,
    ControllerConfig, WorkerConfig, LEDGER_FILE,
};

const WORKERS: usize = 8;
const SOURCES: u64 = 6;
const STAGES: u32 = 6;
const SHARDS: u64 = 8;
/// 6 + 6×8 + 1.
const HAUS: usize = 55;
/// Long enough (slowest skewed source ≈ 1 s of emission) that several
/// 150 ms checkpoint epochs close their barrier and reach the ledger.
const LIMIT: u64 = 1200;

fn main() {
    // Re-executed in worker mode by the parent below.
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--worker" {
        worker_main(&args[2], &args[3]);
        return;
    }

    let dir = std::env::temp_dir().join(format!("ms_wire_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");
    let addr_file = dir.join("addr");

    let cfg = ControllerConfig {
        listen: "127.0.0.1:0".into(),
        addr_file: Some(addr_file.clone()),
        store_dir: store.clone(),
        workers: WORKERS,
        shape: format!("fleet{SOURCES}x{STAGES}"),
        source_limit: LIMIT,
        source_delay_us: 50,
        keyed_state: 256,
        sawtooth_window: 0,
        shards: SHARDS,
        ckpt_interval: Duration::from_millis(150),
        hb_timeout: Duration::from_millis(1000),
        barrier_stall: None,
        respawn_wait: Duration::from_millis(2000),
        deadline: Duration::from_secs(120),
        result_file: None,
        gate: None,
        aware: false,
        aware_sample: Duration::from_millis(100),
        aware_profile_periods: 2,
        recovery_budget: None,
    };
    let controller = thread::spawn(move || run_controller(cfg));

    // Eight real worker *processes*: this binary, re-executed.
    let exe = std::env::current_exe().unwrap();
    let mut children: Vec<Child> = (0..WORKERS)
        .map(|i| {
            Command::new(&exe)
                .arg("--worker")
                .arg(format!("w{i}"))
                .arg(&dir)
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn worker process")
        })
        .collect();

    let report = match controller.join().unwrap() {
        Ok(r) => r,
        Err(e) => {
            for c in &mut children {
                let _ = c.kill();
            }
            panic!("controller failed: {e}");
        }
    };
    for c in &mut children {
        let status = c.wait().expect("wait worker");
        assert!(status.success(), "worker exited with {status}");
    }

    println!(
        "cluster done: {HAUS} HAUs on {WORKERS} processes, {} checkpoints paced, {} recoveries",
        report.checkpoints, report.recoveries
    );
    let (want_sum, want_count) = expected_fleet_sum(SOURCES, STAGES, LIMIT);
    for (op, state) in &report.sink_states {
        let mut r = SnapshotReader::new(state);
        let sum = r.get_i64().unwrap();
        let count = r.get_u64().unwrap();
        println!("sink op{}: sum={sum} over {count} tuples", op.0);
        assert_eq!(sum, want_sum);
        assert_eq!(count, want_count);
    }

    // The run ledger has one row per (epoch, HAU): every complete
    // epoch must carry all 55 physical operators, and the --by-shard
    // view shows how evenly the keyed state spread over each stage's
    // 8 instances.
    let records = read_ledger(&store.join(LEDGER_FILE)).expect("run ledger must parse");
    assert!(
        !records.is_empty(),
        "no epoch barrier closed during the run — ledger is empty"
    );
    for epoch in records
        .iter()
        .map(|r| r.epoch)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let ops: std::collections::BTreeSet<u32> = records
            .iter()
            .filter(|r| r.epoch == epoch)
            .map(|r| r.op)
            .collect();
        assert_eq!(ops.len(), HAUS, "epoch {epoch} missing operators: {ops:?}");
    }
    print!("{}", summarize(&records, 3));
    print!("{}", by_shard_summary(&records));

    let _ = std::fs::remove_dir_all(&dir);
}

/// One worker process: the same `run_worker` the `ms-worker` binary
/// runs, pointed at the parent's store and address file.
fn worker_main(name: &str, dir: &str) {
    let dir = std::path::PathBuf::from(dir);
    let cfg = WorkerConfig {
        name: name.into(),
        controller: ControllerAddr::File(dir.join("addr")),
        store_dir: dir.join("store"),
        heartbeat_interval: Duration::from_millis(50),
        log_cap_bytes: None,
    };
    if let Err(e) = run_worker(cfg) {
        eprintln!("worker {name}: {e}");
        std::process::exit(1);
    }
}
