//! Property tests for the hash router behind key-partitioned
//! operators.
//!
//! Sharding a keyed operator is only sound if three things hold no
//! matter what the stream looks like:
//!
//! 1. **Stability** — `shard_of` is a pure function of `(key, shards)`
//!    with no per-process state, so a replayed or recovered tuple
//!    rejoins exactly the shard whose checkpoint holds its key. Pinned
//!    golden values guard against anyone "improving" the hash: a
//!    constant change would strand every existing checkpoint's keys on
//!    the wrong shards.
//! 2. **Coverage** — every shard of a group receives some of the key
//!    space (no instance is dead weight).
//! 3. **Partition-exactness** — running the stream through `N`
//!    shard-local [`KeyedStat`]s and merging their tables yields the
//!    *byte-identical* canonical encoding (`ms-core::delta`'s sorted
//!    table format) an unsharded instance produces from the same
//!    stream. That equality is what lets kill-recover tests compare
//!    sharded runs against closed-form answers, and what makes
//!    rescale-by-re-expansion possible at all.

use std::collections::BTreeMap;

use ms_core::delta::decode_table;
use ms_core::ids::{OperatorId, PortId};
use ms_core::operator::{Operator, OperatorContext};
use ms_core::shard::shard_of;
use ms_core::time::SimTime;
use ms_core::tuple::{Fields, Tuple};
use ms_core::value::Value;
use ms_wire::apps::{route_key, KeyedStat, KEY_STRIDE};
use proptest::prelude::*;

/// A context that swallows emissions; these tests only care about the
/// operators' keyed state.
struct Discard;

impl OperatorContext for Discard {
    fn emit_fields(&mut self, _port: PortId, _fields: Fields) {}
    fn emit_all_fields(&mut self, _fields: Fields) {}
    fn now(&self) -> SimTime {
        SimTime::ZERO
    }
    fn self_id(&self) -> OperatorId {
        OperatorId(0)
    }
    fn rand_f64(&mut self) -> f64 {
        0.5
    }
    fn rand_u64(&mut self) -> u64 {
        0
    }
}

fn int_tuple(seq: u64, v: i64) -> Tuple {
    Tuple::new(OperatorId(0), seq, SimTime::ZERO, vec![Value::Int(v)])
}

/// The hash must never change: these values are pinned from the
/// splitmix64 finalizer and any drift would orphan checkpointed keys
/// on recovery (`shard_of(key)` would no longer find the shard that
/// owns `key`'s state).
#[test]
fn shard_of_golden_values_are_pinned() {
    let keys: [u64; 8] = [0, 1, 2, 3, 42, 511, 1_000_000, 1 << 63];
    let at8: [usize; 8] = [7, 1, 6, 5, 5, 6, 7, 3];
    let at5: [usize; 8] = [0, 0, 0, 3, 3, 2, 2, 0];
    for (i, &k) in keys.iter().enumerate() {
        assert_eq!(shard_of(k, 8), at8[i], "key {k} at 8 shards");
        assert_eq!(shard_of(k, 5), at5[i], "key {k} at 5 shards");
    }
}

/// Every shard count in the deployable range gets full coverage from
/// a modest contiguous key range — the shape `KeyedStat` keys take
/// (small dense key spaces), so no HAU instance in a group idles.
#[test]
fn contiguous_keys_cover_every_shard() {
    for shards in 2..=16usize {
        let mut seen = vec![false; shards];
        for key in 0..(64 * shards) as u64 {
            seen[shard_of(key, shards)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "{shards} shards not covered by {} contiguous keys",
            64 * shards
        );
    }
}

proptest! {
    /// Pure-function property: same key, same shard, always in range.
    #[test]
    fn shard_assignment_is_stable_and_in_range(
        key in any::<u64>(),
        shards in 1usize..64,
    ) {
        let first = shard_of(key, shards);
        prop_assert!(first < shards);
        for _ in 0..3 {
            prop_assert_eq!(shard_of(key, shards), first);
        }
    }

    /// The router and the operator agree on the key function: a tuple
    /// routed to shard `j` touches a key that `shard_of` maps to `j`.
    #[test]
    fn route_key_is_consistent_with_shard_of(
        values in proptest::collection::vec(any::<i64>(), 1..200),
        shards in 2usize..9,
        keys in 16u64..512,
    ) {
        let key_fn = route_key(keys);
        for (seq, &v) in values.iter().enumerate() {
            let t = int_tuple(seq as u64, v);
            let key = key_fn(&t);
            prop_assert_eq!(key, (v as u64 / KEY_STRIDE) % keys);
            prop_assert!(shard_of(key, shards) < shards);
        }
    }

    /// The partition test: feed one stream through an unsharded
    /// [`KeyedStat`] and through `shards` shard-local instances (each
    /// seeing only the tuples the router sends it), then merge the
    /// shard tables. The merged canonical encoding must equal the
    /// unsharded snapshot byte-for-byte, and the shard key sets must
    /// be disjoint (each key has exactly one home).
    #[test]
    fn shard_local_fold_equals_unsharded_fold(
        values in proptest::collection::vec(0i64..100_000, 1..300),
        shards in 2usize..9,
        keys in 8u64..256,
    ) {
        let mut ctx = Discard;
        let key_fn = route_key(keys);

        let mut whole = KeyedStat::new(keys);
        let mut parts: Vec<KeyedStat> =
            (0..shards).map(|_| KeyedStat::new(keys)).collect();
        for (seq, &v) in values.iter().enumerate() {
            let t = int_tuple(seq as u64, v);
            let shard = shard_of(key_fn(&t), shards);
            parts[shard].on_tuple(PortId(0), t.clone(), &mut ctx);
            whole.on_tuple(PortId(0), t, &mut ctx);
        }

        // Merge the shard-local tables; keys must never collide.
        let mut merged: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (j, part) in parts.iter().enumerate() {
            let table = decode_table(&part.snapshot().data).unwrap();
            for (key, value) in table {
                prop_assert!(
                    shard_of(key, shards) == j,
                    "key {} materialized on shard {} but routes elsewhere",
                    key,
                    j
                );
                prop_assert!(
                    merged.insert(key, value).is_none(),
                    "key {} appears on two shards", key
                );
            }
        }
        let merged_bytes = ms_core::delta::encode_table(&merged);
        prop_assert!(
            merged_bytes == whole.snapshot().data,
            "sharded union differs from the unsharded table"
        );
    }
}
