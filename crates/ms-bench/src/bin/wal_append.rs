//! `wal_append`: preservation-log append throughput, batched vs
//! per-tuple, on the real `FsStore`.
//!
//! The gate's ack path pays one `StableStore` append per admitted
//! batch (group commit) where it used to pay one per tuple. This
//! bench isolates that storage round: the same tuple run appended
//! through `append_log_batch` at batch sizes 1 / 8 / 32 / 128 / 512,
//! with the store's `write(2)` counter asserting the group-commit
//! contract — exactly one log write syscall per admitted batch, so
//! tuples-per-syscall equals the batch size. Ends with the JSON
//! snapshot recorded under the `wal_append` key of `BENCH_sweep.json`.

use std::time::Instant;

use ms_core::ids::OperatorId;
use ms_core::time::SimTime;
use ms_core::tuple::Tuple;
use ms_core::value::Value;
use ms_live::StableStore;
use ms_wire::FsStore;

/// Tuples per cell — every batch size appends the same run.
const TUPLES: u64 = 65_536;

struct Cell {
    batch: u64,
    wall_secs: f64,
    tuples_per_sec: f64,
    write_syscalls: u64,
    tuples_per_syscall: f64,
}

/// The gate's WAL record shape: folded value, key, producer, batch,
/// last-of-batch marker — what `ingest_swarm` actually appends.
fn tuples() -> Vec<Tuple> {
    (0..TUPLES)
        .map(|seq| {
            Tuple::new(
                OperatorId(0),
                seq,
                SimTime::from_micros(seq),
                vec![
                    Value::Int(seq as i64),
                    Value::Int((seq % 8) as i64),
                    Value::Int((seq % 64) as i64),
                    Value::Int((seq / 32) as i64),
                    Value::Int(u64::from(seq % 32 == 31) as i64),
                ],
            )
        })
        .collect()
}

fn run_cell(run: &[Tuple], batch: u64) -> Cell {
    let dir = std::env::temp_dir().join(format!("ms_wal_append_{batch}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FsStore::open(&dir, 1).expect("open store");
    let op = OperatorId(0);
    let start = Instant::now();
    let mut batches = 0u64;
    for chunk in run.chunks(batch as usize) {
        store.append_log_batch(op, chunk).expect("append");
        batches += 1;
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let write_syscalls = store.log_write_syscalls();
    // The group-commit contract this PR ships: one write(2) per
    // admitted batch, never more.
    assert!(
        write_syscalls <= batches,
        "batch={batch}: {write_syscalls} log writes for {batches} batches \
         (group commit must issue at most one write per batch)"
    );
    assert_eq!(
        store.preserved_tuples(),
        run.len(),
        "every tuple must be durable"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Cell {
        batch,
        wall_secs,
        tuples_per_sec: run.len() as f64 / wall_secs,
        write_syscalls,
        tuples_per_syscall: run.len() as f64 / write_syscalls.max(1) as f64,
    }
}

fn main() {
    println!("wal_append: {TUPLES} gate-shaped tuples through FsStore::append_log_batch");
    let run = tuples();
    let mut cells = Vec::new();
    for &batch in &[1u64, 8, 32, 128, 512] {
        let c = run_cell(&run, batch);
        println!(
            "  batch {:>4}: {:>9.0} tuples/s  {:>6} write syscalls  \
             {:>6.1} tuples/syscall  ({:.3}s)",
            c.batch, c.tuples_per_sec, c.write_syscalls, c.tuples_per_syscall, c.wall_secs
        );
        cells.push(c);
    }
    let speedup = cells.last().unwrap().tuples_per_sec / cells[0].tuples_per_sec;
    println!("  batched(512) vs per-tuple: {speedup:.2}x");
    // The snapshot recorded under BENCH_sweep.json's "wal_append" key
    // (same convention as "ingest_swarm": paste the block below).
    println!("\n\"wal_append\": {{");
    println!(
        " \"note\": \"{TUPLES} gate-shaped tuples appended through \
         FsStore::append_log_batch per batch size; write_syscalls from the store's \
         preservation-log write(2) counter (group commit = one write per batch); \
         recorded snapshot\","
    );
    println!(" \"tuples\": {TUPLES},");
    println!(" \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        println!(
            "  {{ \"batch\": {}, \"wall_secs\": {:.6}, \"tuples_per_sec\": {:.1}, \
             \"write_syscalls\": {}, \"tuples_per_syscall\": {:.1} }}{}",
            c.batch,
            c.wall_secs,
            c.tuples_per_sec,
            c.write_syscalls,
            c.tuples_per_syscall,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    println!(" ]\n}}");
}
